//! The workspace's single sanctioned doorway to OS threads.
//!
//! The `teleios-lint` L1 rule (`no-thread-spawn`) forbids
//! `std::thread::{spawn, Builder}` everywhere outside the concurrency
//! substrate, so long-lived service threads (the resilience deadline
//! watchdog, future background compactors) are created here: named,
//! accounted for, and greppable in one place. Data parallelism should
//! not use this — that is what [`crate::WorkerPool`] is for.

use std::io;
use std::thread;

/// Spawn a named OS thread.
///
/// The name shows up in panic messages, debuggers, and `/proc`, which
/// is the point: every thread in a TELEIOS process should be
/// attributable. Returns the builder's `io::Result` — callers decide
/// whether a failed spawn is fatal (the watchdog treats it as
/// "run without a watchdog" rather than aborting the batch).
pub fn spawn_named<T, F>(name: &str, f: F) -> io::Result<thread::JoinHandle<T>>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    thread::Builder::new().name(name.to_string()).spawn(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawned_thread_carries_name_and_result() {
        let handle = spawn_named("teleios-test-worker", || {
            assert_eq!(
                thread::current().name(),
                Some("teleios-test-worker"),
                "thread must run under the requested name"
            );
            21 * 2
        })
        .unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
