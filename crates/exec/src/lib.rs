#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! TELEIOS morsel-driven parallel execution engine.
//!
//! The paper sells the database tier as running "as fast as the
//! underlying hardware allows"; this crate supplies the in-process
//! half of that promise: a reusable scoped worker pool plus a
//! morsel/chunk partitioning API that the monet column kernels, the
//! SciQL array operators and the resilience batch supervisor all
//! share.
//!
//! Design rules (every consumer relies on them):
//!
//! * **Determinism** — operators built on [`WorkerPool::run`] must be
//!   bit-identical to their sequential counterparts. The pool returns
//!   results in task order, so partitioning the input into ordered
//!   [`morsel::morsels`] and concatenating per-morsel outputs
//!   reproduces the sequential scan order exactly.
//! * **Sequential is the `threads = 1` case** — a pool sized at one
//!   thread runs tasks inline on the caller with no channels, no
//!   spawning and no behavioral difference. Setting the
//!   `TELEIOS_THREADS` environment variable to `1` therefore turns
//!   the whole engine back into the seed's sequential code path.
//! * **Panic transparency** — a panicking task does not poison the
//!   pool; [`WorkerPool::run`] re-raises the payload of the earliest
//!   failing task (matching sequential panic semantics), while
//!   [`WorkerPool::try_run_bounded`] hands every payload back to the
//!   caller for per-task isolation (the supervisor's contract).
//! * **Cooperative cancellation** — a [`CancelToken`] passed to
//!   [`WorkerPool::try_run_bounded_cancellable`] is checked between
//!   morsels only: in-flight tasks finish, queued tasks are skipped
//!   (`None` slots), and nothing is ever killed. Long-running tasks
//!   that want finer-grained cancellation poll the same token at
//!   their own safe points.
//!
//! * **Witnessed locking** — internal mutexes are
//!   [`ordered_lock::OrderedMutex`]es: in debug builds every
//!   acquisition feeds a process-wide lock-order graph
//!   ([`LockWitness`]), cross-validating at runtime the acyclicity
//!   that `teleios-lint`'s L6 rule proves statically from source.
//!
//! * **Two dispatch policies, one contract** — [`WorkerPool::run`]
//!   partitions statically (a shared channel in submission order);
//!   [`WorkerPool::run_stealing`] preloads per-worker [`StealDeque`]s
//!   and lets idle workers steal, winning on skewed morsel costs. Both
//!   return results by task index, so every determinism rule above
//!   applies to either policy and operators can switch via
//!   [`pool::Dispatch`] without touching their merge discipline.
//!
//! The `loom` feature swaps the [`CancelToken`]'s and [`StealDeque`]'s
//! atomics and mutexes for the `teleios-loom` modeled primitives so
//! `tests/loom.rs` can exhaustively interleave the first-wins cancel
//! protocol and the deque's owner/thief races; it changes no public
//! API and is never enabled in normal builds (`scripts/check.sh
//! --full` runs it).

pub mod cancel;
pub mod morsel;
pub mod ordered_lock;
pub mod pool;
pub mod spawn;
pub mod steal;

pub use cancel::CancelToken;
pub use morsel::{fixed_morsels, morsels, DEFAULT_MORSEL_CELLS};
pub use ordered_lock::{LockWitness, OrderedMutex, OrderedMutexGuard};
pub use pool::{default_threads, Dispatch, PoolStats, WorkerPool};
pub use spawn::spawn_named;
pub use steal::{Steal, StealDeque};
