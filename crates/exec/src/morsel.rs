//! Morsel partitioning: split an index space into contiguous,
//! ordered, non-empty ranges.
//!
//! Two flavors exist because they serve different determinism needs:
//!
//! * [`morsels`] splits `0..len` into at most `parts` near-equal
//!   ranges — used when per-element work is order-insensitive or
//!   exactly reconstructible by in-order concatenation (selection,
//!   probing, element-wise maps).
//! * [`fixed_morsels`] splits into chunks of a **thread-count
//!   independent** size — used for floating-point reductions, where
//!   the chunk boundaries (not the worker count) decide the rounding,
//!   so the result is identical no matter how many threads run.

use std::ops::Range;

/// Default chunk size (in cells/rows) for fixed-size reduction
/// morsels. Arrays at or below this size reduce with the plain
/// sequential left fold.
pub const DEFAULT_MORSEL_CELLS: usize = 65_536;

/// Split `0..len` into at most `parts` contiguous, ordered,
/// near-equal, non-empty ranges. Returns an empty vector when
/// `len == 0`; never returns more than `len` ranges.
///
/// Concatenating the ranges in order always reproduces `0..len`, so
/// any per-morsel computation whose outputs concatenate in morsel
/// order is identical to the sequential scan.
pub fn morsels(len: usize, parts: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Split `0..len` into chunks of exactly `chunk` elements (the last
/// chunk may be shorter). The boundaries depend only on `len` and
/// `chunk`, never on the worker count — combining per-chunk partial
/// results left-to-right therefore gives the same floating-point
/// rounding at every thread count.
pub fn fixed_morsels(len: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(len.div_ceil(chunk));
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_exactly() {
        for len in [0usize, 1, 2, 7, 100, 1001] {
            for parts in [1usize, 2, 3, 4, 8, 200] {
                let ms = morsels(len, parts);
                let mut next = 0;
                for m in &ms {
                    assert_eq!(m.start, next, "len={len} parts={parts}");
                    assert!(!m.is_empty(), "empty morsel for len={len} parts={parts}");
                    next = m.end;
                }
                assert_eq!(next, len);
                assert!(ms.len() <= parts.max(1));
                assert!(ms.len() <= len.max(1) || len == 0);
            }
        }
    }

    #[test]
    fn morsels_are_balanced() {
        let ms = morsels(10, 3);
        let sizes: Vec<usize> = ms.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn fixed_morsels_ignore_thread_count() {
        let ms = fixed_morsels(100, 32);
        let sizes: Vec<usize> = ms.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![32, 32, 32, 4]);
        assert!(fixed_morsels(0, 32).is_empty());
        assert_eq!(fixed_morsels(5, 0).len(), 5); // chunk clamped to 1
    }
}
