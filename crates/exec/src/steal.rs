//! Work-stealing deque: a Chase-Lev-style per-worker queue of task
//! indices.
//!
//! Each worker owns one deque, preloaded with a contiguous range of
//! task indices before any worker starts. The owner pops from the
//! *bottom* (LIFO — it walks its own range in submission order because
//! the range is pushed in reverse); idle workers steal from the *top*
//! (FIFO — they take the far end of the victim's range, minimizing
//! contention with the owner). The two ends only meet on the last
//! element, where a compare-and-swap on `top` arbitrates: exactly one
//! of the racing owner/thief wins the index.
//!
//! Two properties make this deque radically simpler than a general
//! Chase-Lev implementation, and allow it to be written in safe code:
//!
//! * **No growth, no wraparound.** The buffer is sized to the task
//!   count up front and every slot is written once, before workers
//!   spawn. `top`/`bottom` are plain array indices, not modular
//!   sequence numbers.
//! * **Indices, not payloads.** The deque hands out `usize` task
//!   indices; the closures themselves live in per-task mutex slots
//!   that the claimant takes from. Even if the index protocol were
//!   wrong, a task could never run twice — the second claimant would
//!   find its slot empty.
//!
//! Every atomic access is `SeqCst`, matching the `teleios-loom` shim
//! (which models *all* orderings as `SeqCst`): under
//! `--features loom` the imports below swap to the modeled atomics and
//! the owner/thief races become exhaustively checkable interleavings.
//! The sequential-consistency requirement is real, not an artifact of
//! the model: under relaxed orderings a thief could read a stale
//! `bottom` and steal an element the owner already popped. Keeping the
//! implementation at `SeqCst` keeps the code and its model identical.

#[cfg(feature = "loom")]
use teleios_loom::sync::atomic::{AtomicUsize, Ordering};

#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty. Once every producer has stopped
    /// pushing (always true in the pool, which preloads), `Empty` is
    /// stable: the deque will never hold work again.
    Empty,
    /// The CAS on `top` lost to a concurrent owner-pop or rival thief.
    /// The deque may still hold work — probe again.
    Retry,
    /// A task index was stolen.
    Task(usize),
}

/// A fixed-capacity work-stealing deque of task indices.
///
/// The owner preloads with [`StealDeque::push`] (single-threaded,
/// before sharing), then drains with [`StealDeque::pop`] while any
/// number of thieves call [`StealDeque::steal`] concurrently. Each
/// pushed index is returned exactly once across all pops and steals.
#[derive(Debug)]
pub struct StealDeque {
    /// Task indices; slot `i` is written once by `push` and only read
    /// afterwards, so a racing reader always sees a fully published
    /// value (the CAS on `top` decides who may *use* it).
    buf: Vec<AtomicUsize>,
    /// Index of the oldest live element: thieves advance it by CAS.
    top: AtomicUsize,
    /// One past the youngest live element: only the owner moves it.
    bottom: AtomicUsize,
}

impl StealDeque {
    /// An empty deque able to hold `capacity` indices.
    pub fn new(capacity: usize) -> StealDeque {
        StealDeque {
            buf: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            top: AtomicUsize::new(0),
            bottom: AtomicUsize::new(0),
        }
    }

    /// Owner-side push at the bottom. Must only be called before the
    /// deque is shared with thieves (the pool preloads every deque
    /// before spawning workers). Pushes beyond capacity are ignored —
    /// the pool sizes each deque to its exact preload count.
    pub fn push(&self, index: usize) {
        let b = self.bottom.load(Ordering::SeqCst);
        if b >= self.buf.len() {
            return;
        }
        self.buf[b].store(index, Ordering::SeqCst);
        self.bottom.store(b + 1, Ordering::SeqCst);
    }

    /// Owner-side pop from the bottom. Returns `None` when the deque
    /// is empty (or the lone remaining element was lost to a thief).
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::SeqCst);
        if b == 0 {
            // The owner has consumed its whole range; `bottom` never
            // grows again (no pushes after sharing), so the deque is
            // permanently empty for the owner.
            return None;
        }
        let nb = b - 1;
        // Publish the claim *before* reading `top`: a thief that
        // observes the old `bottom` afterwards would race us on the
        // CAS below, never take the element silently.
        self.bottom.store(nb, Ordering::SeqCst);
        let t = self.top.load(Ordering::SeqCst);
        if t > nb {
            // Thieves emptied the deque under us; restore `bottom`.
            self.bottom.store(b, Ordering::SeqCst);
            return None;
        }
        let v = self.buf[nb].load(Ordering::SeqCst);
        if t == nb {
            // Last element: race any thief for it via the CAS on
            // `top`. Win or lose, the deque ends empty with
            // `top == bottom`.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok();
            self.bottom.store(b, Ordering::SeqCst);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Thief-side steal from the top. [`Steal::Retry`] means the CAS
    /// lost a race and the caller should probe again; [`Steal::Empty`]
    /// means the deque held nothing at the time of the probe.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        let v = self.buf[t].load(Ordering::SeqCst);
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            Steal::Task(v)
        } else {
            Steal::Retry
        }
    }

    /// True when the deque currently holds no elements. Racy by
    /// nature — only meaningful to the owner or after quiescence.
    pub fn is_empty(&self) -> bool {
        let t = self.top.load(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::SeqCst);
        t >= b
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

    #[test]
    fn owner_pops_in_reverse_push_order() {
        let d = StealDeque::new(4);
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), Some(0));
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn thief_steals_oldest_first() {
        let d = StealDeque::new(3);
        for i in 10..13 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Task(10));
        assert_eq!(d.steal(), Steal::Task(11));
        assert_eq!(d.steal(), Steal::Task(12));
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn pop_and_steal_partition_the_elements() {
        let d = StealDeque::new(6);
        for i in 0..6 {
            d.push(i);
        }
        let mut seen = HashSet::new();
        assert!(seen.insert(d.pop().unwrap())); // 5
        match d.steal() {
            Steal::Task(v) => assert!(seen.insert(v)), // 0
            other => panic!("expected a task, got {other:?}"),
        }
        while let Some(v) = d.pop() {
            assert!(seen.insert(v), "duplicate pop of {v}");
        }
        assert_eq!(seen, (0..6).collect::<HashSet<usize>>());
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn empty_deque_reports_empty_everywhere() {
        let d = StealDeque::new(0);
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
        assert!(d.is_empty());
    }

    #[test]
    fn overflow_pushes_are_ignored() {
        let d = StealDeque::new(2);
        d.push(1);
        d.push(2);
        d.push(3); // beyond capacity: dropped
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn concurrent_owner_and_thieves_claim_each_index_once() {
        const N: usize = 10_000;
        let d = StealDeque::new(N);
        for i in 0..N {
            d.push(i);
        }
        let claims: Vec<StdAtomicUsize> =
            (0..N).map(|_| StdAtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|scope| {
            let deque = &d;
            let claims = &claims;
            for _ in 0..3 {
                scope.spawn(move |_| loop {
                    match deque.steal() {
                        Steal::Task(v) => {
                            claims[v].fetch_add(1, StdOrdering::SeqCst);
                        }
                        Steal::Retry => {}
                        Steal::Empty => break,
                    }
                });
            }
            while let Some(v) = d.pop() {
                claims[v].fetch_add(1, StdOrdering::SeqCst);
            }
        })
        .expect("scope");
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(StdOrdering::SeqCst), 1, "index {i} claim count");
        }
    }
}
