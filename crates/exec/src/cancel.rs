//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the
//! party that decides to stop a computation (a deadline watchdog, a
//! shutdown handler) and the code doing the work. Cancellation is
//! strictly cooperative: nothing is killed, no thread is unwound from
//! the outside. Workers observe the flag at safe points — between
//! morsels in [`crate::WorkerPool`], at stage boundaries in the NOA
//! chain — and drain gracefully, so partial results stay consistent.
//!
//! The first `cancel` call wins and records a human-readable reason;
//! later calls are no-ops. This keeps error attribution deterministic
//! when several watchdog rules fire close together.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    reason: Mutex<Option<String>>,
}

/// A shared, clonable cancellation flag with a first-wins reason.
///
/// Clones observe the same flag; `Default` yields a fresh,
/// not-yet-cancelled token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation with a reason. Returns `true` if this call
    /// was the one that flipped the flag (its reason is recorded);
    /// `false` if the token was already cancelled (reason unchanged).
    pub fn cancel(&self, reason: impl Into<String>) -> bool {
        let first = !self.inner.cancelled.swap(true, Ordering::SeqCst);
        if first {
            let mut slot = self
                .inner
                .reason
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *slot = Some(reason.into());
        }
        first
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// The reason recorded by the winning `cancel` call, if any.
    ///
    /// Note: a racing reader may briefly observe `is_cancelled() ==
    /// true` with no reason yet; callers format a generic message in
    /// that window.
    pub fn reason(&self) -> Option<String> {
        self.inner
            .reason
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Sleep for up to `total`, polling the token in ~1 ms slices.
    /// Returns `true` if the sleep was cut short by cancellation,
    /// `false` if the full duration elapsed uncancelled. This is how
    /// injected hang faults stay deterministic without ever outliving
    /// the deadline that cancels them.
    pub fn sleep_cancellable(&self, total: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(1);
        let start = Instant::now();
        loop {
            if self.is_cancelled() {
                return true;
            }
            let elapsed = start.elapsed();
            if elapsed >= total {
                return false;
            }
            // `total` may be enormous (an unbounded hang relies on the
            // watchdog); sleep only a slice at a time.
            thread::sleep(SLICE.min(total - elapsed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
    }

    #[test]
    fn first_cancel_wins_and_records_reason() {
        let token = CancelToken::new();
        assert!(token.cancel("deadline overshot"));
        assert!(token.is_cancelled());
        assert!(!token.cancel("second reason loses"));
        assert_eq!(token.reason().as_deref(), Some("deadline overshot"));
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel("stop");
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason().as_deref(), Some("stop"));
    }

    #[test]
    fn sleep_runs_to_completion_when_uncancelled() {
        let token = CancelToken::new();
        let t0 = Instant::now();
        let cut_short = token.sleep_cancellable(Duration::from_millis(5));
        assert!(!cut_short);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn sleep_is_cut_short_by_cancellation() {
        let token = CancelToken::new();
        let watcher = token.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            watcher.cancel("watchdog");
        });
        let t0 = Instant::now();
        // Without cancellation this would sleep for ten seconds.
        let cut_short = token.sleep_cancellable(Duration::from_secs(10));
        assert!(cut_short);
        assert!(t0.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn sleep_returns_immediately_when_already_cancelled() {
        let token = CancelToken::new();
        token.cancel("pre-cancelled");
        assert!(token.sleep_cancellable(Duration::from_secs(10)));
    }
}
