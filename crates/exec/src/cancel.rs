//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the
//! party that decides to stop a computation (a deadline watchdog, a
//! shutdown handler) and the code doing the work. Cancellation is
//! strictly cooperative: nothing is killed, no thread is unwound from
//! the outside. Workers observe the flag at safe points — between
//! morsels in [`crate::WorkerPool`], at stage boundaries in the NOA
//! chain — and drain gracefully, so partial results stay consistent.
//!
//! The first `cancel` call wins and records a human-readable reason;
//! later calls are no-ops. This keeps error attribution deterministic
//! when several watchdog rules fire close together.

// Under the `loom` feature the token's atomics and mutex come from
// the vendored `teleios-loom` model checker, so the *same* code that
// ships is the code whose interleavings are exhaustively explored by
// `tests/loom.rs`. Outside a model run the loom types delegate
// straight to `std`, so the ordinary test suite still works with the
// feature enabled.
#[cfg(feature = "loom")]
use teleios_loom::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "loom")]
use teleios_loom::sync::Arc;

#[cfg(not(feature = "loom"))]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(feature = "loom"))]
use std::sync::Arc;

use crate::ordered_lock::OrderedMutex;
use std::thread;
use std::time::{Duration, Instant};

/// Yield to the scheduler — the model scheduler under `loom`, the OS
/// scheduler otherwise. Used between polls in [`CancelToken::poll_cancellable`].
fn yield_to_scheduler() {
    #[cfg(feature = "loom")]
    teleios_loom::thread::yield_now();
    #[cfg(not(feature = "loom"))]
    thread::yield_now();
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    // Witnessed (debug builds record it in the global lock-order
    // graph) and loom-modeled under the `loom` feature.
    reason: OrderedMutex<Option<String>>,
}

impl Default for Inner {
    fn default() -> Inner {
        Inner {
            cancelled: AtomicBool::default(),
            reason: OrderedMutex::new("cancel.reason", None),
        }
    }
}

/// A shared, clonable cancellation flag with a first-wins reason.
///
/// Clones observe the same flag; `Default` yields a fresh,
/// not-yet-cancelled token.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation with a reason. Returns `true` if this call
    /// was the one that flipped the flag (its reason is recorded);
    /// `false` if the token was already cancelled (reason unchanged).
    pub fn cancel(&self, reason: impl Into<String>) -> bool {
        let first = !self.inner.cancelled.swap(true, Ordering::SeqCst);
        if first {
            let mut slot = self.inner.reason.lock();
            *slot = Some(reason.into());
        }
        first
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// The reason recorded by the winning `cancel` call, if any.
    ///
    /// Note: a racing reader may briefly observe `is_cancelled() ==
    /// true` with no reason yet; callers format a generic message in
    /// that window.
    pub fn reason(&self) -> Option<String> {
        self.inner.reason.lock().clone()
    }

    /// Poll the token up to `polls` times, yielding to the scheduler
    /// between polls; returns `true` as soon as cancellation is
    /// observed. This is the time-free core of
    /// [`Self::sleep_cancellable`]'s wake-up loop: the loom suite
    /// model-checks *this* (clocks don't exist inside the model), and
    /// `sleep_cancellable` is the same loop with a real clock and 1 ms
    /// sleeps between polls.
    pub fn poll_cancellable(&self, polls: usize) -> bool {
        for _ in 0..polls {
            if self.is_cancelled() {
                return true;
            }
            yield_to_scheduler();
        }
        self.is_cancelled()
    }

    /// Sleep for up to `total`, polling the token in ~1 ms slices.
    /// Returns `true` if the sleep was cut short by cancellation,
    /// `false` if the full duration elapsed uncancelled. This is how
    /// injected hang faults stay deterministic without ever outliving
    /// the deadline that cancels them.
    pub fn sleep_cancellable(&self, total: Duration) -> bool {
        const SLICE: Duration = Duration::from_millis(1);
        let start = Instant::now();
        loop {
            if self.is_cancelled() {
                return true;
            }
            let elapsed = start.elapsed();
            if elapsed >= total {
                return false;
            }
            // `total` may be enormous (an unbounded hang relies on the
            // watchdog); sleep only a slice at a time.
            thread::sleep(SLICE.min(total - elapsed));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        assert_eq!(token.reason(), None);
    }

    #[test]
    fn first_cancel_wins_and_records_reason() {
        let token = CancelToken::new();
        assert!(token.cancel("deadline overshot"));
        assert!(token.is_cancelled());
        assert!(!token.cancel("second reason loses"));
        assert_eq!(token.reason().as_deref(), Some("deadline overshot"));
    }

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel("stop");
        assert!(clone.is_cancelled());
        assert_eq!(clone.reason().as_deref(), Some("stop"));
    }

    #[test]
    fn sleep_runs_to_completion_when_uncancelled() {
        let token = CancelToken::new();
        let t0 = Instant::now();
        let cut_short = token.sleep_cancellable(Duration::from_millis(5));
        assert!(!cut_short);
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn sleep_is_cut_short_by_cancellation() {
        let token = CancelToken::new();
        let watcher = token.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            watcher.cancel("watchdog");
        });
        let t0 = Instant::now();
        // Without cancellation this would sleep for ten seconds.
        let cut_short = token.sleep_cancellable(Duration::from_secs(10));
        assert!(cut_short);
        assert!(t0.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn sleep_returns_immediately_when_already_cancelled() {
        let token = CancelToken::new();
        token.cancel("pre-cancelled");
        assert!(token.sleep_cancellable(Duration::from_secs(10)));
    }

    #[test]
    fn poll_observes_cancellation_and_reports_final_state() {
        let token = CancelToken::new();
        assert!(!token.poll_cancellable(3), "uncancelled token polls false");
        token.cancel("now");
        assert!(token.poll_cancellable(0), "zero polls still reads the final state");
        assert!(token.poll_cancellable(3));
    }

    // Satellite coverage for the first-wins invariant in the plain
    // test tier (the loom suite checks the same properties over every
    // interleaving; these check them over many real OS schedules).

    #[test]
    fn racing_cancels_have_exactly_one_winner() {
        for round in 0..64 {
            let token = CancelToken::new();
            let (a, b) = (token.clone(), token.clone());
            let ta = thread::spawn(move || a.cancel("racer-a"));
            let tb = thread::spawn(move || b.cancel("racer-b"));
            let won_a = ta.join().unwrap();
            let won_b = tb.join().unwrap();
            assert!(won_a ^ won_b, "round {round}: exactly one cancel must win");
            let winner = if won_a { "racer-a" } else { "racer-b" };
            assert_eq!(
                token.reason().as_deref(),
                Some(winner),
                "round {round}: reason must be the winner's"
            );
        }
    }

    #[test]
    fn reason_is_visible_once_cancel_returns() {
        // After any `cancel` call has *returned*, both the flag and
        // the winning reason are fully published: is_cancelled() is
        // true and reason() is Some (the None window exists only while
        // a cancel call is still in flight).
        for _ in 0..64 {
            let token = CancelToken::new();
            let c = token.clone();
            let t = thread::spawn(move || {
                c.cancel("published");
                assert!(c.is_cancelled());
                assert_eq!(c.reason().as_deref(), Some("published"));
            });
            // Concurrent reads may see the in-flight window, but only
            // in the documented shape: reason Some implies flag true.
            let reason_first = token.reason();
            let flag_after = token.is_cancelled();
            if reason_first.is_some() {
                assert!(flag_after, "reason visible implies flag visible");
            }
            t.join().unwrap();
            assert!(token.is_cancelled());
            assert_eq!(token.reason().as_deref(), Some("published"));
        }
    }
}
