//! Scoped worker pool built on `crossbeam` scope + channels.
//!
//! The pool is a lightweight value (`Copy`): it records a thread
//! count and spins up scoped workers per call, so it can borrow the
//! caller's data (columns, chunks, arrays) without `Arc` plumbing.
//! Results always come back in task-submission order.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread;

use crate::cancel::CancelToken;
use crate::morsel::morsels;

/// Worker count from the environment: `TELEIOS_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// Read on every call so harnesses can sweep thread counts in-process.
pub fn default_threads() -> usize {
    match std::env::var("TELEIOS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Observability for a bounded-queue run: how many workers served the
/// queue, the queue's capacity, and the peak number of tasks waiting
/// in the queue (sampled by the producer after each enqueue — the
/// bounded channel guarantees it never exceeds `queue_capacity`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads that served the run (1 = inline on the caller).
    pub workers: usize,
    /// Capacity of the bounded task queue.
    pub queue_capacity: usize,
    /// Peak queued-but-not-yet-claimed task count observed.
    pub max_queue_depth: usize,
}

/// A morsel-driven worker pool. `Copy` and stateless between calls:
/// construct one per operator invocation (or keep one around — both
/// are free).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// A pool sized by [`default_threads`] (`TELEIOS_THREADS` env
    /// override, else available parallelism).
    fn default() -> WorkerPool {
        WorkerPool { threads: default_threads() }
    }
}

impl WorkerPool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> WorkerPool {
        WorkerPool { threads: threads.max(1) }
    }

    /// The worker count this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Morsel ranges for an input of `len` elements, one per worker
    /// (fewer when `len < threads`).
    pub fn morsels_for(&self, len: usize) -> Vec<Range<usize>> {
        morsels(len, self.threads)
    }

    /// Run `tasks` and return their results in task order.
    ///
    /// With one thread (or fewer than two tasks) the tasks run inline
    /// on the caller, sequentially — the exact seed code path. In
    /// parallel mode a panicking task's payload is re-raised on the
    /// caller once all workers have drained, choosing the earliest
    /// failing task so panic identity matches the sequential run.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.threads <= 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let (slots, _) = self.dispatch(tasks, None, None);
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                // No cancel token was passed, so every task ran.
                None => unreachable!("uncancellable run skipped a task"),
                Some(Ok(v)) => out.push(v),
                Some(Err(payload)) => resume_unwind(payload),
            }
        }
        out
    }

    /// Run `tasks` through a bounded queue of `queue_capacity` slots,
    /// returning per-task results (`Err` carries a panic payload) in
    /// task order, plus queue statistics.
    ///
    /// The producer blocks while the queue is full, so memory for
    /// in-flight work is bounded by `queue_capacity + workers`
    /// regardless of how many tasks are submitted. With one thread
    /// the tasks run inline, each still isolated by `catch_unwind`.
    pub fn try_run_bounded<T, F>(
        &self,
        queue_capacity: usize,
        tasks: Vec<F>,
    ) -> (Vec<thread::Result<T>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let queue_capacity = queue_capacity.max(1);
        if self.threads <= 1 {
            let results = tasks
                .into_iter()
                .map(|f| catch_unwind(AssertUnwindSafe(f)))
                .collect();
            let stats =
                PoolStats { workers: 1, queue_capacity, max_queue_depth: 0 };
            return (results, stats);
        }
        let (slots, stats) = self.dispatch(tasks, Some(queue_capacity), None);
        let results = slots
            .into_iter()
            .map(|slot| match slot {
                Some(outcome) => outcome,
                // No cancel token was passed, so every task ran.
                None => unreachable!("uncancellable run skipped a task"),
            })
            .collect();
        (results, stats)
    }

    /// Like [`Self::try_run_bounded`], but checks `cancel` between
    /// morsels: once the token fires, the producer stops enqueuing and
    /// every worker skips the tasks it claims, so in-flight work drains
    /// instead of running to completion. Skipped tasks come back as
    /// `None` in their submission-order slot; completed ones as
    /// `Some(result)`. Tasks already executing when the token fires
    /// are *not* interrupted — cancellation inside a task is the
    /// task's own business (the NOA chain checks the same token at
    /// stage boundaries).
    pub fn try_run_bounded_cancellable<T, F>(
        &self,
        queue_capacity: usize,
        tasks: Vec<F>,
        cancel: &CancelToken,
    ) -> (Vec<Option<thread::Result<T>>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let queue_capacity = queue_capacity.max(1);
        if self.threads <= 1 {
            let results = tasks
                .into_iter()
                .map(|f| {
                    if cancel.is_cancelled() {
                        None
                    } else {
                        Some(catch_unwind(AssertUnwindSafe(f)))
                    }
                })
                .collect();
            let stats =
                PoolStats { workers: 1, queue_capacity, max_queue_depth: 0 };
            return (results, stats);
        }
        self.dispatch(tasks, Some(queue_capacity), Some(cancel))
    }

    /// Shared parallel executor. `bound` selects a bounded task queue
    /// (capacity in tasks) or an unbounded one (everything enqueued up
    /// front). Results come back indexed in submission order; a `None`
    /// slot means the task was skipped because `cancel` fired before a
    /// worker executed it (only possible when `cancel` is `Some`).
    fn dispatch<T, F>(
        &self,
        tasks: Vec<F>,
        bound: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> (Vec<Option<thread::Result<T>>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.threads.min(n.max(1));
        let (task_tx, task_rx) = match bound {
            Some(cap) => crossbeam::channel::bounded::<(usize, F)>(cap),
            None => crossbeam::channel::unbounded::<(usize, F)>(),
        };
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<(usize, Option<thread::Result<T>>)>();

        let mut max_queue_depth = 0usize;
        let scope_result = crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                scope.spawn(move |_| {
                    for (i, task) in task_rx.iter() {
                        // Check between morsels: a claimed-but-not-yet
                        // started task is skipped once the token fires,
                        // so the batch drains instead of running every
                        // queued kernel to completion.
                        let outcome = match cancel {
                            Some(token) if token.is_cancelled() => None,
                            _ => Some(catch_unwind(AssertUnwindSafe(task))),
                        };
                        if res_tx.send((i, outcome)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);
            // Produce on the caller thread; a bounded queue applies
            // backpressure here while workers drain it. A fired cancel
            // token stops production — unsubmitted tasks stay `None`.
            for pair in tasks.into_iter().enumerate() {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    break;
                }
                if task_tx.send(pair).is_err() {
                    break; // all workers gone; unreachable in practice
                }
                max_queue_depth = max_queue_depth.max(task_tx.len());
            }
            drop(task_tx);

            let mut slots: Vec<Option<thread::Result<T>>> =
                (0..n).map(|_| None).collect();
            for (i, outcome) in res_rx.iter() {
                if i < slots.len() {
                    slots[i] = outcome;
                }
            }
            slots
        });

        let stats = PoolStats {
            workers,
            queue_capacity: bound.unwrap_or(0),
            max_queue_depth,
        };
        match scope_result {
            Ok(slots) => (slots, stats),
            // Workers only run caught code; a scope-level panic would
            // mean the channel plumbing itself failed.
            Err(payload) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for threads in 1..=8 {
            let pool = WorkerPool::with_threads(threads);
            let tasks: Vec<_> =
                (0..50).map(|i| move || i * i).collect();
            let got = pool.run(tasks);
            let expect: Vec<i32> = (0..50).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn borrows_caller_data() {
        let data: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::with_threads(4);
        let tasks: Vec<_> = pool
            .morsels_for(data.len())
            .into_iter()
            .map(|r| {
                let slice = &data[r.start..r.end];
                move || slice.iter().sum::<u64>()
            })
            .collect();
        let total: u64 = pool.run(tasks).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn run_reraises_earliest_panic() {
        let pool = WorkerPool::with_threads(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("boom at 3");
                    }
                    if i == 6 {
                        panic!("boom at 6");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(tasks.into_iter().map(|f| move || f()).collect::<Vec<_>>())
        }))
        .expect_err("pool must re-raise the task panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "boom at 3");
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity() {
        let pool = WorkerPool::with_threads(4);
        let done = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                let done = &done;
                move || {
                    done.fetch_add(1, Ordering::SeqCst);
                    i
                }
            })
            .collect();
        let (results, stats) = pool.try_run_bounded(8, tasks);
        assert_eq!(done.load(Ordering::SeqCst), 200);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.queue_capacity, 8);
        assert!(
            stats.max_queue_depth <= stats.queue_capacity,
            "queue depth {} exceeded capacity {}",
            stats.max_queue_depth,
            stats.queue_capacity
        );
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..200).collect::<Vec<i32>>());
    }

    #[test]
    fn bounded_run_isolates_panics_per_task() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let tasks: Vec<_> = (0..10)
                .map(|i| {
                    move || {
                        assert!(i != 4, "scene 4 exploded");
                        i
                    }
                })
                .collect();
            let (results, _) = pool.try_run_bounded(4, tasks);
            assert_eq!(results.len(), 10);
            for (i, r) in results.into_iter().enumerate() {
                if i == 4 {
                    assert!(r.is_err(), "threads={threads}");
                } else {
                    assert_eq!(r.unwrap(), i, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn cancellable_run_completes_when_token_never_fires() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let token = CancelToken::new();
            let tasks: Vec<_> = (0..20).map(|i| move || i * 2).collect();
            let (slots, _) = pool.try_run_bounded_cancellable(4, tasks, &token);
            let got: Vec<i32> = slots
                .into_iter()
                .map(|s| s.expect("no task skipped").expect("no panic"))
                .collect();
            assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<i32>>(), "threads={threads}");
        }
    }

    #[test]
    fn pre_cancelled_token_skips_every_task() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let token = CancelToken::new();
            token.cancel("batch deadline");
            let ran = AtomicUsize::new(0);
            let tasks: Vec<_> = (0..32)
                .map(|i| {
                    let ran = &ran;
                    move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                        i
                    }
                })
                .collect();
            let (slots, _) = pool.try_run_bounded_cancellable(4, tasks, &token);
            assert_eq!(slots.len(), 32, "threads={threads}");
            assert!(slots.iter().all(Option::is_none), "threads={threads}");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn mid_run_cancellation_drains_without_running_the_tail() {
        let pool = WorkerPool::with_threads(2);
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let fire = token.clone();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
            .map(|i| {
                let ran = &ran;
                let fire = fire.clone();
                Box::new(move || {
                    if i == 3 {
                        fire.cancel("task 3 pulled the plug");
                    }
                    ran.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let (slots, _) = pool.try_run_bounded_cancellable(4, tasks, &token);
        assert_eq!(slots.len(), 64);
        let executed = ran.load(Ordering::SeqCst);
        // The task that fired the token still ran; the queued tail did
        // not (queue capacity bounds how much was already in flight).
        assert!(executed < 64, "cancellation should skip the tail, ran {executed}");
        assert!(slots.iter().filter(|s| s.is_some()).count() == executed);
        // Slot 3 definitely completed (it fired the token after running).
        assert!(slots[3].is_some());
    }

    #[test]
    fn env_override_controls_default_threads() {
        std::env::set_var("TELEIOS_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("TELEIOS_THREADS", "not-a-number");
        assert!(default_threads() >= 1);
        std::env::remove_var("TELEIOS_THREADS");
        assert!(default_threads() >= 1);
    }
}
