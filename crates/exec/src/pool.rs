//! Scoped worker pool built on `crossbeam` scope + channels.
//!
//! The pool is a lightweight value (`Copy`): it records a thread
//! count and spins up scoped workers per call, so it can borrow the
//! caller's data (columns, chunks, arrays) without `Arc` plumbing.
//! Results always come back in task-submission order.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crate::cancel::CancelToken;
use crate::morsel::morsels;
use crate::ordered_lock::OrderedMutex;
use crate::steal::{Steal, StealDeque};

/// Worker count from the environment: `TELEIOS_THREADS` when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
/// Read on every call so harnesses can sweep thread counts in-process.
pub fn default_threads() -> usize {
    match std::env::var("TELEIOS_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Observability for a pool run: how many workers served it, the
/// bounded queue's capacity and peak depth (static dispatch), and the
/// steal/execute/idle counters (stealing dispatch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads that served the run (1 = inline on the caller).
    pub workers: usize,
    /// Capacity of the bounded task queue (0 = unbounded or stealing).
    pub queue_capacity: usize,
    /// Peak queued-but-not-yet-claimed task count observed (sampled by
    /// the producer after each enqueue — the bounded channel guarantees
    /// it never exceeds `queue_capacity`). Always 0 under stealing
    /// dispatch, which has no central queue.
    pub max_queue_depth: usize,
    /// Tasks that actually executed (cancellation-skipped tasks are
    /// not counted).
    pub tasks_executed: usize,
    /// Executed tasks whose index was stolen from another worker's
    /// deque rather than popped from the claimant's own. Always 0
    /// under static dispatch.
    pub tasks_stolen: usize,
    /// Idle probe rounds: a worker found every deque empty or
    /// CAS-contended and yielded before re-probing. Always 0 under
    /// static dispatch.
    pub idle_polls: usize,
}

impl PoolStats {
    /// Fraction of executed tasks that were stolen — the load-balance
    /// signal E13b prints per kernel. 0.0 when nothing executed.
    pub fn steal_ratio(&self) -> f64 {
        if self.tasks_executed == 0 {
            0.0
        } else {
            self.tasks_stolen as f64 / self.tasks_executed as f64
        }
    }
}

/// How a pool entry point distributes tasks over workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Dispatch {
    /// Tasks flow through a shared channel in submission order; each
    /// worker takes the next one. Fair for uniform costs, but a slow
    /// task at the tail leaves the other workers idle behind it.
    Static,
    /// Tasks are preloaded into per-worker deques; idle workers steal
    /// from the busiest end of their neighbors' ranges. Wins on skewed
    /// morsel costs (the default for the strabon probe loops).
    #[default]
    Stealing,
}

/// A morsel-driven worker pool. `Copy` and stateless between calls:
/// construct one per operator invocation (or keep one around — both
/// are free).
#[derive(Debug, Clone, Copy)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// A pool sized by [`default_threads`] (`TELEIOS_THREADS` env
    /// override, else available parallelism).
    fn default() -> WorkerPool {
        WorkerPool { threads: default_threads() }
    }
}

impl WorkerPool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> WorkerPool {
        WorkerPool { threads: threads.max(1) }
    }

    /// The worker count this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Morsel ranges for an input of `len` elements, one per worker
    /// (fewer when `len < threads`).
    pub fn morsels_for(&self, len: usize) -> Vec<Range<usize>> {
        morsels(len, self.threads)
    }

    /// Run `tasks` and return their results in task order.
    ///
    /// With one thread (or fewer than two tasks) the tasks run inline
    /// on the caller, sequentially — the exact seed code path. In
    /// parallel mode a panicking task's payload is re-raised on the
    /// caller once all workers have drained, choosing the earliest
    /// failing task so panic identity matches the sequential run.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.threads <= 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let (slots, _) = self.dispatch(tasks, None, None);
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                // No cancel token was passed, so every task ran.
                None => unreachable!("uncancellable run skipped a task"),
                Some(Ok(v)) => out.push(v),
                Some(Err(payload)) => resume_unwind(payload),
            }
        }
        out
    }

    /// Run `tasks` through a bounded queue of `queue_capacity` slots,
    /// returning per-task results (`Err` carries a panic payload) in
    /// task order, plus queue statistics.
    ///
    /// The producer blocks while the queue is full, so memory for
    /// in-flight work is bounded by `queue_capacity + workers`
    /// regardless of how many tasks are submitted. With one thread
    /// the tasks run inline, each still isolated by `catch_unwind`.
    pub fn try_run_bounded<T, F>(
        &self,
        queue_capacity: usize,
        tasks: Vec<F>,
    ) -> (Vec<thread::Result<T>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let queue_capacity = queue_capacity.max(1);
        if self.threads <= 1 {
            let results: Vec<thread::Result<T>> = tasks
                .into_iter()
                .map(|f| catch_unwind(AssertUnwindSafe(f)))
                .collect();
            let stats = PoolStats {
                workers: 1,
                queue_capacity,
                tasks_executed: results.len(),
                ..PoolStats::default()
            };
            return (results, stats);
        }
        let (slots, stats) = self.dispatch(tasks, Some(queue_capacity), None);
        let results = slots
            .into_iter()
            .map(|slot| match slot {
                Some(outcome) => outcome,
                // No cancel token was passed, so every task ran.
                None => unreachable!("uncancellable run skipped a task"),
            })
            .collect();
        (results, stats)
    }

    /// Like [`Self::try_run_bounded`], but checks `cancel` between
    /// morsels: once the token fires, the producer stops enqueuing and
    /// every worker skips the tasks it claims, so in-flight work drains
    /// instead of running to completion. Skipped tasks come back as
    /// `None` in their submission-order slot; completed ones as
    /// `Some(result)`. Tasks already executing when the token fires
    /// are *not* interrupted — cancellation inside a task is the
    /// task's own business (the NOA chain checks the same token at
    /// stage boundaries).
    pub fn try_run_bounded_cancellable<T, F>(
        &self,
        queue_capacity: usize,
        tasks: Vec<F>,
        cancel: &CancelToken,
    ) -> (Vec<Option<thread::Result<T>>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let queue_capacity = queue_capacity.max(1);
        if self.threads <= 1 {
            let results: Vec<Option<thread::Result<T>>> = tasks
                .into_iter()
                .map(|f| {
                    if cancel.is_cancelled() {
                        None
                    } else {
                        Some(catch_unwind(AssertUnwindSafe(f)))
                    }
                })
                .collect();
            let stats = PoolStats {
                workers: 1,
                queue_capacity,
                tasks_executed: results.iter().filter(|s| s.is_some()).count(),
                ..PoolStats::default()
            };
            return (results, stats);
        }
        self.dispatch(tasks, Some(queue_capacity), Some(cancel))
    }

    /// Run `tasks` under the given [`Dispatch`] policy and return their
    /// results in task order. [`Dispatch::Static`] is [`Self::run`];
    /// [`Dispatch::Stealing`] is [`Self::run_stealing`]. Both keep the
    /// ordered-output contract, so callers can switch policy without
    /// touching their merge discipline.
    pub fn run_with<T, F>(&self, dispatch: Dispatch, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        match dispatch {
            Dispatch::Static => self.run(tasks),
            Dispatch::Stealing => self.run_stealing(tasks),
        }
    }

    /// Run `tasks` on the work-stealing scheduler and return their
    /// results in task order.
    ///
    /// Same contract as [`Self::run`] — results land by task index, a
    /// panicking task's payload is re-raised choosing the earliest
    /// failing task, and one thread (or fewer than two tasks) runs
    /// inline on the caller — but workers claim tasks dynamically:
    /// each worker owns a preloaded deque of a contiguous index range
    /// and, once it drains its own, steals from its neighbors. Only
    /// the *claim order* is dynamic; the output order is not, so the
    /// `parallel ≡ sequential` property carries over unchanged.
    pub fn run_stealing<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.threads <= 1 || tasks.len() <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        let (slots, _) = self.dispatch_stealing(tasks, None);
        let mut out = Vec::with_capacity(slots.len());
        for slot in slots {
            match slot {
                // No cancel token was passed, so every task ran.
                None => unreachable!("uncancellable stealing run skipped a task"),
                Some(Ok(v)) => out.push(v),
                Some(Err(payload)) => resume_unwind(payload),
            }
        }
        out
    }

    /// Like [`Self::run_stealing`], but returns per-task results
    /// (`Err` carries a panic payload) in task order plus the run's
    /// [`PoolStats`] — including the steal/execute/idle counters that
    /// E13b turns into a steal-ratio column.
    pub fn try_run_stealing<T, F>(
        &self,
        tasks: Vec<F>,
    ) -> (Vec<thread::Result<T>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.threads <= 1 || tasks.len() <= 1 {
            let results: Vec<thread::Result<T>> = tasks
                .into_iter()
                .map(|f| catch_unwind(AssertUnwindSafe(f)))
                .collect();
            let stats = PoolStats {
                workers: 1,
                tasks_executed: results.len(),
                ..PoolStats::default()
            };
            return (results, stats);
        }
        let (slots, stats) = self.dispatch_stealing(tasks, None);
        let results = slots
            .into_iter()
            .map(|slot| match slot {
                Some(outcome) => outcome,
                // No cancel token was passed, so every task ran.
                None => unreachable!("uncancellable stealing run skipped a task"),
            })
            .collect();
        (results, stats)
    }

    /// Like [`Self::try_run_stealing`], but checks `cancel` at every
    /// claim: once the token fires, workers keep draining the deques
    /// (claiming is cheap) and skip execution, so skipped tasks come
    /// back as `None` in their submission-order slot — the same
    /// drain-don't-finish semantics as
    /// [`Self::try_run_bounded_cancellable`]. The idle loop a worker
    /// enters when every deque is contended polls the token via
    /// [`CancelToken::poll_cancellable`], never a bare sleep, so a
    /// fired deadline interrupts the spin immediately.
    pub fn try_run_stealing_cancellable<T, F>(
        &self,
        tasks: Vec<F>,
        cancel: &CancelToken,
    ) -> (Vec<Option<thread::Result<T>>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.threads <= 1 || tasks.len() <= 1 {
            let results: Vec<Option<thread::Result<T>>> = tasks
                .into_iter()
                .map(|f| {
                    if cancel.is_cancelled() {
                        None
                    } else {
                        Some(catch_unwind(AssertUnwindSafe(f)))
                    }
                })
                .collect();
            let stats = PoolStats {
                workers: 1,
                tasks_executed: results.iter().filter(|s| s.is_some()).count(),
                ..PoolStats::default()
            };
            return (results, stats);
        }
        self.dispatch_stealing(tasks, Some(cancel))
    }

    /// Shared parallel executor. `bound` selects a bounded task queue
    /// (capacity in tasks) or an unbounded one (everything enqueued up
    /// front). Results come back indexed in submission order; a `None`
    /// slot means the task was skipped because `cancel` fired before a
    /// worker executed it (only possible when `cancel` is `Some`).
    fn dispatch<T, F>(
        &self,
        tasks: Vec<F>,
        bound: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> (Vec<Option<thread::Result<T>>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.threads.min(n.max(1));
        let (task_tx, task_rx) = match bound {
            Some(cap) => crossbeam::channel::bounded::<(usize, F)>(cap),
            None => crossbeam::channel::unbounded::<(usize, F)>(),
        };
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<(usize, Option<thread::Result<T>>)>();

        let mut max_queue_depth = 0usize;
        let executed = AtomicUsize::new(0);
        let scope_result = crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let task_rx = task_rx.clone();
                let res_tx = res_tx.clone();
                let executed = &executed;
                scope.spawn(move |_| {
                    let mut ran = 0usize;
                    for (i, task) in task_rx.iter() {
                        // Check between morsels: a claimed-but-not-yet
                        // started task is skipped once the token fires,
                        // so the batch drains instead of running every
                        // queued kernel to completion.
                        let outcome = match cancel {
                            Some(token) if token.is_cancelled() => None,
                            _ => {
                                ran += 1;
                                Some(catch_unwind(AssertUnwindSafe(task)))
                            }
                        };
                        if res_tx.send((i, outcome)).is_err() {
                            break;
                        }
                    }
                    executed.fetch_add(ran, Ordering::SeqCst);
                });
            }
            drop(res_tx);
            // Produce on the caller thread; a bounded queue applies
            // backpressure here while workers drain it. A fired cancel
            // token stops production — unsubmitted tasks stay `None`.
            for pair in tasks.into_iter().enumerate() {
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    break;
                }
                if task_tx.send(pair).is_err() {
                    break; // all workers gone; unreachable in practice
                }
                max_queue_depth = max_queue_depth.max(task_tx.len());
            }
            drop(task_tx);

            let mut slots: Vec<Option<thread::Result<T>>> =
                (0..n).map(|_| None).collect();
            for (i, outcome) in res_rx.iter() {
                if i < slots.len() {
                    slots[i] = outcome;
                }
            }
            slots
        });

        let stats = PoolStats {
            workers,
            queue_capacity: bound.unwrap_or(0),
            max_queue_depth,
            tasks_executed: executed.load(Ordering::SeqCst),
            ..PoolStats::default()
        };
        match scope_result {
            Ok(slots) => (slots, stats),
            // Workers only run caught code; a scope-level panic would
            // mean the channel plumbing itself failed.
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Work-stealing parallel executor. Every task closure is parked
    /// in a mutex slot; per-worker [`StealDeque`]s are preloaded with
    /// contiguous morsels of task *indices* (pushed in reverse, so
    /// each owner pops its range in ascending submission order while
    /// thieves take the far end). A worker drains its own deque, then
    /// steals round-robin from its neighbors; since nothing is pushed
    /// after the preload, a full probe round of `Empty` results is
    /// stable and the worker can exit. `Retry` (a lost CAS) means work
    /// may remain: the worker yields — through
    /// [`CancelToken::poll_cancellable`] when a token is present, so
    /// the spin stays cancellable — and probes again.
    ///
    /// Results come back indexed in submission order; a `None` slot
    /// means the task was claimed after `cancel` fired and was skipped
    /// (only possible when `cancel` is `Some`).
    fn dispatch_stealing<T, F>(
        &self,
        tasks: Vec<F>,
        cancel: Option<&CancelToken>,
    ) -> (Vec<Option<thread::Result<T>>>, PoolStats)
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.threads.min(n.max(1));
        // The deques hand out each index exactly once; taking the
        // closure out of its slot is a second, independent
        // exactly-once guarantee (a misbehaving claim would find the
        // slot already empty rather than run a task twice).
        let task_slots: Vec<OrderedMutex<Option<F>>> = tasks
            .into_iter()
            .map(|f| OrderedMutex::new("pool.steal_task", Some(f)))
            .collect();
        let deques: Vec<StealDeque> = morsels(n, workers)
            .into_iter()
            .map(|r| {
                let d = StealDeque::new(r.len());
                for i in r.rev() {
                    d.push(i);
                }
                d
            })
            .collect();
        let (res_tx, res_rx) =
            crossbeam::channel::unbounded::<(usize, Option<thread::Result<T>>)>();

        let executed = AtomicUsize::new(0);
        let stolen = AtomicUsize::new(0);
        let idle = AtomicUsize::new(0);
        let scope_result = crossbeam::thread::scope(|scope| {
            for w in 0..workers {
                let res_tx = res_tx.clone();
                let deques = &deques;
                let task_slots = &task_slots;
                let executed = &executed;
                let stolen = &stolen;
                let idle = &idle;
                scope.spawn(move |_| {
                    let mut my_executed = 0usize;
                    let mut my_stolen = 0usize;
                    let mut my_idle = 0usize;
                    loop {
                        // Claim: own deque first, then round-robin
                        // steals starting at the next neighbor.
                        let mut claim = deques[w].pop().map(|i| (i, false));
                        if claim.is_none() {
                            let mut contended = false;
                            for k in 1..workers {
                                match deques[(w + k) % workers].steal() {
                                    Steal::Task(i) => {
                                        claim = Some((i, true));
                                        break;
                                    }
                                    Steal::Retry => contended = true,
                                    Steal::Empty => {}
                                }
                            }
                            if claim.is_none() {
                                if !contended {
                                    // Every deque observed Empty and no
                                    // pushes can happen: all work is
                                    // claimed, so this worker is done.
                                    break;
                                }
                                // Lost a CAS race somewhere — work may
                                // remain. Yield cancellably and probe
                                // again.
                                my_idle += 1;
                                match cancel {
                                    Some(token) => {
                                        token.poll_cancellable(1);
                                    }
                                    None => thread::yield_now(),
                                }
                                continue;
                            }
                        }
                        let Some((i, was_stolen)) = claim else { break };
                        let Some(task) = task_slots[i].lock().take() else {
                            // Unreachable: the deque protocol hands out
                            // each index once. Skipping is still safe.
                            continue;
                        };
                        let outcome = match cancel {
                            Some(token) if token.is_cancelled() => None,
                            _ => {
                                my_executed += 1;
                                if was_stolen {
                                    my_stolen += 1;
                                }
                                Some(catch_unwind(AssertUnwindSafe(task)))
                            }
                        };
                        if res_tx.send((i, outcome)).is_err() {
                            break;
                        }
                    }
                    executed.fetch_add(my_executed, Ordering::SeqCst);
                    stolen.fetch_add(my_stolen, Ordering::SeqCst);
                    idle.fetch_add(my_idle, Ordering::SeqCst);
                });
            }
            drop(res_tx);
            // Each of the `n` indices is claimed by exactly one worker
            // and produces exactly one result message, so the receive
            // loop ends when the last worker hangs up.
            let mut slots: Vec<Option<thread::Result<T>>> =
                (0..n).map(|_| None).collect();
            for (i, outcome) in res_rx.iter() {
                if i < slots.len() {
                    slots[i] = outcome;
                }
            }
            slots
        });

        let stats = PoolStats {
            workers,
            tasks_executed: executed.load(Ordering::SeqCst),
            tasks_stolen: stolen.load(Ordering::SeqCst),
            idle_polls: idle.load(Ordering::SeqCst),
            ..PoolStats::default()
        };
        match scope_result {
            Ok(slots) => (slots, stats),
            // Workers only run caught code; a scope-level panic would
            // mean the deque or channel plumbing itself failed.
            Err(payload) => resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        for threads in 1..=8 {
            let pool = WorkerPool::with_threads(threads);
            let tasks: Vec<_> =
                (0..50).map(|i| move || i * i).collect();
            let got = pool.run(tasks);
            let expect: Vec<i32> = (0..50).map(|i| i * i).collect();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn borrows_caller_data() {
        let data: Vec<u64> = (0..10_000).collect();
        let pool = WorkerPool::with_threads(4);
        let tasks: Vec<_> = pool
            .morsels_for(data.len())
            .into_iter()
            .map(|r| {
                let slice = &data[r.start..r.end];
                move || slice.iter().sum::<u64>()
            })
            .collect();
        let total: u64 = pool.run(tasks).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn run_reraises_earliest_panic() {
        let pool = WorkerPool::with_threads(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("boom at 3");
                    }
                    if i == 6 {
                        panic!("boom at 6");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(tasks.into_iter().map(|f| move || f()).collect::<Vec<_>>())
        }))
        .expect_err("pool must re-raise the task panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "boom at 3");
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity() {
        let pool = WorkerPool::with_threads(4);
        let done = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..200)
            .map(|i| {
                let done = &done;
                move || {
                    done.fetch_add(1, Ordering::SeqCst);
                    i
                }
            })
            .collect();
        let (results, stats) = pool.try_run_bounded(8, tasks);
        assert_eq!(done.load(Ordering::SeqCst), 200);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.queue_capacity, 8);
        assert!(
            stats.max_queue_depth <= stats.queue_capacity,
            "queue depth {} exceeded capacity {}",
            stats.max_queue_depth,
            stats.queue_capacity
        );
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..200).collect::<Vec<i32>>());
    }

    #[test]
    fn bounded_run_isolates_panics_per_task() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let tasks: Vec<_> = (0..10)
                .map(|i| {
                    move || {
                        assert!(i != 4, "scene 4 exploded");
                        i
                    }
                })
                .collect();
            let (results, _) = pool.try_run_bounded(4, tasks);
            assert_eq!(results.len(), 10);
            for (i, r) in results.into_iter().enumerate() {
                if i == 4 {
                    assert!(r.is_err(), "threads={threads}");
                } else {
                    assert_eq!(r.unwrap(), i, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn cancellable_run_completes_when_token_never_fires() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let token = CancelToken::new();
            let tasks: Vec<_> = (0..20).map(|i| move || i * 2).collect();
            let (slots, _) = pool.try_run_bounded_cancellable(4, tasks, &token);
            let got: Vec<i32> = slots
                .into_iter()
                .map(|s| s.expect("no task skipped").expect("no panic"))
                .collect();
            assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<i32>>(), "threads={threads}");
        }
    }

    #[test]
    fn pre_cancelled_token_skips_every_task() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let token = CancelToken::new();
            token.cancel("batch deadline");
            let ran = AtomicUsize::new(0);
            let tasks: Vec<_> = (0..32)
                .map(|i| {
                    let ran = &ran;
                    move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                        i
                    }
                })
                .collect();
            let (slots, _) = pool.try_run_bounded_cancellable(4, tasks, &token);
            assert_eq!(slots.len(), 32, "threads={threads}");
            assert!(slots.iter().all(Option::is_none), "threads={threads}");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn mid_run_cancellation_drains_without_running_the_tail() {
        let pool = WorkerPool::with_threads(2);
        let token = CancelToken::new();
        let ran = AtomicUsize::new(0);
        let fire = token.clone();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64usize)
            .map(|i| {
                let ran = &ran;
                let fire = fire.clone();
                Box::new(move || {
                    if i == 3 {
                        fire.cancel("task 3 pulled the plug");
                    }
                    ran.fetch_add(1, Ordering::SeqCst);
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let (slots, _) = pool.try_run_bounded_cancellable(4, tasks, &token);
        assert_eq!(slots.len(), 64);
        let executed = ran.load(Ordering::SeqCst);
        // The task that fired the token still ran; the queued tail did
        // not (queue capacity bounds how much was already in flight).
        assert!(executed < 64, "cancellation should skip the tail, ran {executed}");
        assert!(slots.iter().filter(|s| s.is_some()).count() == executed);
        // Slot 3 definitely completed (it fired the token after running).
        assert!(slots[3].is_some());
    }

    #[test]
    fn stealing_results_come_back_in_task_order() {
        for threads in 1..=8 {
            let pool = WorkerPool::with_threads(threads);
            // Skewed costs: early tasks spin longest, so a static split
            // would leave worker 0 the straggler.
            let tasks: Vec<_> = (0..50usize)
                .map(|i| {
                    move || {
                        let mut acc = 0u64;
                        for k in 0..((50 - i) * 200) as u64 {
                            acc = acc.wrapping_add(k);
                        }
                        (i, acc)
                    }
                })
                .collect();
            let got: Vec<usize> = pool.run_stealing(tasks).into_iter().map(|(i, _)| i).collect();
            assert_eq!(got, (0..50).collect::<Vec<usize>>(), "threads={threads}");
        }
    }

    #[test]
    fn stealing_stats_count_every_task_exactly_once() {
        let pool = WorkerPool::with_threads(4);
        let tasks: Vec<_> = (0..128).map(|i| move || i).collect();
        let (results, stats) = pool.try_run_stealing(tasks);
        assert_eq!(stats.workers, 4);
        assert_eq!(stats.tasks_executed, 128);
        assert!(stats.tasks_stolen <= stats.tasks_executed);
        assert_eq!(stats.queue_capacity, 0, "stealing has no central queue");
        assert!((0.0..=1.0).contains(&stats.steal_ratio()));
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..128).collect::<Vec<i32>>());
    }

    #[test]
    fn run_stealing_reraises_earliest_panic() {
        let pool = WorkerPool::with_threads(4);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("steal boom at 2");
                    }
                    if i == 5 {
                        panic!("steal boom at 5");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_stealing(tasks.into_iter().map(|f| move || f()).collect::<Vec<_>>())
        }))
        .expect_err("stealing pool must re-raise the task panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "steal boom at 2");
    }

    #[test]
    fn stealing_pre_cancelled_token_skips_every_task() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let token = CancelToken::new();
            token.cancel("batch deadline");
            let ran = AtomicUsize::new(0);
            let tasks: Vec<_> = (0..32)
                .map(|i| {
                    let ran = &ran;
                    move || {
                        ran.fetch_add(1, Ordering::SeqCst);
                        i
                    }
                })
                .collect();
            let (slots, stats) = pool.try_run_stealing_cancellable(tasks, &token);
            assert_eq!(slots.len(), 32, "threads={threads}");
            assert!(slots.iter().all(Option::is_none), "threads={threads}");
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
            assert_eq!(stats.tasks_executed, 0, "threads={threads}");
        }
    }

    #[test]
    fn stealing_cancellable_run_completes_when_token_never_fires() {
        for threads in [1usize, 4] {
            let pool = WorkerPool::with_threads(threads);
            let token = CancelToken::new();
            let tasks: Vec<_> = (0..20).map(|i| move || i * 2).collect();
            let (slots, stats) = pool.try_run_stealing_cancellable(tasks, &token);
            let got: Vec<i32> = slots
                .into_iter()
                .map(|s| s.expect("no task skipped").expect("no panic"))
                .collect();
            assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<i32>>(), "threads={threads}");
            assert_eq!(stats.tasks_executed, 20, "threads={threads}");
        }
    }

    #[test]
    fn run_with_matches_both_policies() {
        let pool = WorkerPool::with_threads(4);
        for dispatch in [Dispatch::Static, Dispatch::Stealing] {
            let tasks: Vec<_> = (0..64).map(|i| move || i + 1).collect();
            let got = pool.run_with(dispatch, tasks);
            assert_eq!(got, (1..=64).collect::<Vec<i32>>(), "{dispatch:?}");
        }
    }

    #[test]
    fn env_override_controls_default_threads() {
        std::env::set_var("TELEIOS_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("TELEIOS_THREADS", "not-a-number");
        assert!(default_threads() >= 1);
        std::env::remove_var("TELEIOS_THREADS");
        assert!(default_threads() >= 1);
    }
}
