//! Debug-time runtime lock-order witness.
//!
//! The static lint (`teleios-lint`, rule L6 `lock-order`) proves the
//! *source* acquires locks in one global order per crate; this module
//! cross-validates the same invariant at runtime. An [`OrderedMutex`]
//! is a named mutex that records, per thread, which other named locks
//! are held at the moment it is acquired — building the lock-order
//! graph from actual executions instead of from call sites. A cycle in
//! that graph is a deadlock the scheduler merely hasn't hit yet;
//! [`LockWitness::cycles`] reports every one with its node order, and
//! [`LockWitness::assert_acyclic`] turns it into a test failure.
//!
//! Two properties keep the witness honest and cheap:
//!
//! * Edges are recorded **before** blocking on the underlying mutex,
//!   so an attempted inversion shows up in the graph even in the
//!   schedule where it actually deadlocks.
//! * Bookkeeping always lives in plain `std::sync` primitives — even
//!   under the `loom` feature, where only the **protected** mutex is
//!   modeled — so the witness adds no interleavings to what
//!   `tests/loom.rs` explores and is itself race-free by construction
//!   (a single short-lived state lock).
//!
//! The process-wide witness behind [`OrderedMutex::new`] records only
//! in debug builds (`cfg!(debug_assertions)`); release builds pay one
//! predictable branch per acquisition. Tests (including the loom
//! suite, which `scripts/check.sh --full` runs in `--release`) use
//! [`LockWitness::new`], which is always enabled and isolated per
//! instance.

#[cfg(feature = "loom")]
use teleios_loom::sync::{Mutex as RawMutex, MutexGuard as RawGuard};

#[cfg(not(feature = "loom"))]
use std::sync::{Mutex as RawMutex, MutexGuard as RawGuard};

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex as StdMutex, OnceLock};
use std::thread::ThreadId;

/// Distinguishes lock *instances* that share a name (two shards named
/// `"shard"` must not produce a self-edge) and detects re-entry.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

#[derive(Debug, Default)]
struct WitnessState {
    /// Interned lock names; a node in the order graph is a name, not
    /// an instance, matching the static lint's granularity.
    names: Vec<String>,
    /// Directed edges `held -> acquiring` between name ids.
    edges: BTreeSet<(usize, usize)>,
    /// Per-thread stack of currently held `(instance, name id)`.
    held: HashMap<ThreadId, Vec<(u64, usize)>>,
}

impl WitnessState {
    fn intern(&mut self, name: &str) -> usize {
        if let Some(id) = self.names.iter().position(|n| n == name) {
            return id;
        }
        self.names.push(name.to_string());
        self.names.len() - 1
    }
}

/// The acquisition recorder shared by a set of [`OrderedMutex`]es.
///
/// Query it after (or during) a run: [`Self::edges`] is the observed
/// order graph, [`Self::cycles`] the inversions, [`Self::nothing_held`]
/// a leak check. Cloning the `Arc` shares the recorder.
pub struct LockWitness {
    enabled: bool,
    state: StdMutex<WitnessState>,
}

impl fmt::Debug for LockWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockWitness")
            .field("enabled", &self.enabled)
            .finish_non_exhaustive()
    }
}

impl LockWitness {
    /// A fresh, always-recording witness — what tests pass to
    /// [`OrderedMutex::with_witness`] so assertions hold in release
    /// builds too and runs stay isolated from each other.
    pub fn new() -> Arc<LockWitness> {
        Arc::new(LockWitness {
            enabled: true,
            state: StdMutex::new(WitnessState::default()),
        })
    }

    /// A witness that records nothing — the release-build behavior of
    /// the global witness, constructible explicitly for tests.
    pub fn disabled() -> Arc<LockWitness> {
        Arc::new(LockWitness {
            enabled: false,
            state: StdMutex::new(WitnessState::default()),
        })
    }

    /// The process-wide witness behind [`OrderedMutex::new`]:
    /// recording in debug builds, a no-op in release builds.
    pub fn global() -> &'static Arc<LockWitness> {
        static GLOBAL: OnceLock<Arc<LockWitness>> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Arc::new(LockWitness {
                enabled: cfg!(debug_assertions),
                state: StdMutex::new(WitnessState::default()),
            })
        })
    }

    fn state(&self) -> std::sync::MutexGuard<'_, WitnessState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn register(&self, name: &str) -> usize {
        let mut st = self.state();
        st.intern(name)
    }

    /// Record `held -> acquiring` edges for everything this thread
    /// holds. Called *before* blocking on the protected mutex.
    fn note_acquiring(&self, thread: ThreadId, instance: u64, name_id: usize) {
        let mut st = self.state();
        let held = st.held.get(&thread).cloned().unwrap_or_default();
        for (inst, nid) in held {
            // Same-name instances (shards) carry no order relative to
            // each other at name granularity; skip the self-edge.
            if inst != instance && nid != name_id {
                st.edges.insert((nid, name_id));
            }
        }
    }

    fn note_acquired(&self, thread: ThreadId, instance: u64, name_id: usize) {
        let mut st = self.state();
        st.held.entry(thread).or_default().push((instance, name_id));
    }

    /// Guards may be dropped in any order; release removes the guard's
    /// instance wherever it sits in the stack.
    fn note_released(&self, thread: ThreadId, instance: u64) {
        let mut st = self.state();
        if let Some(stack) = st.held.get_mut(&thread) {
            if let Some(pos) = stack.iter().rposition(|&(inst, _)| inst == instance) {
                stack.remove(pos);
            }
            if stack.is_empty() {
                st.held.remove(&thread);
            }
        }
    }

    /// The observed order graph as `(held, acquiring)` name pairs, in
    /// sorted order.
    pub fn edges(&self) -> Vec<(String, String)> {
        let st = self.state();
        st.edges
            .iter()
            .map(|&(a, b)| (st.names[a].clone(), st.names[b].clone()))
            .collect()
    }

    /// Every distinct cycle in the observed order graph, as the list
    /// of lock names along it (the cycle closes back on the first
    /// name). Empty means every observed acquisition respected one
    /// global order.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let st = self.state();
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &st.edges {
            adj.entry(a).or_default().push(b);
        }
        let mut seen: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        let mut out = Vec::new();
        for &(a, b) in &st.edges {
            let Some(back) = bfs_path(&adj, b, a) else { continue };
            let mut nodes = vec![a];
            nodes.extend(back);
            nodes.pop(); // the closing repeat of `a`
            let key: BTreeSet<usize> = nodes.iter().copied().collect();
            if seen.insert(key) {
                out.push(nodes.iter().map(|&n| st.names[n].clone()).collect());
            }
        }
        out
    }

    /// True when no thread currently holds any witnessed lock — the
    /// end-of-test leak check.
    pub fn nothing_held(&self) -> bool {
        self.state().held.is_empty()
    }

    /// Fail the current test if any inversion was observed.
    pub fn assert_acyclic(&self) {
        let cycles = self.cycles();
        assert!(
            cycles.is_empty(),
            "lock-order inversion witnessed at runtime: {}",
            cycles
                .iter()
                .map(|c| {
                    let mut path = c.join(" -> ");
                    path.push_str(" -> ");
                    path.push_str(&c[0]);
                    path
                })
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

/// Shortest path `from ..= to` in `adj`, if one exists.
fn bfs_path(adj: &BTreeMap<usize, Vec<usize>>, from: usize, to: usize) -> Option<Vec<usize>> {
    let mut prev: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    let mut visited = BTreeSet::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[&cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &next in adj.get(&node).into_iter().flatten() {
            if visited.insert(next) {
                prev.insert(next, node);
                queue.push_back(next);
            }
        }
    }
    None
}

/// A named mutex whose acquisitions feed a [`LockWitness`].
///
/// Drop-in for the `Mutex<T>` shape this workspace uses: `lock()`
/// returns the guard directly (poisoning is absorbed, matching the
/// `unwrap_or_else(|p| p.into_inner())` idiom at every existing call
/// site). Under the `loom` feature the protected mutex is the modeled
/// one, so model runs exercise the exact shipped locking; the witness
/// bookkeeping stays un-modeled by design.
pub struct OrderedMutex<T> {
    name: &'static str,
    name_id: usize,
    instance: u64,
    witness: Arc<LockWitness>,
    raw: RawMutex<T>,
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl<T> OrderedMutex<T> {
    /// A lock wired to the process-wide witness (recording in debug
    /// builds only). `name` is the node in the lock-order graph; give
    /// every distinct lock role a distinct name and reuse one name
    /// only for interchangeable shards.
    pub fn new(name: &'static str, value: T) -> OrderedMutex<T> {
        OrderedMutex::with_witness(name, value, LockWitness::global())
    }

    /// A lock wired to an explicit witness — how tests isolate and
    /// force-enable recording.
    pub fn with_witness(
        name: &'static str,
        value: T,
        witness: &Arc<LockWitness>,
    ) -> OrderedMutex<T> {
        let name_id = witness.register(name);
        OrderedMutex {
            name,
            name_id,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::SeqCst),
            witness: Arc::clone(witness),
            raw: RawMutex::new(value),
        }
    }

    /// The lock's graph-node name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquire, recording the order edge first so an inversion is
    /// witnessed even in the schedule where it deadlocks.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let thread = std::thread::current().id();
        if self.witness.enabled {
            self.witness.note_acquiring(thread, self.instance, self.name_id);
        }
        let guard = self.raw.lock().unwrap_or_else(|p| p.into_inner());
        if self.witness.enabled {
            self.witness.note_acquired(thread, self.instance, self.name_id);
        }
        OrderedMutexGuard { inner: guard, lock: self }
    }
}

/// RAII guard for [`OrderedMutex::lock`]; releases the witness record
/// on drop. Guards may be dropped in any order.
pub struct OrderedMutexGuard<'a, T> {
    inner: RawGuard<'a, T>,
    lock: &'a OrderedMutex<T>,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.lock.witness.enabled {
            self.lock
                .witness
                .note_released(std::thread::current().id(), self.lock.instance);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_stays_clean() {
        let w = LockWitness::new();
        let a = OrderedMutex::with_witness("a", 0u8, &w);
        let b = OrderedMutex::with_witness("b", 0u8, &w);
        for _ in 0..2 {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        assert_eq!(w.edges(), vec![("a".to_string(), "b".to_string())]);
        assert!(w.cycles().is_empty());
        assert!(w.nothing_held());
        w.assert_acyclic();
    }

    #[test]
    fn inversion_is_reported_as_a_cycle() {
        let w = LockWitness::new();
        let a = OrderedMutex::with_witness("alpha", (), &w);
        let b = OrderedMutex::with_witness("beta", (), &w);
        {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        }
        let cycles = w.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        let nodes: BTreeSet<&str> = cycles[0].iter().map(|s| s.as_str()).collect();
        assert_eq!(nodes, BTreeSet::from(["alpha", "beta"]));
        assert!(w.nothing_held());
        let failure = std::panic::catch_unwind(|| w.assert_acyclic());
        assert!(failure.is_err(), "assert_acyclic must fail on an inversion");
    }

    #[test]
    fn out_of_order_release_is_fine() {
        let w = LockWitness::new();
        let a = OrderedMutex::with_witness("a", (), &w);
        let b = OrderedMutex::with_witness("b", (), &w);
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // released before the later acquisition
        drop(gb);
        assert!(w.nothing_held());
        assert!(w.cycles().is_empty());
    }

    #[test]
    fn same_name_shards_produce_no_self_edge() {
        let w = LockWitness::new();
        let s1 = OrderedMutex::with_witness("shard", 1u8, &w);
        let s2 = OrderedMutex::with_witness("shard", 2u8, &w);
        let g1 = s1.lock();
        let g2 = s2.lock();
        drop(g2);
        drop(g1);
        assert!(w.edges().is_empty());
        assert!(w.cycles().is_empty());
    }

    #[test]
    fn transitive_cycle_across_three_locks() {
        let w = LockWitness::new();
        let a = OrderedMutex::with_witness("a", (), &w);
        let b = OrderedMutex::with_witness("b", (), &w);
        let c = OrderedMutex::with_witness("c", (), &w);
        for (first, second) in [(&a, &b), (&b, &c), (&c, &a)] {
            let g1 = first.lock();
            let g2 = second.lock();
            drop(g2);
            drop(g1);
        }
        let cycles = w.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0].len(), 3);
    }

    #[test]
    fn disabled_witness_records_nothing() {
        let w = LockWitness::disabled();
        let a = OrderedMutex::with_witness("a", 7u8, &w);
        let b = OrderedMutex::with_witness("b", 9u8, &w);
        let gb = b.lock();
        let ga = a.lock();
        assert_eq!(*ga + *gb, 16);
        drop(ga);
        drop(gb);
        let gb = b.lock();
        drop(gb);
        assert!(w.edges().is_empty());
        assert!(w.cycles().is_empty());
        assert!(w.nothing_held());
    }

    #[test]
    fn guard_gives_mutable_access() {
        let w = LockWitness::new();
        let a = OrderedMutex::with_witness("counter", 0u32, &w);
        *a.lock() += 5;
        assert_eq!(*a.lock(), 5);
        assert!(w.nothing_held());
    }
}
