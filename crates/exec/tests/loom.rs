//! Exhaustive model-checking of the exec/cancel race surface.
//!
//! Compiled only with the `loom` feature, which swaps the
//! [`CancelToken`]'s atomics and mutex for `teleios-loom` modeled
//! primitives — so these models exercise the *shipped* token code,
//! not a re-implementation. `teleios_loom::model` then runs each
//! closure once per schedule until the whole interleaving tree of the
//! modeled operations is explored.
//!
//! Covered races (the surface the E14 deadline watchdog depends on):
//!
//! 1. **First-wins cancel** — two racing `cancel` calls: exactly one
//!    wins in every schedule and the recorded reason is the winner's.
//! 2. **Cancel vs. read vs. reason-write** — a reader can observe the
//!    documented flag-before-reason window, but never a reason
//!    without the flag, and never a torn/foreign reason.
//! 3. **`sleep_cancellable` wakeup** — via its time-free core
//!    `poll_cancellable`: a poll loop racing a canceller either
//!    observes the cancel or completes, and always observes it once
//!    `cancel` has returned.
//! 4. **Bounded-queue submit/drain/cancel** — the two token checks of
//!    `try_run_bounded_cancellable` (producer-side before enqueue,
//!    worker-side per claim), modeled over a loom mutex queue:
//!    enqueues always form a clean prefix, and skips always form a
//!    clean suffix, in every interleaving.
#![cfg(feature = "loom")]

use teleios_exec::CancelToken;
use teleios_loom::sync::{Arc, Mutex};
use teleios_loom::thread;

#[test]
fn first_wins_cancel_race() {
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let (a, b) = (token.clone(), token.clone());
        let ta = thread::spawn(move || a.cancel("A"));
        let tb = thread::spawn(move || b.cancel("B"));
        let won_a = ta.join().unwrap();
        let won_b = tb.join().unwrap();
        assert!(won_a ^ won_b, "exactly one cancel must win");
        assert!(token.is_cancelled());
        let expected = if won_a { "A" } else { "B" };
        assert_eq!(
            token.reason().as_deref(),
            Some(expected),
            "the recorded reason must be the winning call's"
        );
    });
}

#[test]
fn reason_never_visible_before_flag() {
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let canceller = token.clone();
        let reader = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("stop");
        });
        let tr = thread::spawn(move || {
            // Read the reason FIRST, the flag second. Because cancel()
            // publishes flag-then-reason, a visible reason implies the
            // flag read afterwards must be true — in every schedule.
            let reason = reader.reason();
            let flag_after = reader.is_cancelled();
            if let Some(r) = &reason {
                assert_eq!(r, "stop", "no torn or foreign reason");
                assert!(flag_after, "reason visible but flag not: publication order broken");
            }
        });
        tr.join().unwrap();
        tc.join().unwrap();
        // Once cancel() has returned, both sides are published.
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("stop"));
    });
}

#[test]
fn poll_wakeup_vs_cancel() {
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("deadline");
        });
        // The time-free core of sleep_cancellable: up to 2 polls with
        // a scheduler yield between them. In some schedules the poll
        // sees the cancel (true), in others it completes first
        // (false) — both are legal; what must NEVER happen is a poll
        // returning true on an uncancelled token.
        let woke = token.poll_cancellable(2);
        if woke {
            assert!(token.is_cancelled());
        }
        tc.join().unwrap();
        // After cancel() has returned, a poll must always observe it:
        // the sleep loop cannot oversleep a published cancellation.
        assert!(token.poll_cancellable(1), "published cancel missed by poll");
        assert_eq!(token.reason().as_deref(), Some("deadline"));
    });
}

#[test]
fn bounded_queue_producer_halts_on_cancel() {
    // Producer half of try_run_bounded_cancellable: the token is
    // checked before every enqueue, so whatever interleaving the
    // canceller gets, the queue is always a clean prefix [0, 1, ..].
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let queue: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let producer_token = token.clone();
        let producer_queue = Arc::clone(&queue);
        let tp = thread::spawn(move || {
            for i in 0..3usize {
                if producer_token.is_cancelled() {
                    return i; // halted before enqueueing i
                }
                producer_queue.lock().unwrap().push(i);
            }
            3
        });
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("halt submissions");
        });
        let halted_at = tp.join().unwrap();
        tc.join().unwrap();
        let q = queue.lock().unwrap();
        let expected: Vec<usize> = (0..q.len()).collect();
        assert_eq!(*q, expected, "enqueues must form a clean prefix");
        assert_eq!(
            q.len(),
            halted_at,
            "everything the producer enqueued before halting is in the queue"
        );
        if halted_at < 3 {
            assert!(token.is_cancelled(), "producer halted without a cancel");
        }
    });
}

#[test]
fn bounded_queue_worker_skips_form_a_suffix() {
    // Worker half of try_run_bounded_cancellable: the token is checked
    // per claimed task; executed tasks become Some, skipped tasks
    // None. Because the flag is monotone (first-wins swap, never
    // reset), the Nones must form a suffix in every interleaving — a
    // Some after a None would mean the cancel "unhappened".
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let worker_token = token.clone();
        let tw = thread::spawn(move || {
            (0..3usize)
                .map(|i| {
                    if worker_token.is_cancelled() {
                        None
                    } else {
                        Some(i)
                    }
                })
                .collect::<Vec<Option<usize>>>()
        });
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("drain");
        });
        let results = tw.join().unwrap();
        tc.join().unwrap();
        let first_skip = results.iter().position(|r| r.is_none());
        if let Some(k) = first_skip {
            assert!(
                results[k..].iter().all(|r| r.is_none()),
                "skips must be a suffix, got {results:?}"
            );
            assert!(token.is_cancelled());
        }
        for (i, r) in results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i, "executed slots keep task order");
            }
        }
    });
}
