//! Exhaustive model-checking of the exec/cancel race surface.
//!
//! Compiled only with the `loom` feature, which swaps the
//! [`CancelToken`]'s atomics and mutex for `teleios-loom` modeled
//! primitives — so these models exercise the *shipped* token code,
//! not a re-implementation. `teleios_loom::model` then runs each
//! closure once per schedule until the whole interleaving tree of the
//! modeled operations is explored.
//!
//! Covered races (the surface the E14 deadline watchdog depends on):
//!
//! 1. **First-wins cancel** — two racing `cancel` calls: exactly one
//!    wins in every schedule and the recorded reason is the winner's.
//! 2. **Cancel vs. read vs. reason-write** — a reader can observe the
//!    documented flag-before-reason window, but never a reason
//!    without the flag, and never a torn/foreign reason.
//! 3. **`sleep_cancellable` wakeup** — via its time-free core
//!    `poll_cancellable`: a poll loop racing a canceller either
//!    observes the cancel or completes, and always observes it once
//!    `cancel` has returned.
//! 4. **Bounded-queue submit/drain/cancel** — the two token checks of
//!    `try_run_bounded_cancellable` (producer-side before enqueue,
//!    worker-side per claim), modeled over a loom mutex queue:
//!    enqueues always form a clean prefix, and skips always form a
//!    clean suffix, in every interleaving.
//! 5. **Watchdog registry register/timeout/complete** — the deadline
//!    watchdog's in-flight registry protocol (worker registers, works,
//!    deregisters; watchdog snapshots and cancels the snapshot),
//!    modeled over a loom mutex list: a worker that deregistered
//!    before the snapshot is never cancelled, a cancelled worker was
//!    in the snapshot, and the registry always drains.
//! 6. **Lock witness under contention** — two threads acquiring two
//!    [`OrderedMutex`]es (modeled) in the same order while the
//!    witness's plain-`std` bookkeeping records both: every schedule
//!    yields the same single edge, no cycle, and no leaked hold — the
//!    witness itself is race-free.
//! 7. **Deque last-element owner/thief race** — `StealDeque::pop`
//!    decrements bottom while a thief CASes top on the same single
//!    element: in every schedule exactly one side claims it and the
//!    deque ends empty (the classic Chase-Lev double-claim hazard).
//! 8. **Two thieves, one element** — two racing `steal` loops: the
//!    top CAS arbitrates, exactly one thief gets `Task`, the loser's
//!    `Retry` resolves to `Empty` on re-probe.
//! 9. **Cancellable steal spin** — the worker probe loop of
//!    `dispatch_stealing`: `Retry` yields through
//!    [`CancelToken::poll_cancellable`], so a fired deadline always
//!    breaks the spin, and a cancel-exit never strands the element
//!    (a lost CAS implies the rival claimed it).
#![cfg(feature = "loom")]

use teleios_exec::{CancelToken, LockWitness, OrderedMutex, Steal, StealDeque};
use teleios_loom::sync::{Arc, Mutex};
use teleios_loom::thread;

#[test]
fn first_wins_cancel_race() {
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let (a, b) = (token.clone(), token.clone());
        let ta = thread::spawn(move || a.cancel("A"));
        let tb = thread::spawn(move || b.cancel("B"));
        let won_a = ta.join().unwrap();
        let won_b = tb.join().unwrap();
        assert!(won_a ^ won_b, "exactly one cancel must win");
        assert!(token.is_cancelled());
        let expected = if won_a { "A" } else { "B" };
        assert_eq!(
            token.reason().as_deref(),
            Some(expected),
            "the recorded reason must be the winning call's"
        );
    });
}

#[test]
fn reason_never_visible_before_flag() {
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let canceller = token.clone();
        let reader = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("stop");
        });
        let tr = thread::spawn(move || {
            // Read the reason FIRST, the flag second. Because cancel()
            // publishes flag-then-reason, a visible reason implies the
            // flag read afterwards must be true — in every schedule.
            let reason = reader.reason();
            let flag_after = reader.is_cancelled();
            if let Some(r) = &reason {
                assert_eq!(r, "stop", "no torn or foreign reason");
                assert!(flag_after, "reason visible but flag not: publication order broken");
            }
        });
        tr.join().unwrap();
        tc.join().unwrap();
        // Once cancel() has returned, both sides are published.
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("stop"));
    });
}

#[test]
fn poll_wakeup_vs_cancel() {
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("deadline");
        });
        // The time-free core of sleep_cancellable: up to 2 polls with
        // a scheduler yield between them. In some schedules the poll
        // sees the cancel (true), in others it completes first
        // (false) — both are legal; what must NEVER happen is a poll
        // returning true on an uncancelled token.
        let woke = token.poll_cancellable(2);
        if woke {
            assert!(token.is_cancelled());
        }
        tc.join().unwrap();
        // After cancel() has returned, a poll must always observe it:
        // the sleep loop cannot oversleep a published cancellation.
        assert!(token.poll_cancellable(1), "published cancel missed by poll");
        assert_eq!(token.reason().as_deref(), Some("deadline"));
    });
}

#[test]
fn bounded_queue_producer_halts_on_cancel() {
    // Producer half of try_run_bounded_cancellable: the token is
    // checked before every enqueue, so whatever interleaving the
    // canceller gets, the queue is always a clean prefix [0, 1, ..].
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let queue: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let producer_token = token.clone();
        let producer_queue = Arc::clone(&queue);
        let tp = thread::spawn(move || {
            for i in 0..3usize {
                if producer_token.is_cancelled() {
                    return i; // halted before enqueueing i
                }
                producer_queue.lock().unwrap().push(i);
            }
            3
        });
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("halt submissions");
        });
        let halted_at = tp.join().unwrap();
        tc.join().unwrap();
        let q = queue.lock().unwrap();
        let expected: Vec<usize> = (0..q.len()).collect();
        assert_eq!(*q, expected, "enqueues must form a clean prefix");
        assert_eq!(
            q.len(),
            halted_at,
            "everything the producer enqueued before halting is in the queue"
        );
        if halted_at < 3 {
            assert!(token.is_cancelled(), "producer halted without a cancel");
        }
    });
}

#[test]
fn registry_register_timeout_complete_interleavings() {
    // The watchdog-registry protocol from the resilience supervisor,
    // over the same primitives: the worker registers its (id, token)
    // pair, runs, then deregisters; the watchdog takes one snapshot
    // and cancels everything in it (a deadline firing). Whatever the
    // interleaving:
    //   * a cancel only ever lands on an attempt the snapshot held;
    //   * a worker that completed (deregistered) before the snapshot
    //     is never cancelled afterwards;
    //   * the registry drains to empty once the worker is done.
    teleios_loom::model(|| {
        let registry: Arc<Mutex<Vec<(usize, CancelToken)>>> = Arc::new(Mutex::new(Vec::new()));
        let token = CancelToken::new();

        let worker_registry = Arc::clone(&registry);
        let worker_token = token.clone();
        let worker = thread::spawn(move || {
            worker_registry.lock().unwrap().push((7, worker_token.clone()));
            // The "work": one poll — a safe point where a fired
            // deadline is observed.
            let saw_cancel = worker_token.is_cancelled();
            worker_registry.lock().unwrap().retain(|(id, _)| *id != 7);
            saw_cancel
        });

        let watchdog_registry = Arc::clone(&registry);
        let watchdog = thread::spawn(move || {
            let snapshot: Vec<(usize, CancelToken)> =
                watchdog_registry.lock().unwrap().clone();
            for (id, t) in &snapshot {
                t.cancel(format!("attempt {id}: deadline overshot"));
            }
            snapshot.len()
        });

        let saw_cancel = worker.join().unwrap();
        let snapshot_len = watchdog.join().unwrap();

        if token.is_cancelled() {
            // A cancel implies the snapshot caught the attempt
            // registered — never a deregistered or foreign entry.
            assert_eq!(snapshot_len, 1, "cancel landed without a snapshot entry");
            let reason = token.reason().unwrap_or_default();
            assert!(reason.contains("attempt 7"), "foreign cancel reason: {reason}");
        } else {
            // No cancel: the snapshot must have missed the attempt
            // (taken before register or after deregister).
            assert_eq!(snapshot_len, 0, "snapshot held the attempt but never cancelled");
            assert!(!saw_cancel);
        }
        assert!(
            registry.lock().unwrap().is_empty(),
            "registry must drain once the worker deregisters"
        );
    });
}

#[test]
fn lock_witness_is_race_free_under_contention() {
    // Two threads take the same two witnessed (and loom-modeled) locks
    // in the same global order. Across every schedule the witness —
    // whose bookkeeping is plain std, deliberately un-modeled — must
    // agree: exactly the one edge, no cycle, nothing left held.
    teleios_loom::model(|| {
        let witness = LockWitness::new();
        let a = Arc::new(OrderedMutex::with_witness("first", 0u32, &witness));
        let b = Arc::new(OrderedMutex::with_witness("second", 0u32, &witness));

        let handles: Vec<_> = (0..2)
            .map(|_| {
                let a = Arc::clone(&a);
                let b = Arc::clone(&b);
                thread::spawn(move || {
                    let mut ga = a.lock();
                    let mut gb = b.lock();
                    *ga += 1;
                    *gb += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        assert_eq!(
            witness.edges(),
            vec![("first".to_string(), "second".to_string())]
        );
        assert!(witness.cycles().is_empty());
        assert!(witness.nothing_held(), "a guard leaked its witness record");
        witness.assert_acyclic();
        assert_eq!(*a.lock(), 2);
        assert_eq!(*b.lock(), 2);
    });
}

#[test]
fn lock_witness_sees_an_inversion_the_schedule_survived() {
    // An ABBA inversion that happens NOT to deadlock (the two orders
    // run sequentially on one thread) must still be witnessed: the
    // graph is built from acquisition order, not from luck.
    teleios_loom::model(|| {
        let witness = LockWitness::new();
        let a = OrderedMutex::with_witness("alpha", (), &witness);
        let b = OrderedMutex::with_witness("beta", (), &witness);
        {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        }
        {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        }
        let cycles = witness.cycles();
        assert_eq!(cycles.len(), 1, "inversion not witnessed: {cycles:?}");
        assert!(witness.nothing_held());
    });
}

#[test]
fn deque_last_element_owner_vs_thief() {
    // The Chase-Lev double-claim hazard: the owner pops the last
    // element (decrementing bottom) while a thief CASes top for the
    // same slot. In every schedule exactly one side must win.
    teleios_loom::model(|| {
        let deque = Arc::new(StealDeque::new(1));
        deque.push(42);
        let thief_deque = Arc::clone(&deque);
        let thief = thread::spawn(move || loop {
            match thief_deque.steal() {
                Steal::Task(v) => return Some(v),
                Steal::Empty => return None,
                // A lost CAS means top moved: someone claimed the
                // element — the re-probe resolves to Empty.
                Steal::Retry => {}
            }
        });
        let popped = deque.pop();
        let stolen = thief.join().unwrap();
        match (popped, stolen) {
            (Some(v), None) | (None, Some(v)) => assert_eq!(v, 42),
            (Some(_), Some(_)) => panic!("last element claimed twice"),
            (None, None) => panic!("last element vanished unclaimed"),
        }
        assert!(deque.is_empty(), "deque must end empty");
        assert_eq!(deque.pop(), None);
    });
}

#[test]
fn deque_two_thieves_race_one_element() {
    // Two racing steal loops over a single element: the top CAS is
    // the sole arbiter, so exactly one thief gets Task and the other
    // ends on Empty after its Retry.
    teleios_loom::model(|| {
        let deque = Arc::new(StealDeque::new(1));
        deque.push(9);
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let deque = Arc::clone(&deque);
                thread::spawn(move || loop {
                    match deque.steal() {
                        Steal::Task(v) => return Some(v),
                        Steal::Empty => return None,
                        Steal::Retry => {}
                    }
                })
            })
            .collect();
        let claims: Vec<usize> = thieves
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(claims, vec![9], "exactly one thief claims the element");
        assert!(deque.is_empty());
    });
}

#[test]
fn steal_loop_cancellation_is_observed() {
    // The worker probe loop of dispatch_stealing, raced against a
    // rival thief and a canceller: Retry yields through
    // poll_cancellable, so a fired deadline breaks the spin — and
    // because Retry implies a lost CAS (the rival advanced top), a
    // cancel-exit can never strand the element unclaimed.
    teleios_loom::model(|| {
        let deque = Arc::new(StealDeque::new(1));
        deque.push(5);
        let token = CancelToken::new();
        let rival_deque = Arc::clone(&deque);
        let rival = thread::spawn(move || loop {
            match rival_deque.steal() {
                Steal::Task(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => {}
            }
        });
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("deadline");
        });
        let mut cancelled_out = false;
        let mine = loop {
            match deque.steal() {
                Steal::Task(v) => break Some(v),
                Steal::Empty => break None,
                Steal::Retry => {
                    if token.poll_cancellable(1) {
                        cancelled_out = true;
                        break None;
                    }
                }
            }
        };
        let rivals = rival.join().unwrap();
        tc.join().unwrap();
        let claims = [mine, rivals].iter().flatten().count();
        assert_eq!(claims, 1, "the element is claimed exactly once in every schedule");
        if cancelled_out {
            assert!(token.is_cancelled(), "cancel-exit without a published cancel");
            assert_eq!(rivals, Some(5), "a lost CAS means the rival holds the element");
        }
        assert!(deque.is_empty());
    });
}

#[test]
fn bounded_queue_worker_skips_form_a_suffix() {
    // Worker half of try_run_bounded_cancellable: the token is checked
    // per claimed task; executed tasks become Some, skipped tasks
    // None. Because the flag is monotone (first-wins swap, never
    // reset), the Nones must form a suffix in every interleaving — a
    // Some after a None would mean the cancel "unhappened".
    teleios_loom::model(|| {
        let token = CancelToken::new();
        let worker_token = token.clone();
        let tw = thread::spawn(move || {
            (0..3usize)
                .map(|i| {
                    if worker_token.is_cancelled() {
                        None
                    } else {
                        Some(i)
                    }
                })
                .collect::<Vec<Option<usize>>>()
        });
        let canceller = token.clone();
        let tc = thread::spawn(move || {
            canceller.cancel("drain");
        });
        let results = tw.join().unwrap();
        tc.join().unwrap();
        let first_skip = results.iter().position(|r| r.is_none());
        if let Some(k) = first_skip {
            assert!(
                results[k..].iter().all(|r| r.is_none()),
                "skips must be a suffix, got {results:?}"
            );
            assert!(token.is_cancelled());
        }
        for (i, r) in results.iter().enumerate() {
            if let Some(v) = r {
                assert_eq!(*v, i, "executed slots keep task order");
            }
        }
    });
}
