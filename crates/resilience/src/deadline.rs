//! Deadline budgets, the in-flight attempt registry, the batch
//! watchdog, and the per-variant timeout circuit breaker.
//!
//! Cancellation is strictly cooperative. The watchdog never kills a
//! thread: it flips the attempt's [`CancelToken`], and the chain
//! notices at its next stage boundary (injected hang faults poll the
//! same token, so even a wedged stage drains promptly). The overshot
//! stage is recorded on the attempt so the supervisor can name it in
//! the [`crate::SceneReport`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use teleios_exec::{CancelToken, OrderedMutex};
use teleios_noa::chain::ChainStage;

/// Per-attempt deadline budgets for supervised chain execution.
///
/// Both deadlines apply to a single attempt (one pass through the
/// chain): `soft_stage` bounds any one [`ChainStage`], `hard_scene`
/// bounds the whole pass. A fresh budget window opens on every retry
/// and every degraded-ladder rung, so a scene's total supervision time
/// is bounded by `hard_scene × total attempts` plus scheduling slack.
/// `Duration::MAX` disables a bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageBudget {
    /// Soft deadline for a single chain stage within an attempt.
    pub soft_stage: Duration,
    /// Hard deadline for a whole attempt (all five stages).
    pub hard_scene: Duration,
}

impl Default for StageBudget {
    fn default() -> StageBudget {
        StageBudget::unlimited()
    }
}

impl StageBudget {
    /// No deadlines: the watchdog has nothing to enforce.
    pub fn unlimited() -> StageBudget {
        StageBudget {
            soft_stage: Duration::MAX,
            hard_scene: Duration::MAX,
        }
    }

    /// Explicit per-stage and per-attempt deadlines.
    pub fn new(soft_stage: Duration, hard_scene: Duration) -> StageBudget {
        StageBudget {
            soft_stage,
            hard_scene,
        }
    }

    /// Only a whole-attempt deadline (stages individually unbounded).
    pub fn hard(hard_scene: Duration) -> StageBudget {
        StageBudget {
            soft_stage: Duration::MAX,
            hard_scene,
        }
    }

    /// True when neither bound is set.
    pub fn is_unlimited(&self) -> bool {
        self.soft_stage == Duration::MAX && self.hard_scene == Duration::MAX
    }
}

/// One in-flight chain attempt, visible to the watchdog.
#[derive(Debug)]
pub(crate) struct InFlightAttempt {
    /// Scene / product id (for cancellation reasons).
    pub id: String,
    /// Chain-variant label this attempt is running.
    pub chain_id: String,
    /// The token the watchdog fires to cancel this attempt.
    pub token: CancelToken,
    /// When the attempt started.
    pub started: Instant,
    /// The stage currently executing and when it was entered.
    stage: OrderedMutex<Option<(ChainStage, Instant)>>,
}

impl InFlightAttempt {
    pub fn new(id: &str, chain_id: &str, token: CancelToken) -> InFlightAttempt {
        InFlightAttempt {
            id: id.to_string(),
            chain_id: chain_id.to_string(),
            token,
            started: Instant::now(),
            stage: OrderedMutex::new("deadline.attempt.stage", None),
        }
    }

    /// Record that `stage` just started (called from the instrumented
    /// stage hook).
    pub fn enter_stage(&self, stage: ChainStage) {
        let mut slot = self.stage.lock();
        *slot = Some((stage, Instant::now()));
    }

    /// The stage currently executing, if any.
    pub fn current_stage(&self) -> Option<(ChainStage, Instant)> {
        *self.stage.lock()
    }

    /// Label of the stage running now — the stage a cancellation lands
    /// on — or `"unstarted"` before the first stage boundary.
    pub fn stage_label(&self) -> String {
        match self.current_stage() {
            Some((stage, _)) => stage.to_string(),
            None => "unstarted".to_string(),
        }
    }
}

/// Registry of in-flight attempts shared between scene workers and the
/// watchdog. Clones share the same registry. Its lock is witnessed
/// ([`OrderedMutex`]), so a debug-build run that ever held the
/// registry while taking an attempt's stage lock (or vice versa, in
/// conflicting orders) would surface in the lock-order graph.
#[derive(Debug, Clone)]
pub(crate) struct AttemptRegistry {
    inner: Arc<OrderedMutex<Vec<Arc<InFlightAttempt>>>>,
}

impl Default for AttemptRegistry {
    fn default() -> AttemptRegistry {
        AttemptRegistry {
            inner: Arc::new(OrderedMutex::new("deadline.registry", Vec::new())),
        }
    }
}

impl AttemptRegistry {
    pub fn register(&self, attempt: Arc<InFlightAttempt>) {
        let mut list = self.inner.lock();
        list.push(attempt);
    }

    pub fn deregister(&self, attempt: &Arc<InFlightAttempt>) {
        let mut list = self.inner.lock();
        list.retain(|a| !Arc::ptr_eq(a, attempt));
    }

    fn snapshot(&self) -> Vec<Arc<InFlightAttempt>> {
        self.inner.lock().clone()
    }
}

/// Whole-batch deadline state the watchdog also polices: once
/// `deadline` has elapsed since `started`, the batch token fires (the
/// worker pool stops dispatching scenes) and every in-flight attempt
/// is cancelled so the batch drains.
#[derive(Debug, Clone)]
pub(crate) struct BatchDeadline {
    pub started: Instant,
    pub deadline: Duration,
    pub token: CancelToken,
}

/// The watchdog thread: polls the registry, cancels overdue attempts.
/// Stopping is explicit ([`Watchdog::stop`]) and joins the thread, so
/// no watchdog outlives its batch.
#[derive(Debug)]
pub(crate) struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

/// How often the watchdog samples the registry. Deadline enforcement
/// is therefore accurate to about this granularity — fine for budgets
/// in the tens of milliseconds and up.
pub(crate) const WATCHDOG_POLL: Duration = Duration::from_millis(2);

impl Watchdog {
    pub fn spawn(
        registry: AttemptRegistry,
        budget: StageBudget,
        batch: Option<BatchDeadline>,
    ) -> Watchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = teleios_exec::spawn_named("teleios-deadline-watchdog", move || {
            while !stop_flag.load(Ordering::SeqCst) {
                if let Some(b) = &batch {
                    if !b.token.is_cancelled() && b.started.elapsed() > b.deadline {
                        b.token
                            .cancel(format!("batch deadline {:?} overshot", b.deadline));
                    }
                    if b.token.is_cancelled() {
                        // Drain in-flight attempts too, so the
                        // batch ends promptly rather than waiting
                        // out each scene's own budget.
                        for attempt in registry.snapshot() {
                            attempt.token.cancel(format!(
                                "{}: batch deadline {:?} overshot",
                                attempt.id, b.deadline
                            ));
                        }
                    }
                }
                for attempt in registry.snapshot() {
                    if attempt.token.is_cancelled() {
                        continue;
                    }
                    if attempt.started.elapsed() > budget.hard_scene {
                        attempt.token.cancel(format!(
                            "{}: attempt overshot hard deadline {:?} at stage {} (chain {})",
                            attempt.id,
                            budget.hard_scene,
                            attempt.stage_label(),
                            attempt.chain_id
                        ));
                        continue;
                    }
                    if let Some((stage, entered)) = attempt.current_stage() {
                        if entered.elapsed() > budget.soft_stage {
                            attempt.token.cancel(format!(
                                "{}: stage {stage} overshot soft deadline {:?} (chain {})",
                                attempt.id, budget.soft_stage, attempt.chain_id
                            ));
                        }
                    }
                }
                thread::sleep(WATCHDOG_POLL);
            }
        })
        .ok();
        // A failed spawn (resource exhaustion) degrades to no deadline
        // enforcement rather than failing the batch.
        Watchdog { stop, handle }
    }

    /// Signal the thread to exit and join it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Per-chain-variant circuit breaker: after `threshold` attempt-level
/// timeouts on a variant, the circuit opens and the supervisor skips
/// that variant — jumping straight to the next degraded rung — for
/// the remainder of the batch. A threshold of zero disables the
/// breaker. Clones share state (one breaker per batch).
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    timeouts: Arc<OrderedMutex<HashMap<String, u32>>>,
    threshold: u32,
}

impl Default for CircuitBreaker {
    fn default() -> CircuitBreaker {
        CircuitBreaker::new(0)
    }
}

impl CircuitBreaker {
    /// A breaker that opens a variant's circuit after `threshold`
    /// timeouts (zero disables it).
    pub fn new(threshold: u32) -> CircuitBreaker {
        CircuitBreaker {
            timeouts: Arc::new(OrderedMutex::new("deadline.breaker", HashMap::new())),
            threshold,
        }
    }

    /// Record an attempt-level timeout on `chain_id`; returns the
    /// variant's running timeout count.
    pub fn record_timeout(&self, chain_id: &str) -> u32 {
        let mut map = self.timeouts.lock();
        let n = map.entry(chain_id.to_string()).or_insert(0);
        *n += 1;
        *n
    }

    /// True once `chain_id` has accumulated `threshold` timeouts.
    pub fn is_open(&self, chain_id: &str) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let map = self.timeouts.lock();
        map.get(chain_id).copied().unwrap_or(0) >= self.threshold
    }

    /// Variants whose circuits are open, in sorted order.
    pub fn open_variants(&self) -> Vec<String> {
        if self.threshold == 0 {
            return Vec::new();
        }
        let map = self.timeouts.lock();
        let mut open: Vec<String> = map
            .iter()
            .filter(|(_, &n)| n >= self.threshold)
            .map(|(id, _)| id.clone())
            .collect();
        open.sort();
        open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_the_default() {
        assert!(StageBudget::default().is_unlimited());
        assert!(StageBudget::unlimited().is_unlimited());
        assert!(!StageBudget::hard(Duration::from_millis(100)).is_unlimited());
        assert!(!StageBudget::new(Duration::from_millis(10), Duration::MAX).is_unlimited());
    }

    #[test]
    fn watchdog_cancels_an_overdue_attempt() {
        let registry = AttemptRegistry::default();
        let token = CancelToken::new();
        let attempt = Arc::new(InFlightAttempt::new("s0", "threshold-318", token.clone()));
        attempt.enter_stage(ChainStage::Classify);
        registry.register(Arc::clone(&attempt));
        let watchdog = Watchdog::spawn(
            registry.clone(),
            StageBudget::hard(Duration::from_millis(20)),
            None,
        );
        assert!(
            token.sleep_cancellable(Duration::from_secs(10)),
            "watchdog never fired"
        );
        let reason = token.reason().unwrap_or_default();
        assert!(reason.contains("hard deadline"), "{reason}");
        assert!(reason.contains("classify"), "{reason}");
        assert!(reason.contains("s0"), "{reason}");
        registry.deregister(&attempt);
        watchdog.stop();
    }

    #[test]
    fn watchdog_enforces_the_soft_stage_deadline() {
        let registry = AttemptRegistry::default();
        let token = CancelToken::new();
        let attempt = Arc::new(InFlightAttempt::new("s1", "c", token.clone()));
        attempt.enter_stage(ChainStage::Georef);
        registry.register(Arc::clone(&attempt));
        let watchdog = Watchdog::spawn(
            registry.clone(),
            StageBudget::new(Duration::from_millis(20), Duration::MAX),
            None,
        );
        assert!(token.sleep_cancellable(Duration::from_secs(10)));
        let reason = token.reason().unwrap_or_default();
        assert!(reason.contains("soft deadline"), "{reason}");
        assert!(reason.contains("georef"), "{reason}");
        watchdog.stop();
    }

    #[test]
    fn watchdog_leaves_healthy_attempts_alone() {
        let registry = AttemptRegistry::default();
        let token = CancelToken::new();
        let attempt = Arc::new(InFlightAttempt::new("s2", "c", token.clone()));
        registry.register(Arc::clone(&attempt));
        let watchdog = Watchdog::spawn(
            registry.clone(),
            StageBudget::hard(Duration::from_secs(3600)),
            None,
        );
        thread::sleep(Duration::from_millis(25));
        assert!(!token.is_cancelled());
        registry.deregister(&attempt);
        watchdog.stop();
    }

    #[test]
    fn batch_deadline_cancels_everything_in_flight() {
        let registry = AttemptRegistry::default();
        let scene_token = CancelToken::new();
        let attempt = Arc::new(InFlightAttempt::new("s3", "c", scene_token.clone()));
        registry.register(Arc::clone(&attempt));
        let batch_token = CancelToken::new();
        let watchdog = Watchdog::spawn(
            registry.clone(),
            StageBudget::unlimited(),
            Some(BatchDeadline {
                started: Instant::now(),
                deadline: Duration::from_millis(20),
                token: batch_token.clone(),
            }),
        );
        assert!(batch_token.sleep_cancellable(Duration::from_secs(10)));
        assert!(scene_token.sleep_cancellable(Duration::from_secs(10)));
        let reason = scene_token.reason().unwrap_or_default();
        assert!(reason.contains("batch deadline"), "{reason}");
        watchdog.stop();
    }

    #[test]
    fn breaker_opens_at_threshold_and_zero_disables() {
        let breaker = CircuitBreaker::new(2);
        assert!(!breaker.is_open("v"));
        assert_eq!(breaker.record_timeout("v"), 1);
        assert!(!breaker.is_open("v"));
        assert_eq!(breaker.record_timeout("v"), 2);
        assert!(breaker.is_open("v"));
        assert!(!breaker.is_open("other"));
        assert_eq!(breaker.open_variants(), vec!["v".to_string()]);
        // Clones share state.
        assert!(breaker.clone().is_open("v"));

        let disabled = CircuitBreaker::new(0);
        disabled.record_timeout("v");
        disabled.record_timeout("v");
        assert!(!disabled.is_open("v"));
        assert!(disabled.open_variants().is_empty());
    }
}
