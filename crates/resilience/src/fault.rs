//! Deterministic fault injection.
//!
//! A [`FaultPlan`] maps scene ids to [`Fault`] kinds. Data faults
//! ([`Fault::CorruptPayload`], [`Fault::TruncateHeader`]) are applied
//! directly to the repository bytes with
//! [`FaultPlan::apply_to_repository`] — the vault's payload checksums
//! and header validation detect them at decode time. Behavioral faults
//! are threaded through the chain's [`StageHook`] via
//! [`FaultPlan::chain_hook`]:
//!
//! * [`Fault::ClassifierError`] fails the classify stage — but only
//!   when the chain's classifier is *not* the plain threshold, so the
//!   supervisor's threshold fallback succeeds (a `Degraded` outcome);
//! * [`Fault::GeorefError`] fails the georeference stage while a
//!   target grid is configured, exercising the native-grid fallback;
//! * [`Fault::WorkerPanic`] panics inside the worker on every attempt
//!   (an unrecoverable `Failed` scene that must not take the batch
//!   down with it);
//! * [`Fault::Transient`] fails the first `failures` attempts, then
//!   succeeds — the retry/backoff case;
//! * [`Fault::Hang`] wedges a stage for a fixed duration, polling the
//!   chain's cancellation token so the deadline watchdog can cut it
//!   short — the timeout-budget case, deterministic without
//!   wall-clock flakiness.
//!
//! Durability faults ([`Fault::TornWrite`], [`Fault::ShortFsync`],
//! [`Fault::CrashPoint`]) target the storage engine's write layer
//! instead of the chain: map them through [`Fault::write_fault`] and
//! arm the resulting [`teleios_store::WriteFault`] on a
//! [`teleios_store::MemMedium`] to crash the WAL at the planned point
//! (E16's ingest → crash → recover loops).
//!
//! Plans built with [`FaultPlan::seeded`] are reproducible: the same
//! seed, id list, and rate always select the same scenes and kinds
//! ([`FaultPlan::seeded_with`] swaps the kind palette while keeping
//! the same scene selection — including the [`DURABILITY_KINDS`]
//! palette).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;
use teleios_exec::OrderedMutex;
use teleios_monet::DbError;
use teleios_noa::chain::{ChainStage, ProcessingChain, StageHook};
use teleios_noa::HotspotClassifier;
use teleios_vault::repository::Repository;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Flip a bit in the scene file's payload region. Detected by the
    /// vault's payload checksum; the file is quarantined.
    CorruptPayload,
    /// Truncate the scene file mid-header (a torn archive write).
    /// Header parsing fails; the file is quarantined.
    TruncateHeader,
    /// The classification stage errors — unless the chain has already
    /// fallen back to the plain threshold classifier.
    ClassifierError,
    /// The georeferencing stage errors while a target grid is
    /// configured; the native-grid fallback clears it.
    GeorefError,
    /// The worker thread panics at the classify stage, every attempt.
    WorkerPanic,
    /// The ingestion stage fails the first `failures` attempts for the
    /// scene, then succeeds.
    Transient {
        /// Number of leading attempts that fail.
        failures: u32,
    },
    /// The named stage wedges for `duration` before proceeding — on
    /// every attempt. The sleep polls the chain's [`CancelToken`]
    /// (when one is installed), so a deadline watchdog cuts the hang
    /// short deterministically: `duration` can be minutes without the
    /// test ever waiting minutes. With no token the hang sleeps in
    /// full, modelling an unsupervised wedge.
    ///
    /// [`CancelToken`]: teleios_exec::CancelToken
    Hang {
        /// The stage that hangs.
        stage: ChainStage,
        /// How long it hangs (uncancelled).
        duration: Duration,
    },
    /// A torn storage write: the next WAL fsync persists only the
    /// first `keep` bytes of the pending tail before the device
    /// crashes. Injected at the write layer of `teleios-store` (see
    /// [`Fault::write_fault`]), not through the chain hook.
    TornWrite {
        /// Bytes of the pending tail that reach stable storage.
        keep: usize,
    },
    /// The next WAL fsync reports failure without persisting anything
    /// new and without crashing the device — the storage engine must
    /// poison itself rather than acknowledge the commit. Write-layer
    /// fault.
    ShortFsync,
    /// The storage device crashes just before the next WAL append:
    /// nothing of the in-flight transaction reaches the log.
    /// Write-layer fault.
    CrashPoint,
}

impl Fault {
    /// Whether this fault corrupts repository bytes (as opposed to
    /// injecting behavior through the chain hook).
    pub fn is_data_fault(&self) -> bool {
        matches!(self, Fault::CorruptPayload | Fault::TruncateHeader)
    }

    /// Whether this fault targets the storage write layer (injected
    /// through [`Fault::write_fault`] rather than repository bytes or
    /// the chain hook).
    pub fn is_durability_fault(&self) -> bool {
        matches!(self, Fault::TornWrite { .. } | Fault::ShortFsync | Fault::CrashPoint)
    }

    /// The `teleios-store` write-layer fault this kind maps to, if it
    /// is a durability fault — arm it on a
    /// [`MemMedium`](teleios_store::MemMedium) to crash the storage
    /// engine at the planned point.
    pub fn write_fault(&self) -> Option<teleios_store::WriteFault> {
        match self {
            Fault::TornWrite { keep } => Some(teleios_store::WriteFault::Torn { keep: *keep }),
            Fault::ShortFsync => Some(teleios_store::WriteFault::ShortFsync),
            Fault::CrashPoint => Some(teleios_store::WriteFault::Crash),
            _ => None,
        }
    }

    /// Short label for reports and experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::CorruptPayload => "corrupt-payload",
            Fault::TruncateHeader => "truncate-header",
            Fault::ClassifierError => "classifier-error",
            Fault::GeorefError => "georef-error",
            Fault::WorkerPanic => "worker-panic",
            Fault::Transient { .. } => "transient",
            Fault::Hang { .. } => "hang",
            Fault::TornWrite { .. } => "torn-write",
            Fault::ShortFsync => "short-fsync",
            Fault::CrashPoint => "crash-point",
        }
    }
}

/// The kinds cycled through by [`FaultPlan::seeded`], in order.
pub const SEEDED_KINDS: [Fault; 6] = [
    Fault::Transient { failures: 1 },
    Fault::ClassifierError,
    Fault::GeorefError,
    Fault::WorkerPanic,
    Fault::CorruptPayload,
    Fault::TruncateHeader,
];

/// The storage write-layer palette for [`FaultPlan::seeded_with`]:
/// E16 crashes the durable store with these kinds under the same
/// seeded scene selection contract as every other palette.
pub const DURABILITY_KINDS: [Fault; 3] = [
    Fault::TornWrite { keep: 12 },
    Fault::ShortFsync,
    Fault::CrashPoint,
];

/// A deterministic scene-id → fault assignment.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: BTreeMap<String, Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Build a plan by sampling each id with probability `rate` under a
    /// seeded RNG. Selected ids are assigned kinds round-robin from
    /// [`SEEDED_KINDS`], guaranteeing a mixed fault population at any
    /// non-trivial rate. Deterministic in (seed, ids, rate).
    pub fn seeded(seed: u64, ids: &[String], rate: f64) -> FaultPlan {
        FaultPlan::seeded_with(seed, ids, rate, &SEEDED_KINDS)
    }

    /// [`Self::seeded`] generalized over the kind palette: selected
    /// ids cycle round-robin through `kinds` instead of
    /// [`SEEDED_KINDS`]. The id *selection* depends only on (seed,
    /// ids, rate), so two palettes over the same seed fault the same
    /// scenes — experiment harnesses use this to compare fault kinds
    /// on identical populations (E14 sweeps hang faults this way). An
    /// empty palette yields an empty plan.
    pub fn seeded_with(seed: u64, ids: &[String], rate: f64, kinds: &[Fault]) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let rate = rate.clamp(0.0, 1.0);
        let mut plan = FaultPlan::new();
        let mut next = 0usize;
        for id in ids {
            if rng.random_bool(rate) && !kinds.is_empty() {
                plan.faults.insert(id.clone(), kinds[next % kinds.len()]);
                next += 1;
            }
        }
        plan
    }

    /// Assign a fault to one scene id.
    pub fn inject(&mut self, id: impl Into<String>, fault: Fault) -> &mut FaultPlan {
        self.faults.insert(id.into(), fault);
        self
    }

    /// The fault planned for a scene, if any.
    pub fn fault_for(&self, id: &str) -> Option<Fault> {
        self.faults.get(id).copied()
    }

    /// Iterate over (id, fault) pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Fault)> {
        self.faults.iter().map(|(id, f)| (id.as_str(), *f))
    }

    /// Number of faulted scenes.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Ids whose faults corrupt repository bytes.
    pub fn data_fault_ids(&self) -> Vec<String> {
        self.faults
            .iter()
            .filter(|(_, f)| f.is_data_fault())
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Apply the plan's data faults to a repository in place. An id
    /// that already names a file (contains an extension) is mutated
    /// directly; otherwise every vault product derived from the id is
    /// a target — the raw acquisition `{id}.sev1` plus the derived
    /// `{id}.gtf1` raster and `{id}.shp1` feature products, whichever
    /// exist. Returns the number of files actually mutated (ids with
    /// no matching file are skipped).
    pub fn apply_to_repository(&self, repository: &mut Repository) -> usize {
        let mut applied = 0;
        for (id, fault) in &self.faults {
            if !fault.is_data_fault() {
                continue;
            }
            let names: Vec<String> = if id.contains('.') && repository.get(id).is_some() {
                vec![id.clone()]
            } else {
                ["sev1", "gtf1", "shp1"]
                    .iter()
                    .map(|ext| format!("{id}.{ext}"))
                    .filter(|name| repository.get(name).is_some())
                    .collect()
            };
            for name in names {
                let Some(bytes) = repository.get(&name).cloned() else {
                    continue;
                };
                match fault {
                    Fault::CorruptPayload => {
                        let mut raw = bytes.to_vec();
                        if let Some(last) = raw.last_mut() {
                            *last ^= 0x01;
                        }
                        repository.put(name, bytes::Bytes::from(raw));
                        applied += 1;
                    }
                    Fault::TruncateHeader => {
                        // Keep the magic plus half the checksum: enough
                        // to identify the format, not enough to parse.
                        let cut = bytes.len().min(9);
                        repository.put(name, bytes.slice(0..cut));
                        applied += 1;
                    }
                    _ => {}
                }
            }
        }
        applied
    }

    /// A [`StageHook`] that injects the plan's behavioral faults. The
    /// hook carries its own attempt counters (shared across clones of
    /// the chain it is installed on), so [`Fault::Transient`] faults
    /// count attempts across supervisor retries.
    pub fn chain_hook(&self) -> StageHook {
        let faults = self.faults.clone();
        let attempts: Arc<OrderedMutex<HashMap<String, u32>>> =
            Arc::new(OrderedMutex::new("fault.attempts", HashMap::new()));
        Arc::new(move |id: &str, stage: ChainStage, chain: &ProcessingChain| {
            let Some(fault) = faults.get(id) else {
                return Ok(());
            };
            match fault {
                Fault::ClassifierError => {
                    if stage == ChainStage::Classify
                        && !matches!(chain.classifier, HotspotClassifier::Threshold { .. })
                    {
                        return Err(DbError::Execution(format!(
                            "injected classifier fault on {id}"
                        )));
                    }
                }
                Fault::GeorefError => {
                    if stage == ChainStage::Georef && chain.target_grid.is_some() {
                        return Err(DbError::Execution(format!("injected georef fault on {id}")));
                    }
                }
                Fault::WorkerPanic => {
                    if stage == ChainStage::Classify {
                        // teleios-lint: allow(no-panic) — this IS the injected fault
                        panic!("injected worker panic on {id}");
                    }
                }
                Fault::Transient { failures } => {
                    if stage == ChainStage::Ingest {
                        let mut seen = attempts.lock();
                        let n = seen.entry(id.to_string()).or_insert(0);
                        *n += 1;
                        if *n <= *failures {
                            return Err(DbError::Execution(format!(
                                "injected transient fault on {id} (attempt {n})"
                            )));
                        }
                    }
                }
                Fault::Hang { stage: hang_stage, duration } => {
                    if stage == *hang_stage {
                        let cancelled = match &chain.cancel {
                            // Cancel-aware sleep: a fired deadline cuts
                            // the hang short at ~1 ms granularity.
                            Some(token) => token.sleep_cancellable(*duration),
                            // Unsupervised chain: the wedge runs in full.
                            None => {
                                std::thread::sleep(*duration);
                                false
                            }
                        };
                        if cancelled {
                            return Err(DbError::Execution(format!(
                                "injected hang on {id} at {stage} cancelled by deadline"
                            )));
                        }
                    }
                }
                // data faults mutate repository bytes; durability
                // faults arm the storage medium — neither acts here
                Fault::CorruptPayload
                | Fault::TruncateHeader
                | Fault::TornWrite { .. }
                | Fault::ShortFsync
                | Fault::CrashPoint => {}
            }
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_vault::format::{encode_sev1, Sev1Header};
    use teleios_vault::vault::{DataVault, IngestionPolicy};
    use teleios_vault::VaultError;

    fn ids(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("scene-{i:03}")).collect()
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let ids = ids(100);
        let a = FaultPlan::seeded(42, &ids, 0.2);
        let b = FaultPlan::seeded(42, &ids, 0.2);
        assert!(!a.is_empty());
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
        // A different seed picks a different set.
        let c = FaultPlan::seeded(43, &ids, 0.2);
        assert_ne!(a.iter().collect::<Vec<_>>(), c.iter().collect::<Vec<_>>());
    }

    #[test]
    fn seeded_rate_bounds() {
        let ids = ids(50);
        assert!(FaultPlan::seeded(7, &ids, 0.0).is_empty());
        assert_eq!(FaultPlan::seeded(7, &ids, 1.0).len(), 50);
        // ~20% of 50 scenes, with generous slack for the RNG.
        let n = FaultPlan::seeded(7, &ids, 0.2).len();
        assert!((2..=25).contains(&n), "implausible fault count {n}");
    }

    #[test]
    fn seeded_kinds_are_mixed() {
        let plan = FaultPlan::seeded(11, &ids(60), 0.3);
        let labels: std::collections::BTreeSet<&str> =
            plan.iter().map(|(_, f)| f.label()).collect();
        assert!(labels.len() >= 3, "expected a kind mix, got {labels:?}");
    }

    #[test]
    fn inject_and_lookup() {
        let mut plan = FaultPlan::new();
        plan.inject("a", Fault::WorkerPanic).inject("b", Fault::Transient { failures: 2 });
        assert_eq!(plan.fault_for("a"), Some(Fault::WorkerPanic));
        assert_eq!(plan.fault_for("b"), Some(Fault::Transient { failures: 2 }));
        assert_eq!(plan.fault_for("c"), None);
        assert_eq!(plan.len(), 2);
    }

    fn scene_file(fill: f64) -> bytes::Bytes {
        let h = Sev1Header {
            rows: 4,
            cols: 4,
            bands: 1,
            acquisition: "2007-08-25T12:00:00Z".into(),
            bbox: (20.0, 35.0, 21.0, 36.0),
        };
        encode_sev1(&h, &vec![fill; 16]).unwrap()
    }

    #[test]
    fn data_faults_are_caught_by_the_vault() {
        let mut repo = Repository::new();
        repo.put("s0.sev1", scene_file(1.0));
        repo.put("s1.sev1", scene_file(2.0));
        repo.put("s2.sev1", scene_file(3.0));
        let mut plan = FaultPlan::new();
        plan.inject("s0", Fault::CorruptPayload).inject("s1", Fault::TruncateHeader);
        assert_eq!(plan.apply_to_repository(&mut repo), 2);

        let mut v = DataVault::new(repo, teleios_monet::Catalog::new(), IngestionPolicy::Lazy, 0);
        // s1's header is gone, so only s0 and s2 register.
        assert_eq!(v.register_all().unwrap(), 2);
        assert!(v.is_quarantined("s1.sev1"));
        // s0's payload corruption surfaces on first access.
        assert!(matches!(v.array_for("s0.sev1"), Err(VaultError::Corrupt(_))));
        assert!(v.is_quarantined("s0.sev1"));
        // The healthy scene is untouched.
        assert!(v.array_for("s2.sev1").is_ok());
    }

    #[test]
    fn apply_skips_missing_files() {
        let mut repo = Repository::new();
        let mut plan = FaultPlan::new();
        plan.inject("ghost", Fault::CorruptPayload);
        assert_eq!(plan.apply_to_repository(&mut repo), 0);
    }

    fn gtf1_file(fill: f64) -> bytes::Bytes {
        let h = teleios_vault::format::Gtf1Header {
            rows: 4,
            cols: 4,
            transform: (20.0, 0.25, 35.0, 0.25),
            epsg: 4326,
        };
        teleios_vault::format::encode_gtf1(&h, &vec![fill; 16]).unwrap()
    }

    fn shp1_file() -> bytes::Bytes {
        teleios_vault::format::encode_shp1(&[teleios_vault::format::Shp1Record {
            wkt: "POINT (21.6 37.4)".into(),
            label: "hotspot".into(),
        }])
    }

    #[test]
    fn data_faults_reach_derived_products() {
        let mut repo = Repository::new();
        repo.put("s0.sev1", scene_file(1.0));
        repo.put("s0.gtf1", gtf1_file(300.0));
        repo.put("s0.shp1", shp1_file());
        let clean_gtf1 = repo.get("s0.gtf1").cloned().unwrap();
        let clean_shp1 = repo.get("s0.shp1").cloned().unwrap();

        let mut plan = FaultPlan::new();
        plan.inject("s0", Fault::CorruptPayload);
        // All three products of the scene are mutated.
        assert_eq!(plan.apply_to_repository(&mut repo), 3);
        assert_ne!(repo.get("s0.gtf1").cloned().unwrap(), clean_gtf1);
        assert_ne!(repo.get("s0.shp1").cloned().unwrap(), clean_shp1);
        // The corruption is exactly what the format checksums catch.
        assert!(teleios_vault::format::decode_gtf1(repo.get("s0.gtf1").unwrap()).is_err());
        assert!(teleios_vault::format::decode_shp1(repo.get("s0.shp1").unwrap()).is_err());
    }

    #[test]
    fn dotted_id_targets_one_file() {
        let mut repo = Repository::new();
        repo.put("s0.sev1", scene_file(1.0));
        repo.put("s0.gtf1", gtf1_file(300.0));
        let clean_sev1 = repo.get("s0.sev1").cloned().unwrap();

        let mut plan = FaultPlan::new();
        plan.inject("s0.gtf1", Fault::TruncateHeader);
        assert_eq!(plan.apply_to_repository(&mut repo), 1);
        // The sibling raw acquisition is untouched.
        assert_eq!(repo.get("s0.sev1").cloned().unwrap(), clean_sev1);
        assert_eq!(repo.get("s0.gtf1").unwrap().len(), 9);
    }

    #[test]
    fn hook_classifier_fault_spares_threshold_chains() {
        let mut plan = FaultPlan::new();
        plan.inject("s", Fault::ClassifierError);
        let hook = plan.chain_hook();
        let contextual = ProcessingChain {
            classifier: HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 },
            ..ProcessingChain::operational()
        };
        let threshold = ProcessingChain::operational();
        assert!(hook("s", ChainStage::Classify, &contextual).is_err());
        assert!(hook("s", ChainStage::Classify, &threshold).is_ok());
        assert!(hook("s", ChainStage::Ingest, &contextual).is_ok());
        assert!(hook("other", ChainStage::Classify, &contextual).is_ok());
    }

    #[test]
    fn hook_transient_fault_clears_after_budget() {
        let mut plan = FaultPlan::new();
        plan.inject("s", Fault::Transient { failures: 2 });
        let hook = plan.chain_hook();
        let chain = ProcessingChain::operational();
        assert!(hook("s", ChainStage::Ingest, &chain).is_err());
        assert!(hook("s", ChainStage::Ingest, &chain).is_err());
        assert!(hook("s", ChainStage::Ingest, &chain).is_ok());
        // Other stages never count as attempts.
        assert!(hook("s", ChainStage::Crop, &chain).is_ok());
    }

    #[test]
    fn seeded_with_keeps_the_scene_selection() {
        let ids = ids(60);
        let default_plan = FaultPlan::seeded(19, &ids, 0.25);
        let hang = Fault::Hang {
            stage: ChainStage::Classify,
            duration: std::time::Duration::from_millis(50),
        };
        let hang_plan = FaultPlan::seeded_with(19, &ids, 0.25, &[hang]);
        // Same scenes selected, different kinds assigned.
        let default_ids: Vec<&str> = default_plan.iter().map(|(id, _)| id).collect();
        let hang_ids: Vec<&str> = hang_plan.iter().map(|(id, _)| id).collect();
        assert_eq!(default_ids, hang_ids);
        assert!(hang_plan.iter().all(|(_, f)| f == hang));
        // An empty palette selects nothing.
        assert!(FaultPlan::seeded_with(19, &ids, 0.25, &[]).is_empty());
    }

    #[test]
    fn durability_palette_keeps_the_scene_selection() {
        let ids = ids(60);
        let default_plan = FaultPlan::seeded(19, &ids, 0.25);
        let durable_plan = FaultPlan::seeded_with(19, &ids, 0.25, &DURABILITY_KINDS);
        // Same seeded scene selection as every other palette; kinds
        // round-robin over the durability palette.
        let default_ids: Vec<&str> = default_plan.iter().map(|(id, _)| id).collect();
        let durable_ids: Vec<&str> = durable_plan.iter().map(|(id, _)| id).collect();
        assert_eq!(default_ids, durable_ids);
        assert!(durable_plan.iter().all(|(_, f)| f.is_durability_fault()));
        let labels: std::collections::BTreeSet<&str> =
            durable_plan.iter().map(|(_, f)| f.label()).collect();
        assert_eq!(
            labels,
            ["torn-write", "short-fsync", "crash-point"].into_iter().collect()
        );
        // Durability kinds never mutate repository bytes.
        assert!(durable_plan.iter().all(|(_, f)| !f.is_data_fault()));
    }

    #[test]
    fn write_fault_maps_durability_kinds_onto_the_store_layer() {
        use teleios_store::WriteFault;
        assert!(matches!(
            Fault::TornWrite { keep: 7 }.write_fault(),
            Some(WriteFault::Torn { keep: 7 })
        ));
        assert!(matches!(Fault::ShortFsync.write_fault(), Some(WriteFault::ShortFsync)));
        assert!(matches!(Fault::CrashPoint.write_fault(), Some(WriteFault::Crash)));
        for kind in SEEDED_KINDS {
            assert!(kind.write_fault().is_none(), "{} is not a write fault", kind.label());
            assert!(!kind.is_durability_fault());
        }
    }

    #[test]
    fn armed_durability_faults_crash_the_durable_store() {
        use teleios_store::{DurableBackend, DurableConfig, MemMedium, StorageBackend};
        let mut medium = MemMedium::new();
        let fault = Fault::CrashPoint.write_fault().unwrap();
        let mut backend = DurableBackend::open(medium, DurableConfig::default()).unwrap();
        backend.begin().unwrap();
        backend.put("vault/catalog", b"scene-1", b"meta").unwrap();
        backend.commit().unwrap();
        backend.medium_mut().arm(fault);
        backend.begin().unwrap();
        backend.put("vault/catalog", b"scene-2", b"meta").unwrap();
        assert!(backend.commit().is_err());
        medium = backend.into_medium();
        medium.crash();
        let recovered = DurableBackend::open(medium, DurableConfig::default()).unwrap();
        assert!(recovered.get("vault/catalog", b"scene-1").unwrap().is_some());
        assert!(recovered.get("vault/catalog", b"scene-2").unwrap().is_none());
    }

    #[test]
    fn hook_hang_without_token_sleeps_in_full() {
        let mut plan = FaultPlan::new();
        let pause = std::time::Duration::from_millis(20);
        plan.inject("s", Fault::Hang { stage: ChainStage::Crop, duration: pause });
        let hook = plan.chain_hook();
        let chain = ProcessingChain::operational();
        let t0 = std::time::Instant::now();
        assert!(hook("s", ChainStage::Crop, &chain).is_ok());
        assert!(t0.elapsed() >= pause, "hang should wait out its duration");
        // Other stages and other scenes are unaffected.
        let t0 = std::time::Instant::now();
        assert!(hook("s", ChainStage::Ingest, &chain).is_ok());
        assert!(hook("other", ChainStage::Crop, &chain).is_ok());
        assert!(t0.elapsed() < pause);
    }

    #[test]
    fn hook_hang_with_cancelled_token_errors_promptly() {
        let mut plan = FaultPlan::new();
        // Minutes of hang — the cancelled token must cut it short.
        plan.inject(
            "s",
            Fault::Hang { stage: ChainStage::Classify, duration: std::time::Duration::from_secs(120) },
        );
        let hook = plan.chain_hook();
        let token = teleios_exec::CancelToken::new();
        token.cancel("deadline");
        let chain = ProcessingChain::operational().with_cancel_token(token);
        let t0 = std::time::Instant::now();
        let err = hook("s", ChainStage::Classify, &chain).unwrap_err().to_string();
        assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        assert!(err.contains("hang"), "{err}");
        assert!(err.contains("cancelled"), "{err}");
    }

    #[test]
    fn hook_georef_fault_clears_on_native_grid() {
        let mut plan = FaultPlan::new();
        plan.inject("s", Fault::GeorefError);
        let hook = plan.chain_hook();
        let mut gridded = ProcessingChain::operational();
        gridded.target_grid = Some((
            teleios_ingest::raster::GeoTransform::fit(
                &teleios_geo::Envelope::new(
                    teleios_geo::Coord::new(20.0, 35.0),
                    teleios_geo::Coord::new(21.0, 36.0),
                ),
                8,
                8,
            ),
            8,
            8,
        ));
        assert!(hook("s", ChainStage::Georef, &gridded).is_err());
        let native = ProcessingChain::operational();
        assert!(hook("s", ChainStage::Georef, &native).is_ok());
    }
}
