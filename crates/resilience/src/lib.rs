#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-resilience — fault-tolerant chain execution
//!
//! A real Virtual Earth Observatory ingests hundreds of scenes per day
//! from an archive where bit rot, truncated writes, and flaky workers
//! are routine; the paper's demo (§4) quietly assumes every MSG/SEVIRI
//! acquisition decodes and classifies cleanly. This crate drops that
//! assumption:
//!
//! * [`supervisor::Supervisor`] wraps [`teleios_noa::ProcessingChain`]
//!   execution with **per-scene isolation** (a panicking worker fails
//!   one scene, never the batch), **bounded retry with exponential
//!   backoff** for transient faults, and **degraded-mode fallbacks**
//!   (contextual classifier → plain threshold; georeferenced target
//!   grid → native grid) so a partially broken chain still produces a
//!   usable, honestly-labeled product. The result is a
//!   [`supervisor::BatchReport`] with a per-scene outcome — `Ok`,
//!   `Retried(n)`, `Degraded{from,to}` or `Failed{reason}` — instead of
//!   an all-or-nothing `Result`.
//! * [`fault::FaultPlan`] is a **seeded, deterministic fault-injection
//!   harness**: it corrupts vault payloads, truncates file headers, and
//!   injects classifier errors, georeferencing errors, worker panics,
//!   transient-then-succeed faults and cancel-aware stage hangs through
//!   the chain's [`teleios_noa::StageHook`], so the supervisor's
//!   guarantees are testable offline, scene by scene, with reproducible
//!   runs.
//! * [`deadline::StageBudget`] adds **deadline-aware supervision**: a
//!   soft per-stage deadline plus a hard per-attempt deadline, enforced
//!   by a watchdog thread through cooperative [`CancelToken`]
//!   cancellation (nothing is ever killed — the chain drains at its
//!   next stage boundary). Overdue scenes end `Timeout` with the
//!   overshot stage recorded; a [`deadline::CircuitBreaker`] skips a
//!   chain variant batch-wide after repeated timeouts, jumping straight
//!   to the next degraded rung.
//!
//! The vault side of the story (payload checksums, quarantine lists,
//! [`teleios_vault::DataVault::retry_quarantined`]) lives in
//! `teleios-vault`; experiment E12 (`exp_fault_tolerance`) measures the
//! retry/degraded stack end to end and E14 (`exp_timeout_budgets`)
//! sweeps deadline budgets against hang rates.

pub mod deadline;
pub mod fault;
pub mod supervisor;

pub use deadline::{CircuitBreaker, StageBudget};
pub use fault::{Fault, FaultPlan, DURABILITY_KINDS, SEEDED_KINDS};
pub use supervisor::{BatchReport, RetryPolicy, SceneOutcome, SceneReport, Supervisor};
pub use teleios_exec::{CancelToken, PoolStats};
