//! Supervised chain execution: retry, backoff, degraded modes.
//!
//! [`Supervisor::run_batch`] is the fault-tolerant counterpart of
//! [`ProcessingChain::run_many_isolated`]: scenes run on a bounded
//! worker pool (no thread-per-scene spawning), each with its own retry
//! budget and its own ladder of degraded chain variants, and the batch
//! always returns a full [`BatchReport`] — one [`SceneReport`] per
//! input scene, in input order, no matter what the workers did.
//!
//! The degraded ladder is cumulative and honest: first the classifier
//! is downgraded to the plain operational threshold (the contextual and
//! adaptive submodules have more ways to fail), then the target grid is
//! dropped for the native scene grid. The report's `chain_id` names the
//! variant that actually produced each product, so a degraded product
//! is never mistaken for a nominal one downstream.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use teleios_exec::{default_threads, CancelToken, PoolStats, WorkerPool};
use teleios_ingest::raster::GeoRaster;
use teleios_monet::Catalog;
use teleios_noa::chain::{panic_message, ChainStage};
use teleios_noa::{ChainOutput, HotspotClassifier, ProcessingChain};

use crate::deadline::{
    AttemptRegistry, BatchDeadline, CircuitBreaker, InFlightAttempt, StageBudget, Watchdog,
};

/// Bounded retry with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = no retries).
    pub max_retries: u32,
    /// Pause before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied to the pause per additional retry (as
    /// integer percent: 200 = double each time).
    pub multiplier_percent: u32,
    /// Upper bound on any single pause (ignored when zero).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(10),
            multiplier_percent: 200,
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that retries immediately — what tests and experiments
    /// use so injected faults don't cost wall-clock sleeps.
    pub fn no_backoff(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
            multiplier_percent: 100,
            max_backoff: Duration::ZERO,
        }
    }

    /// The pause before retry number `retry` (1-based). Zero for
    /// `retry == 0` or when no base backoff is configured. Saturating:
    /// a huge multiplier or retry count pegs the pause at
    /// `Duration::MAX` (then the cap) instead of panicking on
    /// overflow.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        if retry == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let mut pause = self.base_backoff;
        for _ in 1..retry {
            match pause.checked_mul(self.multiplier_percent) {
                Some(grown) => pause = grown / 100,
                None => {
                    // Already beyond any plausible cap; stop growing.
                    pause = Duration::MAX;
                    break;
                }
            }
        }
        if !self.max_backoff.is_zero() {
            pause = pause.min(self.max_backoff);
        }
        pause
    }
}

/// How one scene fared under supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SceneOutcome {
    /// Succeeded on the first attempt with the primary chain.
    Ok,
    /// Succeeded with the primary chain after this many retries.
    Retried(u32),
    /// Succeeded only on a degraded chain variant.
    Degraded {
        /// The primary chain's id.
        from: String,
        /// The variant that produced the product.
        to: String,
    },
    /// Every attempt — retries and degraded variants — failed.
    Failed {
        /// The last error observed.
        reason: String,
    },
    /// No attempt produced a product and at least one attempt was
    /// cancelled by the deadline watchdog: the scene is lost to
    /// timeouts, not to data or logic faults.
    Timeout {
        /// The stage that was running when the last overdue attempt
        /// was cancelled (`"unstarted"` if it never reached a stage).
        stage: String,
        /// The cancellation reason from the watchdog.
        reason: String,
    },
}

impl SceneOutcome {
    /// True for every outcome that yielded a product.
    pub fn succeeded(&self) -> bool {
        !matches!(
            self,
            SceneOutcome::Failed { .. } | SceneOutcome::Timeout { .. }
        )
    }
}

/// Per-scene supervision result.
#[derive(Debug, Clone)]
pub struct SceneReport {
    /// The scene / product id.
    pub product_id: String,
    /// What happened.
    pub outcome: SceneOutcome,
    /// The chain output, when any attempt succeeded.
    pub output: Option<ChainOutput>,
    /// Id of the chain variant that produced `output` (the primary
    /// chain's id for `Failed` scenes).
    pub chain_id: String,
    /// Total attempts spent, across retries and degraded variants.
    pub attempts: u32,
    /// One `"variant/stage"` entry per attempt the deadline watchdog
    /// cancelled, in attempt order — the timeout chain for this scene.
    /// Empty when no attempt timed out.
    pub timed_out_stages: Vec<String>,
}

/// The supervised batch result: one report per input scene, in input
/// order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-scene reports.
    pub scenes: Vec<SceneReport>,
    /// Wall-clock time for the whole batch.
    pub wall_clock: Duration,
    /// Worker-pool statistics for the run (worker count, queue
    /// capacity, peak queue depth).
    pub pool: PoolStats,
}

impl BatchReport {
    /// Scenes that succeeded first try.
    pub fn ok_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Ok)).count()
    }

    /// Scenes that needed at least one retry.
    pub fn retried_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Retried(_))).count()
    }

    /// Scenes that fell back to a degraded chain variant.
    pub fn degraded_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Degraded { .. })).count()
    }

    /// Scenes that failed on data or logic faults (not timeouts).
    pub fn failed_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Failed { .. })).count()
    }

    /// Scenes lost to deadline timeouts.
    pub fn timeout_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Timeout { .. })).count()
    }

    /// Scenes with no product at all (failed + timed out).
    pub fn lost_count(&self) -> usize {
        self.scenes.iter().filter(|s| !s.outcome.succeeded()).count()
    }

    /// Scenes that produced a product (ok + retried + degraded).
    pub fn succeeded_count(&self) -> usize {
        self.scenes.iter().filter(|s| s.outcome.succeeded()).count()
    }

    /// The report for one scene id.
    pub fn report_for(&self, product_id: &str) -> Option<&SceneReport> {
        self.scenes.iter().find(|s| s.product_id == product_id)
    }

    /// One-line summary for logs and experiment tables. When the batch
    /// ran on the work-stealing scheduler and any morsel migrated, the
    /// line carries the steal count as a load-balance signal.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{} scenes: {} ok, {} retried, {} degraded, {} failed, {} timeout in {:.1?}",
            self.scenes.len(),
            self.ok_count(),
            self.retried_count(),
            self.degraded_count(),
            self.failed_count(),
            self.timeout_count(),
            self.wall_clock
        );
        if self.pool.tasks_stolen > 0 {
            line.push_str(&format!(
                " ({} of {} tasks stolen)",
                self.pool.tasks_stolen, self.pool.tasks_executed
            ));
        }
        line
    }
}

/// The cumulative ladder of degraded chain variants, most capable
/// first. Labels name the variant for [`SceneReport::chain_id`] and
/// [`SceneOutcome::Degraded`].
fn degraded_variants(primary: &ProcessingChain) -> Vec<(String, ProcessingChain)> {
    let mut variants = Vec::new();
    let mut current = primary.clone();
    let downgraded = match current.classifier {
        HotspotClassifier::Threshold { .. } => None,
        HotspotClassifier::Contextual { kelvin, .. } => {
            Some(HotspotClassifier::Threshold { kelvin })
        }
        HotspotClassifier::Adaptive { .. } => Some(HotspotClassifier::default_operational()),
    };
    if let Some(classifier) = downgraded {
        current.classifier = classifier;
        variants.push((current.id(), current.clone()));
    }
    if current.target_grid.is_some() {
        current.target_grid = None;
        variants.push((format!("{}+native-grid", current.id()), current.clone()));
    }
    variants
}

/// Supervised executor for chain batches.
#[derive(Debug, Clone, Copy)]
pub struct Supervisor {
    /// Retry/backoff policy applied per scene to the primary chain.
    pub retry: RetryPolicy,
    /// Whether to try degraded chain variants after the retry budget
    /// is exhausted.
    pub degraded_mode: bool,
    /// Worker count for [`Self::run_batch`]'s bounded pool; `0` means
    /// the executor default (`TELEIOS_THREADS` env override, else
    /// available parallelism).
    pub workers: usize,
    /// Per-attempt deadline budgets (soft per-stage + hard per-scene).
    /// Unlimited by default; a limited budget arms the watchdog.
    pub budget: StageBudget,
    /// Hard deadline for a whole [`Self::run_batch`] call:
    /// once overshot, no further scene is dispatched and in-flight
    /// attempts are cancelled. `Duration::MAX` (the default) disables
    /// it.
    pub batch_deadline: Duration,
    /// Attempt-level timeouts on one chain variant before its circuit
    /// opens and the supervisor skips it (straight to the next
    /// degraded rung) for the rest of the batch. Zero disables the
    /// breaker.
    pub breaker_threshold: u32,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor::new(RetryPolicy::default())
    }
}

/// Timeouts per variant before the circuit opens, unless overridden
/// with [`Supervisor::with_breaker_threshold`]. "Times out twice →
/// stop burning deadline budget on it."
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 2;

impl Supervisor {
    /// Supervisor with the given retry policy, degraded mode on, no
    /// deadlines, and the default circuit-breaker threshold (the
    /// breaker only matters once a budget is set).
    pub fn new(retry: RetryPolicy) -> Supervisor {
        Supervisor {
            retry,
            degraded_mode: true,
            workers: 0,
            budget: StageBudget::unlimited(),
            batch_deadline: Duration::MAX,
            breaker_threshold: DEFAULT_BREAKER_THRESHOLD,
        }
    }

    /// The same supervisor with degraded-mode fallbacks disabled:
    /// scenes either succeed with the primary chain or fail.
    pub fn without_degraded_mode(mut self) -> Supervisor {
        self.degraded_mode = false;
        self
    }

    /// The same supervisor with an explicit batch worker count.
    pub fn with_workers(mut self, workers: usize) -> Supervisor {
        self.workers = workers;
        self
    }

    /// The same supervisor with per-attempt deadline budgets. Arms the
    /// watchdog in [`Self::run_scene`] and [`Self::run_batch`].
    pub fn with_budget(mut self, budget: StageBudget) -> Supervisor {
        self.budget = budget;
        self
    }

    /// The same supervisor with a whole-batch hard deadline.
    pub fn with_batch_deadline(mut self, deadline: Duration) -> Supervisor {
        self.batch_deadline = deadline;
        self
    }

    /// The same supervisor with an explicit circuit-breaker threshold
    /// (zero disables the breaker).
    pub fn with_breaker_threshold(mut self, threshold: u32) -> Supervisor {
        self.breaker_threshold = threshold;
        self
    }

    /// One isolated attempt: panics become errors.
    fn attempt(
        catalog: &Catalog,
        chain: &ProcessingChain,
        product_id: &str,
        raster: &GeoRaster,
    ) -> std::result::Result<ChainOutput, String> {
        match catch_unwind(AssertUnwindSafe(|| chain.run(catalog, product_id, raster))) {
            Ok(Ok(output)) => Ok(output),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(format!(
                "chain worker panicked on {product_id}: {}",
                panic_message(payload.as_ref())
            )),
        }
    }

    /// One deadline-instrumented attempt: the chain runs with a fresh
    /// [`CancelToken`] and a stage-tracking hook wrapped around the
    /// caller's hook, registered with the watchdog's registry for the
    /// duration. Returns the attempt result plus, when the token was
    /// fired, the `(stage, reason)` the cancellation landed on.
    fn deadline_attempt(
        catalog: &Catalog,
        chain: &ProcessingChain,
        variant_id: &str,
        product_id: &str,
        raster: &GeoRaster,
        registry: &AttemptRegistry,
    ) -> (std::result::Result<ChainOutput, String>, Option<(String, String)>) {
        let token = CancelToken::new();
        let attempt =
            Arc::new(InFlightAttempt::new(product_id, variant_id, token.clone()));
        let tracker = Arc::clone(&attempt);
        let original_hook = chain.stage_hook.clone();
        let mut instrumented = chain.clone().with_cancel_token(token.clone());
        instrumented.stage_hook = Some(Arc::new(
            move |id: &str, stage: ChainStage, ch: &ProcessingChain| {
                tracker.enter_stage(stage);
                match &original_hook {
                    Some(hook) => hook(id, stage, ch),
                    None => Ok(()),
                }
            },
        ));
        registry.register(Arc::clone(&attempt));
        let result = Self::attempt(catalog, &instrumented, product_id, raster);
        registry.deregister(&attempt);
        let timeout = if result.is_err() && token.is_cancelled() {
            let reason = token
                .reason()
                .unwrap_or_else(|| "deadline cancellation".to_string());
            Some((attempt.stage_label(), reason))
        } else {
            None
        };
        (result, timeout)
    }

    /// Supervise one scene: retry the primary chain within the budget,
    /// then walk the degraded ladder — skipping any variant whose
    /// timeout circuit is open, as long as a further rung exists (the
    /// last rung is always attempted, so the breaker can never strand
    /// a healthy scene). Never panics, never aborts.
    /// `cancel` interrupts retry backoff: a batch-deadline (or caller)
    /// cancellation cuts the pause short and the scene stops retrying,
    /// so a worker never sits in a plain sleep that outlives the batch.
    fn run_scene_supervised(
        &self,
        catalog: &Catalog,
        chain: &ProcessingChain,
        product_id: &str,
        raster: &GeoRaster,
        registry: &AttemptRegistry,
        breaker: &CircuitBreaker,
        cancel: &CancelToken,
    ) -> SceneReport {
        let primary_id = chain.id();
        let mut rungs: Vec<(String, ProcessingChain)> =
            vec![(primary_id.clone(), chain.clone())];
        if self.degraded_mode {
            rungs.extend(degraded_variants(chain));
        }
        let rung_count = rungs.len();

        let mut attempts = 0u32;
        let mut last_error = String::new();
        let mut timed_out_stages: Vec<String> = Vec::new();
        let mut last_timeout: Option<(String, String)> = None;

        for (rung_idx, (variant_id, variant)) in rungs.into_iter().enumerate() {
            let is_primary = rung_idx == 0;
            let has_next_rung = rung_idx + 1 < rung_count;
            if has_next_rung && breaker.is_open(&variant_id) {
                last_error = format!(
                    "variant {variant_id} skipped: circuit open after repeated timeouts"
                );
                continue;
            }
            let tries = if is_primary { self.retry.max_retries + 1 } else { 1 };
            for try_n in 0..tries {
                attempts += 1;
                let (result, timeout) = Self::deadline_attempt(
                    catalog, &variant, &variant_id, product_id, raster, registry,
                );
                match result {
                    Ok(output) => {
                        let outcome = if !is_primary {
                            SceneOutcome::Degraded {
                                from: primary_id.clone(),
                                to: variant_id.clone(),
                            }
                        } else if try_n == 0 {
                            SceneOutcome::Ok
                        } else {
                            SceneOutcome::Retried(try_n)
                        };
                        return SceneReport {
                            product_id: product_id.to_string(),
                            outcome,
                            output: Some(output),
                            chain_id: variant_id,
                            attempts,
                            timed_out_stages,
                        };
                    }
                    Err(message) => {
                        last_error = message;
                        if let Some((stage, reason)) = timeout {
                            timed_out_stages.push(format!("{variant_id}/{stage}"));
                            breaker.record_timeout(&variant_id);
                            last_timeout = Some((stage, reason));
                            // A variant that just tripped its circuit
                            // gets no further retries either (unless
                            // it is the scene's last resort).
                            if has_next_rung && breaker.is_open(&variant_id) {
                                break;
                            }
                        }
                        if try_n + 1 < tries {
                            let pause = self.retry.backoff_for(try_n + 1);
                            if !pause.is_zero() && cancel.sleep_cancellable(pause) {
                                // Cut short: give the scene up now
                                // instead of burning more attempts the
                                // batch no longer wants.
                                return SceneReport {
                                    product_id: product_id.to_string(),
                                    outcome: SceneOutcome::Failed {
                                        reason: format!(
                                            "cancelled during retry backoff: {}",
                                            cancel
                                                .reason()
                                                .unwrap_or_else(|| "batch cancelled".to_string())
                                        ),
                                    },
                                    output: None,
                                    chain_id: primary_id.clone(),
                                    attempts,
                                    timed_out_stages,
                                };
                            }
                        }
                    }
                }
            }
        }
        let outcome = match last_timeout {
            Some((stage, reason)) => SceneOutcome::Timeout { stage, reason },
            None => SceneOutcome::Failed { reason: last_error },
        };
        SceneReport {
            product_id: product_id.to_string(),
            outcome,
            output: None,
            chain_id: primary_id,
            attempts,
            timed_out_stages,
        }
    }

    /// Supervise one scene, standalone: a private watchdog enforces
    /// the deadline budget (when one is set) for just this call.
    pub fn run_scene(
        &self,
        catalog: &Catalog,
        chain: &ProcessingChain,
        product_id: &str,
        raster: &GeoRaster,
    ) -> SceneReport {
        let registry = AttemptRegistry::default();
        let breaker = CircuitBreaker::new(self.breaker_threshold);
        let cancel = CancelToken::new();
        let watchdog = if self.budget.is_unlimited() {
            None
        } else {
            Some(Watchdog::spawn(registry.clone(), self.budget, None))
        };
        let report = self.run_scene_supervised(
            catalog, chain, product_id, raster, &registry, &breaker, &cancel,
        );
        if let Some(watchdog) = watchdog {
            watchdog.stop();
        }
        report
    }

    /// Supervise a batch on a bounded worker pool: `workers` threads
    /// (the executor default when zero) drain a task queue capped at
    /// `2 × workers` entries, so memory for in-flight scenes stays
    /// bounded no matter how large the archive is. A single watchdog
    /// thread polices every in-flight attempt's deadline budget plus
    /// the whole-batch deadline; a single circuit breaker is shared by
    /// all scenes, so a chain variant that keeps timing out is skipped
    /// batch-wide. Reports come back in input order; a lost scene
    /// never takes the batch or the process down.
    pub fn run_batch(
        &self,
        catalog: &Catalog,
        chain: &ProcessingChain,
        scenes: &[(String, GeoRaster)],
    ) -> BatchReport {
        let t0 = Instant::now();
        let workers = if self.workers == 0 { default_threads() } else { self.workers };
        let pool = WorkerPool::with_threads(workers);
        let queue_capacity = 2 * workers.max(1);
        let registry = AttemptRegistry::default();
        let breaker = CircuitBreaker::new(self.breaker_threshold);
        let batch_token = CancelToken::new();
        let has_batch_deadline = self.batch_deadline != Duration::MAX;
        let watchdog = if self.budget.is_unlimited() && !has_batch_deadline {
            None
        } else {
            let batch = has_batch_deadline.then(|| BatchDeadline {
                started: t0,
                deadline: self.batch_deadline,
                token: batch_token.clone(),
            });
            Some(Watchdog::spawn(registry.clone(), self.budget, batch))
        };
        let tasks: Vec<_> = scenes
            .iter()
            .map(|(id, raster)| {
                let supervisor = *self;
                let chain = chain.clone();
                let catalog = catalog.clone();
                let registry = registry.clone();
                let breaker = breaker.clone();
                let cancel = batch_token.clone();
                move || {
                    supervisor.run_scene_supervised(
                        &catalog, &chain, id, raster, &registry, &breaker, &cancel,
                    )
                }
            })
            .collect();
        let (outcomes, pool_stats) =
            pool.try_run_bounded_cancellable(queue_capacity, tasks, &batch_token);
        if let Some(watchdog) = watchdog {
            watchdog.stop();
        }
        let scenes = outcomes
            .into_iter()
            .zip(scenes)
            .map(|(slot, (id, _))| match slot {
                Some(Ok(report)) => report,
                // Unreachable in practice (run_scene_supervised catches
                // everything), but still: a worker panic degrades to a
                // per-scene failure, never an abort.
                Some(Err(payload)) => SceneReport {
                    product_id: id.clone(),
                    outcome: SceneOutcome::Failed {
                        reason: format!(
                            "supervisor worker for {id} could not be joined: {}",
                            panic_message(payload.as_ref())
                        ),
                    },
                    output: None,
                    chain_id: chain.id(),
                    attempts: 0,
                    timed_out_stages: Vec::new(),
                },
                // The batch deadline fired before this scene was
                // dispatched; the pool drained without running it.
                None => SceneReport {
                    product_id: id.clone(),
                    outcome: SceneOutcome::Timeout {
                        stage: "unstarted".to_string(),
                        reason: batch_token.reason().unwrap_or_else(|| {
                            format!(
                                "batch deadline {:?} overshot before {id} was dispatched",
                                self.batch_deadline
                            )
                        }),
                    },
                    output: None,
                    chain_id: chain.id(),
                    attempts: 0,
                    timed_out_stages: Vec::new(),
                },
            })
            .collect::<Vec<SceneReport>>();
        BatchReport { scenes, wall_clock: t0.elapsed(), pool: pool_stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use std::sync::Arc;
    use teleios_geo::{Coord, Envelope};
    use teleios_ingest::raster::GeoTransform;
    use teleios_ingest::seviri::{generate, FireEvent, SceneSpec, SurfaceKind};

    fn bbox() -> Envelope {
        Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
    }

    fn surface(c: Coord) -> SurfaceKind {
        if c.x < 23.0 {
            SurfaceKind::Forest
        } else {
            SurfaceKind::Sea
        }
    }

    fn scenes(n: usize) -> Vec<(String, GeoRaster)> {
        (0..n)
            .map(|i| {
                let mut spec = SceneSpec::new(700 + i as u64, 32, 32, bbox());
                spec.cloud_cover = 0.0;
                spec.glint_rate = 0.0;
                spec.fires.push(FireEvent {
                    center: Coord::new(21.6, 37.4),
                    radius: 0.08,
                    intensity: 0.9,
                });
                (format!("sup{i}"), generate(&spec, &surface).unwrap().raster)
            })
            .collect()
    }

    fn contextual_gridded() -> ProcessingChain {
        let mut chain = ProcessingChain::operational();
        chain.classifier = HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 };
        chain.target_grid = Some((GeoTransform::fit(&bbox(), 32, 32), 32, 32));
        chain
    }

    #[test]
    fn healthy_batch_is_all_ok() {
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let batch = scenes(4);
        let report = supervisor.run_batch(&Catalog::new(), &contextual_gridded(), &batch);
        assert_eq!(report.scenes.len(), 4);
        assert_eq!(report.ok_count(), 4);
        assert_eq!(report.failed_count(), 0);
        for scene in &report.scenes {
            assert_eq!(scene.attempts, 1);
            assert_eq!(scene.chain_id, "contextual-318-n2");
            assert!(scene.output.is_some());
        }
        // Input order is preserved.
        let ids: Vec<&str> = report.scenes.iter().map(|s| s.product_id.as_str()).collect();
        assert_eq!(ids, vec!["sup0", "sup1", "sup2", "sup3"]);
    }

    #[test]
    fn transient_fault_is_retried_within_budget() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::Transient { failures: 2 });
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(2));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(3));
        assert_eq!(report.report_for("sup1").unwrap().outcome, SceneOutcome::Retried(2));
        assert_eq!(report.report_for("sup1").unwrap().attempts, 3);
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.failed_count(), 0);
    }

    #[test]
    fn cancellation_interrupts_retry_backoff() {
        // A pre-cancelled token must cut the (enormous) backoff short
        // immediately: the scene reports Failed instead of pinning a
        // worker in a plain sleep the batch deadline can't reach.
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::Transient { failures: 5 });
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_secs(3600),
            multiplier_percent: 100,
            max_backoff: Duration::ZERO,
        });
        let cancel = CancelToken::new();
        cancel.cancel("batch deadline exceeded");
        let batch = scenes(1);
        let t0 = Instant::now();
        let report = supervisor.run_scene_supervised(
            &Catalog::new(),
            &chain,
            "sup0",
            &batch[0].1,
            &AttemptRegistry::default(),
            &CircuitBreaker::new(3),
            &cancel,
        );
        assert!(t0.elapsed() < Duration::from_secs(60), "backoff was not interrupted");
        assert_eq!(report.attempts, 1);
        assert!(
            matches!(&report.outcome, SceneOutcome::Failed { reason }
                if reason.contains("cancelled during retry backoff")
                    && reason.contains("batch deadline exceeded")),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn transient_fault_beyond_budget_fails_without_degraded_help() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::Transient { failures: 5 });
        // The threshold chain has no degraded ladder, so the scene fails.
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(1));
        let scene = report.report_for("sup0").unwrap();
        assert!(matches!(&scene.outcome, SceneOutcome::Failed { reason } if reason.contains("transient")));
        assert!(scene.output.is_none());
    }

    #[test]
    fn classifier_fault_degrades_to_threshold() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::ClassifierError);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(2));
        let scene = report.report_for("sup1").unwrap();
        assert_eq!(
            scene.outcome,
            SceneOutcome::Degraded {
                from: "contextual-318-n2".to_string(),
                to: "threshold-318".to_string()
            }
        );
        assert_eq!(scene.chain_id, "threshold-318");
        assert!(scene.output.is_some());
        // 2 primary attempts + 1 degraded.
        assert_eq!(scene.attempts, 3);
        assert_eq!(report.report_for("sup0").unwrap().outcome, SceneOutcome::Ok);
    }

    #[test]
    fn georef_fault_degrades_to_native_grid() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::GeorefError);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(1));
        let scene = report.report_for("sup0").unwrap();
        assert_eq!(
            scene.outcome,
            SceneOutcome::Degraded {
                from: "contextual-318-n2".to_string(),
                to: "threshold-318+native-grid".to_string()
            }
        );
        // The product is on the scene's native 32x32 grid.
        let output = scene.output.as_ref().unwrap();
        assert_eq!(output.raster.rows(), 32);
        // 1 primary + threshold variant (also faulted at georef) + native grid.
        assert_eq!(scene.attempts, 3);
    }

    #[test]
    fn worker_panic_fails_one_scene_only() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::WorkerPanic);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(3));
        let scene = report.report_for("sup1").unwrap();
        assert!(matches!(&scene.outcome, SceneOutcome::Failed { reason } if reason.contains("panicked")));
        // 2 primary attempts + 2 degraded variants, all panicking.
        assert_eq!(scene.attempts, 4);
        assert_eq!(report.succeeded_count(), 2);
        assert_eq!(report.failed_count(), 1);
    }

    #[test]
    fn degraded_mode_can_be_disabled() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::ClassifierError);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1)).without_degraded_mode();
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(1));
        assert!(matches!(
            report.report_for("sup0").unwrap().outcome,
            SceneOutcome::Failed { .. }
        ));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            multiplier_percent: 200,
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff_for(0), Duration::ZERO);
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(35)); // capped from 40
        assert_eq!(RetryPolicy::no_backoff(3).backoff_for(2), Duration::ZERO);
    }

    #[test]
    fn backoff_saturates_on_huge_multiplier() {
        // A multiplier large enough to overflow Duration on the first
        // growth step must saturate to Duration::MAX, not wrap or panic.
        let uncapped = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_secs(u64::MAX / 2),
            multiplier_percent: u32::MAX,
            max_backoff: Duration::ZERO, // zero = no cap
        };
        assert_eq!(uncapped.backoff_for(2), Duration::MAX);
        // With a cap configured, saturation still lands on the cap.
        let capped = RetryPolicy { max_backoff: Duration::from_secs(30), ..uncapped };
        assert_eq!(capped.backoff_for(2), Duration::from_secs(30));
    }

    #[test]
    fn backoff_deep_retry_counts_terminate_at_max() {
        // Very deep retry counts must terminate promptly (the growth
        // loop breaks once saturated) and stay pinned at the ceiling.
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_millis(1),
            multiplier_percent: 1_000,
            max_backoff: Duration::ZERO,
        };
        assert_eq!(policy.backoff_for(500), Duration::MAX);
        assert_eq!(policy.backoff_for(u32::MAX), Duration::MAX);
        let capped = RetryPolicy { max_backoff: Duration::from_millis(250), ..policy };
        assert_eq!(capped.backoff_for(u32::MAX), Duration::from_millis(250));
    }

    #[test]
    fn backoff_zero_base_is_zero_for_all_retries() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::ZERO,
            multiplier_percent: u32::MAX,
            max_backoff: Duration::from_secs(1),
        };
        for retry in [0, 1, 2, 100, u32::MAX] {
            assert_eq!(policy.backoff_for(retry), Duration::ZERO);
        }
    }

    #[test]
    fn summary_mentions_every_bucket() {
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0));
        let report = supervisor.run_batch(&Catalog::new(), &ProcessingChain::operational(), &scenes(2));
        let line = report.summary();
        assert!(line.contains("2 scenes"));
        assert!(line.contains("2 ok"));
        assert!(line.contains("0 failed"));
    }

    #[test]
    fn backoff_saturates_instead_of_panicking() {
        // Regression: `pause * multiplier_percent` used to overflow and
        // panic for large multipliers / deep retry counts.
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_secs(u64::MAX / 2),
            multiplier_percent: u32::MAX,
            max_backoff: Duration::ZERO,
        };
        assert_eq!(policy.backoff_for(40), Duration::MAX);
        // With a cap, the saturated pause is clamped to it.
        let capped = RetryPolicy { max_backoff: Duration::from_millis(50), ..policy };
        assert_eq!(capped.backoff_for(40), Duration::from_millis(50));
        // Sane policies are unaffected.
        assert_eq!(
            RetryPolicy::default().backoff_for(2),
            Duration::from_millis(20)
        );
    }

    fn hang(stage: teleios_noa::chain::ChainStage) -> Fault {
        Fault::Hang { stage, duration: Duration::from_secs(10) }
    }

    #[test]
    fn hung_scene_times_out_and_records_the_stage() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", hang(ChainStage::Classify));
        // Threshold chain: no degraded ladder, so the scene is lost to
        // the timeout alone.
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0))
            .with_budget(StageBudget::hard(Duration::from_millis(150)));
        let t0 = Instant::now();
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(2));
        // Far below the 10 s hang: cancellation cut it short.
        assert!(t0.elapsed() < Duration::from_secs(5));
        let lost = report.report_for("sup0").unwrap();
        assert!(
            matches!(&lost.outcome, SceneOutcome::Timeout { stage, .. } if stage == "classify"),
            "unexpected outcome {:?}",
            lost.outcome
        );
        assert_eq!(lost.timed_out_stages, vec!["threshold-318/classify".to_string()]);
        assert!(lost.output.is_none());
        assert!(!lost.outcome.succeeded());
        // The healthy scene is untouched.
        assert_eq!(report.report_for("sup1").unwrap().outcome, SceneOutcome::Ok);
        assert_eq!(report.timeout_count(), 1);
        assert_eq!(report.failed_count(), 0);
        assert_eq!(report.lost_count(), 1);
        assert!(report.summary().contains("1 timeout"));
    }

    #[test]
    fn soft_stage_budget_cancels_a_wedged_stage() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", hang(ChainStage::Georef));
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0)).with_budget(
            StageBudget::new(Duration::from_millis(120), Duration::from_secs(3600)),
        );
        let report = supervisor.run_scene(
            &Catalog::new(),
            &chain,
            "sup0",
            &scenes(1)[0].1,
        );
        match &report.outcome {
            SceneOutcome::Timeout { stage, reason } => {
                assert_eq!(stage, "georef");
                assert!(reason.contains("soft deadline"), "{reason}");
            }
            other => panic!("expected a soft-stage timeout, got {other:?}"),
        }
    }

    #[test]
    fn timeout_trips_the_breaker_and_later_scenes_skip_the_variant() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", hang(ChainStage::Classify));
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        // One worker: sup0 runs (and trips the primary's circuit)
        // before sup1 starts, deterministically.
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1))
            .with_workers(1)
            .with_budget(StageBudget::hard(Duration::from_millis(150)));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(2));

        // sup0 timed out on every rung: twice on the primary (tripping
        // its breaker at the default threshold of 2), once on each
        // degraded variant (the last rung is still attempted).
        let lost = report.report_for("sup0").unwrap();
        assert!(matches!(&lost.outcome, SceneOutcome::Timeout { .. }));
        assert_eq!(
            lost.timed_out_stages,
            vec![
                "contextual-318-n2/classify".to_string(),
                "contextual-318-n2/classify".to_string(),
                "threshold-318/classify".to_string(),
                "threshold-318+native-grid/classify".to_string(),
            ]
        );
        assert_eq!(lost.attempts, 4);

        // sup1 is healthy but the primary's circuit is open, so it
        // goes straight to the degraded ladder — delivered, not lost.
        let healthy = report.report_for("sup1").unwrap();
        assert_eq!(
            healthy.outcome,
            SceneOutcome::Degraded {
                from: "contextual-318-n2".to_string(),
                to: "threshold-318".to_string(),
            }
        );
        assert!(healthy.output.is_some());
    }

    #[test]
    fn breaker_never_strands_a_scene_on_its_last_rung() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", hang(ChainStage::Classify));
        // Threshold chain: one rung only. Even with its circuit open
        // after sup0's timeouts, sup1 must still be attempted on it.
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1))
            .with_workers(1)
            .with_budget(StageBudget::hard(Duration::from_millis(150)));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(2));
        assert!(matches!(
            report.report_for("sup0").unwrap().outcome,
            SceneOutcome::Timeout { .. }
        ));
        assert_eq!(report.report_for("sup1").unwrap().outcome, SceneOutcome::Ok);
    }

    #[test]
    fn batch_deadline_stops_dispatch_and_drains_in_flight_scenes() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", hang(ChainStage::Classify));
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        // Generous per-scene budget, tight batch deadline: the batch
        // arm of the watchdog must both cancel the in-flight hang and
        // keep the queued scenes from dispatching.
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0))
            .with_workers(1)
            .with_budget(StageBudget::hard(Duration::from_secs(3600)))
            .with_batch_deadline(Duration::from_millis(40));
        let t0 = Instant::now();
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(4));
        assert!(t0.elapsed() < Duration::from_secs(5));
        assert_eq!(report.scenes.len(), 4);
        let first = report.report_for("sup0").unwrap();
        assert!(
            matches!(&first.outcome, SceneOutcome::Timeout { reason, .. } if reason.contains("batch deadline")),
            "unexpected outcome {:?}",
            first.outcome
        );
        for id in ["sup1", "sup2", "sup3"] {
            let scene = report.report_for(id).unwrap();
            assert!(
                matches!(&scene.outcome, SceneOutcome::Timeout { stage, .. } if stage == "unstarted"),
                "{id}: unexpected outcome {:?}",
                scene.outcome
            );
            assert_eq!(scene.attempts, 0);
        }
    }

    #[test]
    fn unlimited_budget_changes_nothing_for_faulted_batches() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::Transient { failures: 2 });
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(2))
            .with_budget(StageBudget::unlimited());
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(3));
        assert_eq!(report.report_for("sup1").unwrap().outcome, SceneOutcome::Retried(2));
        assert_eq!(report.timeout_count(), 0);
        assert!(report.scenes.iter().all(|s| s.timed_out_stages.is_empty()));
    }

    #[test]
    fn degraded_ladder_shape() {
        let ladder = degraded_variants(&contextual_gridded());
        assert_eq!(ladder.len(), 2);
        assert_eq!(ladder[0].0, "threshold-318");
        assert_eq!(ladder[1].0, "threshold-318+native-grid");
        assert!(ladder[1].1.target_grid.is_none());
        // A plain operational chain has nothing to degrade to.
        assert!(degraded_variants(&ProcessingChain::operational()).is_empty());
    }
}
