//! Supervised chain execution: retry, backoff, degraded modes.
//!
//! [`Supervisor::run_batch`] is the fault-tolerant counterpart of
//! [`ProcessingChain::run_many_isolated`]: scenes run on a bounded
//! worker pool (no thread-per-scene spawning), each with its own retry
//! budget and its own ladder of degraded chain variants, and the batch
//! always returns a full [`BatchReport`] — one [`SceneReport`] per
//! input scene, in input order, no matter what the workers did.
//!
//! The degraded ladder is cumulative and honest: first the classifier
//! is downgraded to the plain operational threshold (the contextual and
//! adaptive submodules have more ways to fail), then the target grid is
//! dropped for the native scene grid. The report's `chain_id` names the
//! variant that actually produced each product, so a degraded product
//! is never mistaken for a nominal one downstream.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;
use std::time::{Duration, Instant};
use teleios_exec::{default_threads, PoolStats, WorkerPool};
use teleios_ingest::raster::GeoRaster;
use teleios_monet::Catalog;
use teleios_noa::chain::panic_message;
use teleios_noa::{ChainOutput, HotspotClassifier, ProcessingChain};

/// Bounded retry with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = no retries).
    pub max_retries: u32,
    /// Pause before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied to the pause per additional retry (as
    /// integer percent: 200 = double each time).
    pub multiplier_percent: u32,
    /// Upper bound on any single pause (ignored when zero).
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(10),
            multiplier_percent: 200,
            max_backoff: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that retries immediately — what tests and experiments
    /// use so injected faults don't cost wall-clock sleeps.
    pub fn no_backoff(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
            multiplier_percent: 100,
            max_backoff: Duration::ZERO,
        }
    }

    /// The pause before retry number `retry` (1-based). Zero for
    /// `retry == 0` or when no base backoff is configured.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        if retry == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let mut pause = self.base_backoff;
        for _ in 1..retry {
            pause = pause * self.multiplier_percent / 100;
        }
        if !self.max_backoff.is_zero() {
            pause = pause.min(self.max_backoff);
        }
        pause
    }
}

/// How one scene fared under supervision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SceneOutcome {
    /// Succeeded on the first attempt with the primary chain.
    Ok,
    /// Succeeded with the primary chain after this many retries.
    Retried(u32),
    /// Succeeded only on a degraded chain variant.
    Degraded {
        /// The primary chain's id.
        from: String,
        /// The variant that produced the product.
        to: String,
    },
    /// Every attempt — retries and degraded variants — failed.
    Failed {
        /// The last error observed.
        reason: String,
    },
}

impl SceneOutcome {
    /// True for every outcome that yielded a product.
    pub fn succeeded(&self) -> bool {
        !matches!(self, SceneOutcome::Failed { .. })
    }
}

/// Per-scene supervision result.
#[derive(Debug, Clone)]
pub struct SceneReport {
    /// The scene / product id.
    pub product_id: String,
    /// What happened.
    pub outcome: SceneOutcome,
    /// The chain output, when any attempt succeeded.
    pub output: Option<ChainOutput>,
    /// Id of the chain variant that produced `output` (the primary
    /// chain's id for `Failed` scenes).
    pub chain_id: String,
    /// Total attempts spent, across retries and degraded variants.
    pub attempts: u32,
}

/// The supervised batch result: one report per input scene, in input
/// order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-scene reports.
    pub scenes: Vec<SceneReport>,
    /// Wall-clock time for the whole batch.
    pub wall_clock: Duration,
    /// Worker-pool statistics for the run (worker count, queue
    /// capacity, peak queue depth).
    pub pool: PoolStats,
}

impl BatchReport {
    /// Scenes that succeeded first try.
    pub fn ok_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Ok)).count()
    }

    /// Scenes that needed at least one retry.
    pub fn retried_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Retried(_))).count()
    }

    /// Scenes that fell back to a degraded chain variant.
    pub fn degraded_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Degraded { .. })).count()
    }

    /// Scenes with no product at all.
    pub fn failed_count(&self) -> usize {
        self.scenes.iter().filter(|s| matches!(s.outcome, SceneOutcome::Failed { .. })).count()
    }

    /// Scenes that produced a product (ok + retried + degraded).
    pub fn succeeded_count(&self) -> usize {
        self.scenes.iter().filter(|s| s.outcome.succeeded()).count()
    }

    /// The report for one scene id.
    pub fn report_for(&self, product_id: &str) -> Option<&SceneReport> {
        self.scenes.iter().find(|s| s.product_id == product_id)
    }

    /// One-line summary for logs and experiment tables.
    pub fn summary(&self) -> String {
        format!(
            "{} scenes: {} ok, {} retried, {} degraded, {} failed in {:.1?}",
            self.scenes.len(),
            self.ok_count(),
            self.retried_count(),
            self.degraded_count(),
            self.failed_count(),
            self.wall_clock
        )
    }
}

/// The cumulative ladder of degraded chain variants, most capable
/// first. Labels name the variant for [`SceneReport::chain_id`] and
/// [`SceneOutcome::Degraded`].
fn degraded_variants(primary: &ProcessingChain) -> Vec<(String, ProcessingChain)> {
    let mut variants = Vec::new();
    let mut current = primary.clone();
    let downgraded = match current.classifier {
        HotspotClassifier::Threshold { .. } => None,
        HotspotClassifier::Contextual { kelvin, .. } => {
            Some(HotspotClassifier::Threshold { kelvin })
        }
        HotspotClassifier::Adaptive { .. } => Some(HotspotClassifier::default_operational()),
    };
    if let Some(classifier) = downgraded {
        current.classifier = classifier;
        variants.push((current.id(), current.clone()));
    }
    if current.target_grid.is_some() {
        current.target_grid = None;
        variants.push((format!("{}+native-grid", current.id()), current.clone()));
    }
    variants
}

/// Supervised executor for chain batches.
#[derive(Debug, Clone, Copy)]
pub struct Supervisor {
    /// Retry/backoff policy applied per scene to the primary chain.
    pub retry: RetryPolicy,
    /// Whether to try degraded chain variants after the retry budget
    /// is exhausted.
    pub degraded_mode: bool,
    /// Worker count for [`Self::run_batch`]'s bounded pool; `0` means
    /// the executor default (`TELEIOS_THREADS` env override, else
    /// available parallelism).
    pub workers: usize,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor::new(RetryPolicy::default())
    }
}

impl Supervisor {
    /// Supervisor with the given retry policy and degraded mode on.
    pub fn new(retry: RetryPolicy) -> Supervisor {
        Supervisor { retry, degraded_mode: true, workers: 0 }
    }

    /// The same supervisor with degraded-mode fallbacks disabled:
    /// scenes either succeed with the primary chain or fail.
    pub fn without_degraded_mode(mut self) -> Supervisor {
        self.degraded_mode = false;
        self
    }

    /// The same supervisor with an explicit batch worker count.
    pub fn with_workers(mut self, workers: usize) -> Supervisor {
        self.workers = workers;
        self
    }

    /// One isolated attempt: panics become errors.
    fn attempt(
        catalog: &Catalog,
        chain: &ProcessingChain,
        product_id: &str,
        raster: &GeoRaster,
    ) -> std::result::Result<ChainOutput, String> {
        match catch_unwind(AssertUnwindSafe(|| chain.run(catalog, product_id, raster))) {
            Ok(Ok(output)) => Ok(output),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(format!(
                "chain worker panicked on {product_id}: {}",
                panic_message(payload.as_ref())
            )),
        }
    }

    /// Supervise one scene: retry the primary chain within the budget,
    /// then walk the degraded ladder. Never panics, never aborts.
    pub fn run_scene(
        &self,
        catalog: &Catalog,
        chain: &ProcessingChain,
        product_id: &str,
        raster: &GeoRaster,
    ) -> SceneReport {
        let mut attempts = 0u32;
        let mut last_error = String::new();
        for try_n in 0..=self.retry.max_retries {
            attempts += 1;
            match Self::attempt(catalog, chain, product_id, raster) {
                Ok(output) => {
                    let outcome = if try_n == 0 {
                        SceneOutcome::Ok
                    } else {
                        SceneOutcome::Retried(try_n)
                    };
                    return SceneReport {
                        product_id: product_id.to_string(),
                        outcome,
                        output: Some(output),
                        chain_id: chain.id(),
                        attempts,
                    };
                }
                Err(message) => {
                    last_error = message;
                    if try_n < self.retry.max_retries {
                        let pause = self.retry.backoff_for(try_n + 1);
                        if !pause.is_zero() {
                            thread::sleep(pause);
                        }
                    }
                }
            }
        }
        if self.degraded_mode {
            let from = chain.id();
            for (label, variant) in degraded_variants(chain) {
                attempts += 1;
                match Self::attempt(catalog, &variant, product_id, raster) {
                    Ok(output) => {
                        return SceneReport {
                            product_id: product_id.to_string(),
                            outcome: SceneOutcome::Degraded { from, to: label.clone() },
                            output: Some(output),
                            chain_id: label,
                            attempts,
                        };
                    }
                    Err(message) => last_error = message,
                }
            }
        }
        SceneReport {
            product_id: product_id.to_string(),
            outcome: SceneOutcome::Failed { reason: last_error },
            output: None,
            chain_id: chain.id(),
            attempts,
        }
    }

    /// Supervise a batch on a bounded worker pool: `workers` threads
    /// (the executor default when zero) drain a task queue capped at
    /// `2 × workers` entries, so memory for in-flight scenes stays
    /// bounded no matter how large the archive is. Reports come back
    /// in input order; a lost scene never takes the batch or the
    /// process down.
    pub fn run_batch(
        &self,
        catalog: &Catalog,
        chain: &ProcessingChain,
        scenes: &[(String, GeoRaster)],
    ) -> BatchReport {
        let t0 = Instant::now();
        let workers = if self.workers == 0 { default_threads() } else { self.workers };
        let pool = WorkerPool::with_threads(workers);
        let queue_capacity = 2 * workers.max(1);
        let tasks: Vec<_> = scenes
            .iter()
            .map(|(id, raster)| {
                let supervisor = *self;
                let chain = chain.clone();
                let catalog = catalog.clone();
                move || supervisor.run_scene(&catalog, &chain, id, raster)
            })
            .collect();
        let (outcomes, pool_stats) = pool.try_run_bounded(queue_capacity, tasks);
        let scenes = outcomes
            .into_iter()
            .zip(scenes)
            .map(|(outcome, (id, _))| {
                // Unreachable in practice (run_scene catches
                // everything), but still: a worker panic degrades to a
                // per-scene failure, never an abort.
                outcome.unwrap_or_else(|payload| SceneReport {
                    product_id: id.clone(),
                    outcome: SceneOutcome::Failed {
                        reason: format!(
                            "supervisor worker for {id} could not be joined: {}",
                            panic_message(payload.as_ref())
                        ),
                    },
                    output: None,
                    chain_id: chain.id(),
                    attempts: 0,
                })
            })
            .collect::<Vec<SceneReport>>();
        BatchReport { scenes, wall_clock: t0.elapsed(), pool: pool_stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultPlan};
    use std::sync::Arc;
    use teleios_geo::{Coord, Envelope};
    use teleios_ingest::raster::GeoTransform;
    use teleios_ingest::seviri::{generate, FireEvent, SceneSpec, SurfaceKind};

    fn bbox() -> Envelope {
        Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
    }

    fn surface(c: Coord) -> SurfaceKind {
        if c.x < 23.0 {
            SurfaceKind::Forest
        } else {
            SurfaceKind::Sea
        }
    }

    fn scenes(n: usize) -> Vec<(String, GeoRaster)> {
        (0..n)
            .map(|i| {
                let mut spec = SceneSpec::new(700 + i as u64, 32, 32, bbox());
                spec.cloud_cover = 0.0;
                spec.glint_rate = 0.0;
                spec.fires.push(FireEvent {
                    center: Coord::new(21.6, 37.4),
                    radius: 0.08,
                    intensity: 0.9,
                });
                (format!("sup{i}"), generate(&spec, &surface).unwrap().raster)
            })
            .collect()
    }

    fn contextual_gridded() -> ProcessingChain {
        let mut chain = ProcessingChain::operational();
        chain.classifier = HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 };
        chain.target_grid = Some((GeoTransform::fit(&bbox(), 32, 32), 32, 32));
        chain
    }

    #[test]
    fn healthy_batch_is_all_ok() {
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let batch = scenes(4);
        let report = supervisor.run_batch(&Catalog::new(), &contextual_gridded(), &batch);
        assert_eq!(report.scenes.len(), 4);
        assert_eq!(report.ok_count(), 4);
        assert_eq!(report.failed_count(), 0);
        for scene in &report.scenes {
            assert_eq!(scene.attempts, 1);
            assert_eq!(scene.chain_id, "contextual-318-n2");
            assert!(scene.output.is_some());
        }
        // Input order is preserved.
        let ids: Vec<&str> = report.scenes.iter().map(|s| s.product_id.as_str()).collect();
        assert_eq!(ids, vec!["sup0", "sup1", "sup2", "sup3"]);
    }

    #[test]
    fn transient_fault_is_retried_within_budget() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::Transient { failures: 2 });
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(2));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(3));
        assert_eq!(report.report_for("sup1").unwrap().outcome, SceneOutcome::Retried(2));
        assert_eq!(report.report_for("sup1").unwrap().attempts, 3);
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.failed_count(), 0);
    }

    #[test]
    fn transient_fault_beyond_budget_fails_without_degraded_help() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::Transient { failures: 5 });
        // The threshold chain has no degraded ladder, so the scene fails.
        let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(1));
        let scene = report.report_for("sup0").unwrap();
        assert!(matches!(&scene.outcome, SceneOutcome::Failed { reason } if reason.contains("transient")));
        assert!(scene.output.is_none());
    }

    #[test]
    fn classifier_fault_degrades_to_threshold() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::ClassifierError);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(2));
        let scene = report.report_for("sup1").unwrap();
        assert_eq!(
            scene.outcome,
            SceneOutcome::Degraded {
                from: "contextual-318-n2".to_string(),
                to: "threshold-318".to_string()
            }
        );
        assert_eq!(scene.chain_id, "threshold-318");
        assert!(scene.output.is_some());
        // 2 primary attempts + 1 degraded.
        assert_eq!(scene.attempts, 3);
        assert_eq!(report.report_for("sup0").unwrap().outcome, SceneOutcome::Ok);
    }

    #[test]
    fn georef_fault_degrades_to_native_grid() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::GeorefError);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(1));
        let scene = report.report_for("sup0").unwrap();
        assert_eq!(
            scene.outcome,
            SceneOutcome::Degraded {
                from: "contextual-318-n2".to_string(),
                to: "threshold-318+native-grid".to_string()
            }
        );
        // The product is on the scene's native 32x32 grid.
        let output = scene.output.as_ref().unwrap();
        assert_eq!(output.raster.rows(), 32);
        // 1 primary + threshold variant (also faulted at georef) + native grid.
        assert_eq!(scene.attempts, 3);
    }

    #[test]
    fn worker_panic_fails_one_scene_only() {
        let mut plan = FaultPlan::new();
        plan.inject("sup1", Fault::WorkerPanic);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(3));
        let scene = report.report_for("sup1").unwrap();
        assert!(matches!(&scene.outcome, SceneOutcome::Failed { reason } if reason.contains("panicked")));
        // 2 primary attempts + 2 degraded variants, all panicking.
        assert_eq!(scene.attempts, 4);
        assert_eq!(report.succeeded_count(), 2);
        assert_eq!(report.failed_count(), 1);
    }

    #[test]
    fn degraded_mode_can_be_disabled() {
        let mut plan = FaultPlan::new();
        plan.inject("sup0", Fault::ClassifierError);
        let chain = contextual_gridded().with_stage_hook(plan.chain_hook());
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(1)).without_degraded_mode();
        let report = supervisor.run_batch(&Catalog::new(), &chain, &scenes(1));
        assert!(matches!(
            report.report_for("sup0").unwrap().outcome,
            SceneOutcome::Failed { .. }
        ));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(10),
            multiplier_percent: 200,
            max_backoff: Duration::from_millis(35),
        };
        assert_eq!(policy.backoff_for(0), Duration::ZERO);
        assert_eq!(policy.backoff_for(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_for(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_for(3), Duration::from_millis(35)); // capped from 40
        assert_eq!(RetryPolicy::no_backoff(3).backoff_for(2), Duration::ZERO);
    }

    #[test]
    fn summary_mentions_every_bucket() {
        let supervisor = Supervisor::new(RetryPolicy::no_backoff(0));
        let report = supervisor.run_batch(&Catalog::new(), &ProcessingChain::operational(), &scenes(2));
        let line = report.summary();
        assert!(line.contains("2 scenes"));
        assert!(line.contains("2 ok"));
        assert!(line.contains("0 failed"));
    }

    #[test]
    fn degraded_ladder_shape() {
        let ladder = degraded_variants(&contextual_gridded());
        assert_eq!(ladder.len(), 2);
        assert_eq!(ladder[0].0, "threshold-318");
        assert_eq!(ladder[1].0, "threshold-318+native-grid");
        assert!(ladder[1].1.target_grid.is_none());
        // A plain operational chain has nothing to degrade to.
        assert!(degraded_variants(&ProcessingChain::operational()).is_empty());
    }
}
