//! Batch supervision on the bounded worker pool.
//!
//! `Supervisor::run_batch` used to spawn one thread per scene; it now
//! drains the batch through a fixed-size `teleios_exec::WorkerPool`
//! behind a bounded task queue. These tests pin the new guarantees: a
//! 200-scene batch on a 4-worker pool never exceeds the queue bound,
//! keeps input order, and loses no healthy scene — with or without
//! poisoned scenes in the mix.

use teleios_geo::{Coord, Envelope};
use teleios_ingest::raster::GeoRaster;
use teleios_ingest::seviri::{generate, FireEvent, SceneSpec, SurfaceKind};
use teleios_monet::Catalog;
use teleios_noa::ProcessingChain;
use teleios_resilience::{Fault, FaultPlan, RetryPolicy, SceneOutcome, Supervisor};

fn bbox() -> Envelope {
    Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
}

fn scenes(n: usize) -> Vec<(String, GeoRaster)> {
    (0..n)
        .map(|i| {
            let mut spec = SceneSpec::new(900 + i as u64, 16, 16, bbox());
            spec.cloud_cover = 0.0;
            spec.glint_rate = 0.0;
            spec.fires.push(FireEvent {
                center: Coord::new(21.6, 37.4),
                radius: 0.2,
                intensity: 0.9,
            });
            (format!("batch{i:03}"), generate(&spec, &|_| SurfaceKind::Forest).unwrap().raster)
        })
        .collect()
}

#[test]
fn large_batch_on_small_pool_respects_queue_bound() {
    let batch = scenes(200);
    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1)).with_workers(4);
    let report = supervisor.run_batch(&Catalog::new(), &ProcessingChain::operational(), &batch);

    assert_eq!(report.scenes.len(), 200);
    assert_eq!(report.ok_count(), 200);
    assert_eq!(report.failed_count(), 0);
    // Input order is preserved across the pool.
    for (i, scene) in report.scenes.iter().enumerate() {
        assert_eq!(scene.product_id, format!("batch{i:03}"));
    }
    // Pool shape: 4 workers, queue capped at 2× workers, and the
    // producer never stacked more than the cap in flight.
    assert_eq!(report.pool.workers, 4);
    assert_eq!(report.pool.queue_capacity, 8);
    assert!(
        report.pool.max_queue_depth <= report.pool.queue_capacity,
        "queue depth {} exceeded capacity {}",
        report.pool.max_queue_depth,
        report.pool.queue_capacity
    );
}

#[test]
fn poisoned_scenes_on_bounded_pool_lose_no_healthy_scene() {
    let batch = scenes(40);
    let mut plan = FaultPlan::new();
    plan.inject("batch007", Fault::WorkerPanic).inject("batch023", Fault::WorkerPanic);
    let chain = ProcessingChain::operational().with_stage_hook(plan.chain_hook());
    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1)).with_workers(4);
    let report = supervisor.run_batch(&Catalog::new(), &chain, &batch);

    assert_eq!(report.scenes.len(), 40);
    assert_eq!(report.failed_count(), 2);
    assert_eq!(report.ok_count(), 38);
    for scene in &report.scenes {
        let poisoned = scene.product_id == "batch007" || scene.product_id == "batch023";
        match (&scene.outcome, poisoned) {
            (SceneOutcome::Failed { .. }, true) | (SceneOutcome::Ok, false) => {}
            (outcome, _) => {
                panic!("scene {} had unexpected outcome {outcome:?}", scene.product_id)
            }
        }
    }
}

#[test]
fn default_worker_count_follows_executor_default() {
    let batch = scenes(3);
    // workers = 0 delegates to the executor default
    // (`TELEIOS_THREADS` / available parallelism), which is ≥ 1 and
    // clamped to the batch size by the pool.
    let supervisor = Supervisor::new(RetryPolicy::no_backoff(1));
    let report = supervisor.run_batch(&Catalog::new(), &ProcessingChain::operational(), &batch);
    assert_eq!(report.ok_count(), 3);
    assert!(report.pool.workers >= 1, "pool ran with no workers");
    assert!(report.pool.max_queue_depth <= report.pool.queue_capacity);
}
