#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-noa — the NOA fire-monitoring application
//!
//! The National Observatory of Athens real-time fire hotspot detection
//! service, the driving application of the TELEIOS demo (paper §4). The
//! processing chain has five modules: *(a)* ingestion, *(b)* cropping,
//! *(c)* georeferencing, *(d)* classification, *(e)* generation of
//! shapefiles containing the geometries of hotspots — implemented here
//! over the array store, with a post-processing **refinement** step that
//! improves the thematic accuracy of the products by comparing them with
//! geospatial linked data through stSPARQL updates (demo scenario 2),
//! and a **rapid-mapping** service that assembles fire maps enriched
//! with linked open data.
//!
//! Modules:
//!
//! * [`hotspot`] — classification submodules (fixed threshold,
//!   adaptive threshold, contextual) — the interchangeable module (d),
//! * [`shapefile`] — connected-component dissolve and exact rectilinear
//!   polygonization of hotspot masks — module (e),
//! * [`chain`] — the orchestrated five-module chain with per-stage
//!   timings (experiment E1),
//! * [`refine`] — the stSPARQL refinement of scenario 2 (experiment E7),
//! * [`burnt`] — burnt-area (fire scar) products accumulated over an
//!   event, with stRDF valid-time periods,
//! * [`accuracy`] — precision / recall / F1 scoring against ground truth,
//! * [`firemap`] — fire-map generation from linked-data layers (E10).

pub mod accuracy;
pub mod burnt;
pub mod chain;
pub mod firemap;
pub mod hotspot;
pub mod refine;
pub mod shapefile;

pub use chain::{ChainOutput, ChainStage, ProcessingChain, StageHook};
pub use hotspot::HotspotClassifier;
