//! Product refinement via stSPARQL updates (demo scenario 2).
//!
//! The MSG/SEVIRI sensor's low spatial resolution makes the hotspot
//! shapefiles include detections that are inconsistent with auxiliary
//! geospatial data — most visibly, "hotspots" over the sea (sun glint,
//! mixed coastal pixels). The refinement step publishes the shapefiles
//! as stRDF and runs `DELETE/INSERT ... WHERE` statements comparing them
//! with coastline linked data, reclassifying the inconsistent ones.

use crate::shapefile::HotspotFeature;
use teleios_geo::algorithm::predicates::polygon_covers_coord;
use teleios_geo::geometry::Polygon;
use teleios_ingest::raster::GeoTransform;
use teleios_monet::array::NdArray;
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::{noa, strdf};
use teleios_strabon::{Strabon, StrabonError};

/// Class given to refuted detections.
pub const REFUTED_HOTSPOT: &str =
    "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#RefutedHotspot";

/// IRI of one hotspot feature of a product.
pub fn hotspot_iri(product_id: &str, feature_id: usize) -> Term {
    Term::iri(format!("http://teleios.di.uoa.gr/products/{product_id}/hotspot/{feature_id}"))
}

/// Publish hotspot features as stRDF (the shapefile-to-RDF
/// transformation of scenario 2). Returns triples added.
pub fn publish_hotspots(
    features: &[HotspotFeature],
    product_id: &str,
    chain_id: &str,
    db: &mut Strabon,
) -> usize {
    let mut n = 0;
    let type_p = Term::iri(teleios_rdf::vocab::rdf::TYPE);
    let geom_p = Term::iri(strdf::HAS_GEOMETRY);
    let derived_p = Term::iri(noa::IS_DERIVED_FROM);
    let chain_p = Term::iri(noa::PRODUCED_BY_CHAIN);
    let conf_p = Term::iri(noa::HAS_CONFIDENCE);
    let product = Term::iri(format!("http://teleios.di.uoa.gr/products/{product_id}"));
    let chain = Term::iri(format!("http://teleios.di.uoa.gr/chains/{chain_id}"));
    for f in features {
        let s = hotspot_iri(product_id, f.id);
        n += db.insert(&s, &type_p, &Term::iri(noa::HOTSPOT)) as usize;
        n += db.insert(&s, &geom_p, &geometry_literal_wgs84(&f.geometry())) as usize;
        n += db.insert(&s, &derived_p, &product) as usize;
        n += db.insert(&s, &chain_p, &chain) as usize;
        // Confidence scales with component size (bigger blobs are more
        // certain at this resolution).
        let conf = (f.cells as f64 / (f.cells as f64 + 2.0)).min(0.99);
        n += db.insert(&s, &conf_p, &Term::double(conf)) as usize;
    }
    n
}

/// The two stSPARQL updates of scenario 2 (the demo shows users exactly
/// these statements):
///
/// 1. hotspots entirely **disjoint** from the landmass are inconsistent
///    with the coastline data and are reclassified as refuted;
/// 2. hotspots **crossing** the coastline keep only the parts of their
///    geometries on land — "through this refinement step we isolate
///    parts of the geometries of the hotspots that are inconsistent
///    with the geospatial data available" (paper §4).
pub fn refinement_updates(landmass_wkt: &Term) -> [String; 2] {
    refinement_updates_scoped(landmass_wkt, None)
}

/// The scenario-2 updates, optionally restricted to the hotspots of one
/// product (`?h noa:isDerivedFrom <product>`). `None` refines every
/// hotspot in the store, exactly like [`refinement_updates`];
/// `Some(product_id)` is what supervised refinement uses to keep each
/// product's pass isolated from the others.
pub fn refinement_updates_scoped(
    landmass_wkt: &Term,
    product_id: Option<&str>,
) -> [String; 2] {
    let scope = match product_id {
        Some(pid) => format!(
            " ; noa:isDerivedFrom <http://teleios.di.uoa.gr/products/{pid}>"
        ),
        None => String::new(),
    };
    let refute = format!(
        "PREFIX noa: <{noa_ns}>\n\
         PREFIX strdf: <{strdf_ns}>\n\
         DELETE {{ ?h a noa:Hotspot }}\n\
         INSERT {{ ?h a <{refuted}> }}\n\
         WHERE {{\n\
           ?h a noa:Hotspot{scope} ; strdf:hasGeometry ?g .\n\
           FILTER(strdf:disjoint(?g, {lit}))\n\
         }}",
        noa_ns = noa::NS,
        strdf_ns = strdf::NS,
        refuted = REFUTED_HOTSPOT,
        scope = scope,
        lit = landmass_wkt,
    );
    let clip = format!(
        "PREFIX noa: <{noa_ns}>\n\
         PREFIX strdf: <{strdf_ns}>\n\
         DELETE {{ ?h strdf:hasGeometry ?g }}\n\
         INSERT {{ ?h strdf:hasGeometry ?clipped }}\n\
         WHERE {{\n\
           ?h a noa:Hotspot{scope} ; strdf:hasGeometry ?g .\n\
           FILTER(!strdf:within(?g, {lit}))\n\
           BIND(strdf:intersection(?g, {lit}) AS ?clipped)\n\
         }}",
        noa_ns = noa::NS,
        strdf_ns = strdf::NS,
        scope = scope,
        lit = landmass_wkt,
    );
    [refute, clip]
}

/// Backwards-compatible single-statement view (the refute step).
pub fn refinement_update(landmass_wkt: &Term) -> String {
    let [refute, _] = refinement_updates(landmass_wkt);
    refute
}

/// Outcome of a refinement pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineStats {
    /// Hotspots before refinement.
    pub before: usize,
    /// Hotspots surviving.
    pub kept: usize,
    /// Hotspots reclassified as refuted.
    pub refuted: usize,
    /// Hotspots whose geometry was clipped to the landmass.
    pub clipped: usize,
}

/// Execute the refinement against a landmass literal.
pub fn refine_against_landmass(
    db: &mut Strabon,
    landmass_wkt: &Term,
) -> Result<RefineStats, StrabonError> {
    let count = |db: &mut Strabon, class: &str| -> Result<usize, StrabonError> {
        let sols = db.query(&format!(
            "SELECT ?h WHERE {{ ?h a <{class}> }}"
        ))?;
        Ok(sols.len())
    };
    let before = count(db, noa::HOTSPOT)?;
    let [refute, clip] = refinement_updates(landmass_wkt);
    db.update(&refute)?;
    // Each clipped hotspot contributes one delete plus one insert.
    let clipped = db.update(&clip)? / 2;
    let kept = count(db, noa::HOTSPOT)?;
    let refuted = count(db, REFUTED_HOTSPOT)?;
    Ok(RefineStats { before, kept, refuted, clipped })
}

/// Execute the refinement for one product only: the scenario-2 updates
/// scoped by `noa:isDerivedFrom`, with the before/after counts equally
/// scoped. Other products' hotspots are untouched, so a supervisor can
/// run this per product and keep a poisoned product's failure isolated.
pub fn refine_product_against_landmass(
    db: &mut Strabon,
    landmass_wkt: &Term,
    product_id: &str,
) -> Result<RefineStats, StrabonError> {
    let count = |db: &mut Strabon, class: &str| -> Result<usize, StrabonError> {
        let sols = db.query(&format!(
            "PREFIX noa: <{}>\n\
             SELECT ?h WHERE {{ ?h a <{class}> ; \
             noa:isDerivedFrom <http://teleios.di.uoa.gr/products/{product_id}> }}",
            noa::NS,
        ))?;
        Ok(sols.len())
    };
    let before = count(db, noa::HOTSPOT)?;
    let [refute, clip] = refinement_updates_scoped(landmass_wkt, Some(product_id));
    db.update(&refute)?;
    // Each clipped hotspot contributes one delete plus one insert.
    let clipped = db.update(&clip)? / 2;
    let kept = count(db, noa::HOTSPOT)?;
    let refuted = count(db, REFUTED_HOTSPOT)?;
    Ok(RefineStats { before, kept, refuted, clipped })
}

/// Rasterize features back to a mask (pixel centre covered by any
/// feature). Used to score refined products against ground truth (E7).
pub fn features_to_mask(
    features: &[&Polygon],
    geo: &GeoTransform,
    rows: usize,
    cols: usize,
) -> NdArray {
    let mut out = NdArray::zeros(vec![
        teleios_monet::array::Dim::new("y", rows),
        teleios_monet::array::Dim::new("x", cols),
    ]);
    for poly in features {
        let env = poly.envelope();
        // Limit the scan to the feature's pixel window.
        for r in 0..rows {
            for c in 0..cols {
                let center = geo.pixel_center(r, c);
                if env.contains_coord(center) && polygon_covers_coord(poly, center) {
                    // r/c are bounded by the rows/cols the array was
                    // built with; a failed set is unreachable.
                    // teleios-lint: allow(swallowed-result)
                    let _ = out.set(&[r, c], 1.0);
                }
            }
        }
    }
    out
}

/// Fetch the geometries of surviving hotspots of a product.
pub fn surviving_hotspot_geometries(
    db: &mut Strabon,
    product_id: &str,
) -> Result<Vec<Polygon>, StrabonError> {
    let product = format!("http://teleios.di.uoa.gr/products/{product_id}");
    let sols = db.query(&format!(
        "PREFIX noa: <{}>\nPREFIX strdf: <{}>\n\
         SELECT ?g WHERE {{ ?h a noa:Hotspot ; noa:isDerivedFrom <{product}> ; strdf:hasGeometry ?g }}",
        noa::NS,
        strdf::NS,
    ))?;
    let mut out = Vec::with_capacity(sols.len());
    for row in &sols.rows {
        if let Some(term) = &row[0] {
            match teleios_rdf::strdf::parse_geometry(term) {
                Ok((teleios_geo::Geometry::Polygon(p), _)) => out.push(p),
                // Clipped hotspots are MultiPolygon literals.
                Ok((teleios_geo::Geometry::MultiPolygon(ps), _)) => out.extend(ps),
                _ => {}
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::{Coord, Envelope};
    use teleios_monet::array::NdArray;

    fn geo() -> GeoTransform {
        GeoTransform { origin_x: 0.0, origin_y: 10.0, pixel_w: 1.0, pixel_h: 1.0 }
    }

    /// Two features: one inside the "land" square, one outside.
    fn features() -> Vec<HotspotFeature> {
        let mut m = NdArray::matrix(10, 10, vec![0.0; 100]).unwrap();
        m.set(&[2, 2], 1.0).unwrap(); // x=2..3, y=7..8 (on land)
        m.set(&[8, 8], 1.0).unwrap(); // x=8..9, y=1..2 (off land)
        crate::shapefile::mask_to_features(&m, &geo()).unwrap()
    }

    fn landmass() -> Term {
        // Land = [0,6] x [4,10].
        geometry_literal_wgs84(&teleios_geo::Geometry::Polygon(Polygon::from_envelope(
            &Envelope::new(Coord::new(0.0, 4.0), Coord::new(6.0, 10.0)),
        )))
    }

    #[test]
    fn publish_creates_five_triples_per_feature() {
        let mut db = Strabon::new();
        let n = publish_hotspots(&features(), "p1", "threshold-318", &mut db);
        assert_eq!(n, 10);
    }

    #[test]
    fn refinement_refutes_sea_hotspots() {
        let mut db = Strabon::new();
        publish_hotspots(&features(), "p1", "threshold-318", &mut db);
        let stats = refine_against_landmass(&mut db, &landmass()).unwrap();
        assert_eq!(stats.before, 2);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.refuted, 1);
        // The surviving hotspot is the land one.
        let survivors = surviving_hotspot_geometries(&mut db, "p1").unwrap();
        assert_eq!(survivors.len(), 1);
        assert!(survivors[0].envelope().contains_coord(Coord::new(2.5, 7.5)));
    }

    #[test]
    fn refinement_is_idempotent() {
        let mut db = Strabon::new();
        publish_hotspots(&features(), "p1", "threshold-318", &mut db);
        refine_against_landmass(&mut db, &landmass()).unwrap();
        let second = refine_against_landmass(&mut db, &landmass()).unwrap();
        assert_eq!(second.refuted, 1); // still one refuted from before
        assert_eq!(second.kept, 1);
    }

    #[test]
    fn update_statements_shapes() {
        let [refute, clip] = refinement_updates(&landmass());
        assert!(refute.contains("strdf:disjoint"));
        assert!(refute.contains("RefutedHotspot"));
        assert!(clip.contains("strdf:intersection"));
        assert!(clip.contains("BIND"));
        assert_eq!(refinement_update(&landmass()), refute);
    }

    #[test]
    fn scoped_refinement_leaves_other_products_alone() {
        let mut db = Strabon::new();
        publish_hotspots(&features(), "p1", "threshold-318", &mut db);
        publish_hotspots(&features(), "p2", "threshold-318", &mut db);
        let stats = refine_product_against_landmass(&mut db, &landmass(), "p1").unwrap();
        assert_eq!(stats.before, 2);
        assert_eq!(stats.kept, 1);
        assert_eq!(stats.refuted, 1);
        // p2 is untouched: both of its hotspots still classified.
        let p2 = db
            .query(&format!(
                "PREFIX noa: <{}> SELECT ?h WHERE {{ ?h a noa:Hotspot ; \
                 noa:isDerivedFrom <http://teleios.di.uoa.gr/products/p2> }}",
                noa::NS
            ))
            .unwrap();
        assert_eq!(p2.len(), 2);
    }

    #[test]
    fn per_product_passes_add_up_to_the_global_pass() {
        let mut global = Strabon::new();
        publish_hotspots(&features(), "p1", "threshold-318", &mut global);
        publish_hotspots(&features(), "p2", "threshold-318", &mut global);
        let g = refine_against_landmass(&mut global, &landmass()).unwrap();

        let mut scoped = Strabon::new();
        publish_hotspots(&features(), "p1", "threshold-318", &mut scoped);
        publish_hotspots(&features(), "p2", "threshold-318", &mut scoped);
        let s1 = refine_product_against_landmass(&mut scoped, &landmass(), "p1").unwrap();
        let s2 = refine_product_against_landmass(&mut scoped, &landmass(), "p2").unwrap();
        assert_eq!(g.before, s1.before + s2.before);
        assert_eq!(g.kept, s1.kept + s2.kept);
        assert_eq!(g.refuted, s1.refuted + s2.refuted);
        assert_eq!(g.clipped, s1.clipped + s2.clipped);
    }

    #[test]
    fn scoped_updates_carry_the_product_constraint() {
        let [refute, clip] = refinement_updates_scoped(&landmass(), Some("p9"));
        assert!(refute.contains("noa:isDerivedFrom <http://teleios.di.uoa.gr/products/p9>"));
        assert!(clip.contains("noa:isDerivedFrom <http://teleios.di.uoa.gr/products/p9>"));
        let unscoped = refinement_updates_scoped(&landmass(), None);
        assert_eq!(unscoped, refinement_updates(&landmass()));
        assert!(!unscoped[0].contains("isDerivedFrom"));
    }

    #[test]
    fn features_to_mask_roundtrip() {
        let fs = features();
        let polys: Vec<&Polygon> = fs.iter().map(|f| &f.polygon).collect();
        let mask = features_to_mask(&polys, &geo(), 10, 10);
        assert_eq!(mask.sum(), 2.0);
        assert_eq!(mask.get(&[2, 2]).unwrap(), 1.0);
        assert_eq!(mask.get(&[8, 8]).unwrap(), 1.0);
        assert_eq!(mask.get(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn confidence_grows_with_size() {
        let mut m = NdArray::matrix(10, 10, vec![0.0; 100]).unwrap();
        m.set(&[1, 1], 1.0).unwrap();
        for r in 4..8 {
            for c in 4..8 {
                m.set(&[r, c], 1.0).unwrap();
            }
        }
        let fs = crate::shapefile::mask_to_features(&m, &geo()).unwrap();
        let mut db = Strabon::new();
        publish_hotspots(&fs, "p", "c", &mut db);
        let sols = db
            .query(&format!(
                "PREFIX noa: <{}> SELECT ?c WHERE {{ ?h noa:hasConfidence ?c }} ORDER BY ?c",
                noa::NS
            ))
            .unwrap();
        assert_eq!(sols.len(), 2);
        let lo = sols.get(0, "c").unwrap().as_f64().unwrap();
        let hi = sols.get(1, "c").unwrap().as_f64().unwrap();
        assert!(lo < hi);
    }
}
