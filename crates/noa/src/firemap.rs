//! Rapid mapping: automatic fire-map generation from linked data.
//!
//! "The automatic generation of fire maps enriched with relevant
//! geo-information available as open linked data is made possible with
//! the use of a series of stSPARQL queries and the visualization of the
//! results" (paper §4). A [`FireMap`] is the queryable product of that
//! series: one layer per linked dataset, restricted to the mapped
//! region, plus the detected hotspots.

use teleios_geo::{Coord, Envelope, Geometry};
use teleios_geo::geometry::{LineString, Polygon};
use teleios_rdf::strdf::{geometry_literal_wgs84, parse_geometry};
use teleios_rdf::vocab::{linked, noa};
use teleios_strabon::{Strabon, StrabonError};

/// One thematic layer of the map.
#[derive(Debug, Clone)]
pub struct MapLayer {
    /// Layer name (e.g. `hotspots`, `places`, `roads`).
    pub name: String,
    /// Features: geometry plus display label.
    pub features: Vec<(Geometry, String)>,
}

/// A generated fire map.
#[derive(Debug, Clone)]
pub struct FireMap {
    /// Mapped region.
    pub region: Envelope,
    /// Layers in drawing order (background first).
    pub layers: Vec<MapLayer>,
}

impl FireMap {
    /// Layer by name.
    pub fn layer(&self, name: &str) -> Option<&MapLayer> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Total feature count.
    pub fn num_features(&self) -> usize {
        self.layers.iter().map(|l| l.features.len()).sum()
    }

    /// GeoJSON FeatureCollection rendering — what a rapid-mapping GIS
    /// client ingests. Layers become a `layer` property on each feature.
    pub fn to_geojson(&self) -> String {
        use serde_json::{json, Value};
        let features: Vec<Value> = self
            .layers
            .iter()
            .flat_map(|layer| {
                layer.features.iter().map(move |(g, label)| {
                    json!({
                        "type": "Feature",
                        "properties": { "layer": layer.name, "label": label },
                        "geometry": geometry_to_geojson(g),
                    })
                })
            })
            .collect();
        serde_json::to_string_pretty(&json!({
            "type": "FeatureCollection",
            "bbox": [self.region.min.x, self.region.min.y, self.region.max.x, self.region.max.y],
            "features": features,
        }))
        .unwrap_or_else(|_| String::from("{\"type\":\"FeatureCollection\",\"features\":[]}"))
    }

    /// Text rendering (the demo's "visualization of the results").
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "Fire map [{:.2}, {:.2}] x [{:.2}, {:.2}]\n",
            self.region.min.x, self.region.max.x, self.region.min.y, self.region.max.y
        );
        for layer in &self.layers {
            out.push_str(&format!("  layer {:<12} {} feature(s)\n", layer.name, layer.features.len()));
            for (g, label) in layer.features.iter().take(5) {
                out.push_str(&format!("    - {} [{}]\n", label, g.type_name()));
            }
            if layer.features.len() > 5 {
                out.push_str(&format!("    … {} more\n", layer.features.len() - 5));
            }
        }
        out
    }
}

fn coords_json(coords: &[Coord]) -> serde_json::Value {
    serde_json::Value::Array(
        coords
            .iter()
            .map(|c| serde_json::json!([c.x, c.y]))
            .collect(),
    )
}

fn polygon_rings_json(p: &Polygon) -> serde_json::Value {
    let mut rings = vec![coords_json(p.exterior.coords())];
    rings.extend(p.interiors.iter().map(|r: &LineString| coords_json(r.coords())));
    serde_json::Value::Array(rings)
}

/// Convert a geometry to its GeoJSON `geometry` object.
pub fn geometry_to_geojson(g: &Geometry) -> serde_json::Value {
    use serde_json::json;
    match g {
        Geometry::Point(p) => json!({ "type": "Point", "coordinates": [p.x(), p.y()] }),
        Geometry::LineString(l) => {
            json!({ "type": "LineString", "coordinates": coords_json(l.coords()) })
        }
        Geometry::Polygon(p) => {
            json!({ "type": "Polygon", "coordinates": polygon_rings_json(p) })
        }
        Geometry::MultiPoint(ps) => json!({
            "type": "MultiPoint",
            "coordinates": ps.iter().map(|p| json!([p.x(), p.y()])).collect::<Vec<_>>(),
        }),
        Geometry::MultiLineString(ls) => json!({
            "type": "MultiLineString",
            "coordinates": ls.iter().map(|l| coords_json(l.coords())).collect::<Vec<_>>(),
        }),
        Geometry::MultiPolygon(ps) => json!({
            "type": "MultiPolygon",
            "coordinates": ps.iter().map(polygon_rings_json).collect::<Vec<_>>(),
        }),
        Geometry::GeometryCollection(gs) => json!({
            "type": "GeometryCollection",
            "geometries": gs.iter().map(geometry_to_geojson).collect::<Vec<_>>(),
        }),
    }
}

/// One stSPARQL layer query: features of `class` with geometry
/// intersecting the region.
fn layer_query(class: &str, region_lit: &str, label_pattern: Option<&str>) -> String {
    let label_part = match label_pattern {
        Some(p) => format!("OPTIONAL {{ ?f <{p}> ?label }}"),
        None => String::new(),
    };
    format!(
        "PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>\n\
         SELECT ?f ?g ?label WHERE {{\n\
           ?f a <{class}> ; strdf:hasGeometry ?g .\n\
           {label_part}\n\
           FILTER(strdf:intersects(?g, {region_lit}))\n\
         }}"
    )
}

fn run_layer(
    db: &mut Strabon,
    name: &str,
    class: &str,
    region_lit: &str,
    label_prop: Option<&str>,
) -> Result<MapLayer, StrabonError> {
    let sols = db.query(&layer_query(class, region_lit, label_prop))?;
    let mut features = Vec::with_capacity(sols.len());
    for i in 0..sols.len() {
        let Some(gterm) = sols.get(i, "g") else { continue };
        let Ok((geom, _)) = parse_geometry(gterm) else { continue };
        let label = sols
            .get(i, "label")
            .and_then(|t| t.lexical().map(str::to_string))
            .or_else(|| sols.get(i, "f").and_then(|t| t.as_iri().map(short_iri)))
            .unwrap_or_default();
        features.push((geom, label));
    }
    Ok(MapLayer { name: name.to_string(), features })
}

fn short_iri(iri: &str) -> String {
    iri.rsplit(['/', '#']).next().unwrap_or(iri).to_string()
}

/// Generate the fire map for a region: coastline, land cover, roads,
/// populated places, archaeological sites, and the detected hotspots.
pub fn build_fire_map(db: &mut Strabon, region: &Envelope) -> Result<FireMap, StrabonError> {
    let region_lit =
        geometry_literal_wgs84(&Geometry::Polygon(Polygon::from_envelope(region))).to_string();
    let layers = vec![
        run_layer(
            db,
            "coastline",
            &format!("{}ontology#LandMass", linked::COASTLINE),
            &region_lit,
            None,
        )?,
        run_layer(
            db,
            "landcover",
            &format!("{}ontology#Area", linked::CORINE),
            &region_lit,
            None,
        )?,
        run_layer(db, "roads", &format!("{}Road", linked::LGD), &region_lit, None)?,
        run_layer(
            db,
            "places",
            &format!("{}ontology#PopulatedPlace", linked::GEONAMES),
            &region_lit,
            Some(&format!("{}ontology#name", linked::GEONAMES)),
        )?,
        run_layer(
            db,
            "sites",
            "http://dbpedia.org/ontology/ArchaeologicalSite",
            &region_lit,
            Some("http://www.w3.org/2000/01/rdf-schema#label"),
        )?,
        run_layer(db, "hotspots", noa::HOTSPOT, &region_lit, None)?,
    ];
    Ok(FireMap { region: *region, layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::Coord;
    use teleios_linked::emit;
    use teleios_linked::world::{World, WorldSpec};

    fn db_with_world() -> (Strabon, World) {
        let world = World::generate(WorldSpec::default());
        let mut db = Strabon::new();
        emit::emit_all(&world, db.store_mut());
        (db, world)
    }

    #[test]
    fn map_has_all_layers() {
        let (mut db, world) = db_with_world();
        let map = build_fire_map(&mut db, &world.spec.bbox).unwrap();
        assert_eq!(map.layers.len(), 6);
        assert!(map.layer("coastline").unwrap().features.len() == 1);
        assert!(!map.layer("places").unwrap().features.is_empty());
        assert!(!map.layer("landcover").unwrap().features.is_empty());
        assert!(map.layer("hotspots").unwrap().features.is_empty()); // none published
    }

    #[test]
    fn region_restricts_layers() {
        let (mut db, world) = db_with_world();
        let full = build_fire_map(&mut db, &world.spec.bbox).unwrap();
        // A tiny corner region far from the landmass centre.
        let corner = Envelope::new(world.spec.bbox.min, Coord::new(21.05, 36.05));
        let small = build_fire_map(&mut db, &corner).unwrap();
        assert!(small.num_features() < full.num_features());
    }

    #[test]
    fn place_labels_resolved() {
        let (mut db, world) = db_with_world();
        let map = build_fire_map(&mut db, &world.spec.bbox).unwrap();
        let places = map.layer("places").unwrap();
        assert!(places.features.iter().any(|(_, l)| l.starts_with("City-")));
    }

    #[test]
    fn hotspots_appear_after_publication() {
        let (mut db, world) = db_with_world();
        // Publish one hotspot at the window centre.
        let center = world.spec.bbox.center();
        db.insert(
            &teleios_rdf::term::Term::iri("http://teleios.di.uoa.gr/products/p/hotspot/0"),
            &teleios_rdf::term::Term::iri(teleios_rdf::vocab::rdf::TYPE),
            &teleios_rdf::term::Term::iri(noa::HOTSPOT),
        );
        db.insert(
            &teleios_rdf::term::Term::iri("http://teleios.di.uoa.gr/products/p/hotspot/0"),
            &teleios_rdf::term::Term::iri(teleios_rdf::vocab::strdf::HAS_GEOMETRY),
            &geometry_literal_wgs84(&Geometry::Point(teleios_geo::geometry::Point(center))),
        );
        let map = build_fire_map(&mut db, &world.spec.bbox).unwrap();
        assert_eq!(map.layer("hotspots").unwrap().features.len(), 1);
    }

    #[test]
    fn geojson_rendering_is_valid_json() {
        let (mut db, world) = db_with_world();
        let map = build_fire_map(&mut db, &world.spec.bbox).unwrap();
        let geojson = map.to_geojson();
        let parsed: serde_json::Value = serde_json::from_str(&geojson).unwrap();
        assert_eq!(parsed["type"], "FeatureCollection");
        let features = parsed["features"].as_array().unwrap();
        assert_eq!(features.len(), map.num_features());
        // Every feature has a geometry type and a layer property.
        for f in features {
            assert!(f["geometry"]["type"].is_string());
            assert!(f["properties"]["layer"].is_string());
        }
    }

    #[test]
    fn geometry_to_geojson_shapes() {
        use teleios_geo::wkt;
        let cases = [
            ("POINT (1 2)", "Point"),
            ("LINESTRING (0 0, 1 1)", "LineString"),
            ("POLYGON ((0 0, 1 0, 1 1, 0 0))", "Polygon"),
            ("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))", "MultiPolygon"),
            ("GEOMETRYCOLLECTION (POINT (1 2))", "GeometryCollection"),
        ];
        for (wkt_text, expect) in cases {
            let g = wkt::parse(wkt_text).unwrap();
            let j = geometry_to_geojson(&g);
            assert_eq!(j["type"], expect, "for {wkt_text}");
        }
        // Polygon with a hole has two rings.
        let d = wkt::parse("POLYGON ((0 0, 9 0, 9 9, 0 0), (1 1, 2 1, 2 2, 1 1))").unwrap();
        let j = geometry_to_geojson(&d);
        assert_eq!(j["coordinates"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn text_rendering_mentions_layers() {
        let (mut db, world) = db_with_world();
        let map = build_fire_map(&mut db, &world.spec.bbox).unwrap();
        let text = map.to_text();
        assert!(text.contains("layer places"));
        assert!(text.contains("Fire map"));
    }
}
