//! Burnt-area mapping: accumulating hotspot detections over time.
//!
//! The TELEIOS ontology distinguishes active *fires* from *burned areas*
//! (paper §1: "concepts such as forest fires, flood" / Fig. 1 knowledge
//! discovery). The NOA service derives burnt-area products by
//! accumulating the refined hotspot masks of consecutive acquisitions:
//! a pixel that burned at any time during the event belongs to the scar.

use crate::shapefile::{mask_to_features, HotspotFeature};
use teleios_ingest::raster::GeoTransform;
use teleios_monet::array::NdArray;
use teleios_monet::{DbError, Result};
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::{noa, rdf, strdf};
use teleios_strabon::Strabon;

/// Class IRI of burnt-area products.
pub const BURNT_AREA: &str =
    "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#BurntArea";

/// Accumulate hotspot masks (same shape) into a burnt-area mask: the
/// per-pixel maximum, i.e. "ever detected burning".
pub fn accumulate_masks(masks: &[NdArray]) -> Result<NdArray> {
    let first = masks
        .first()
        .ok_or_else(|| DbError::Execution("no masks to accumulate".into()))?;
    let mut out = first.clone();
    for m in &masks[1..] {
        out = out.zip_map(m, f64::max)?;
    }
    Ok(out)
}

/// Total burnt area in hectares across scar features (WGS 84 inputs).
pub fn total_hectares(features: &[HotspotFeature]) -> f64 {
    features
        .iter()
        .map(|f| teleios_geo::crs::geodesic_area_m2(&f.geometry()))
        .sum::<f64>()
        / 10_000.0
}

/// Dissolve the burnt-area mask into scar polygons.
pub fn burnt_area_features(
    masks: &[NdArray],
    geo: &GeoTransform,
) -> Result<Vec<HotspotFeature>> {
    let acc = accumulate_masks(masks)?;
    mask_to_features(&acc, geo)
}

/// Publish burnt-area features as stRDF, linked to the fire event's
/// period. Returns triples added.
pub fn publish_burnt_area(
    features: &[HotspotFeature],
    event_id: &str,
    period: &teleios_rdf::strdf::Period,
    db: &mut Strabon,
) -> usize {
    let mut n = 0;
    let type_p = Term::iri(rdf::TYPE);
    let geom_p = Term::iri(strdf::HAS_GEOMETRY);
    let time_p = Term::iri(strdf::HAS_VALID_TIME);
    let period_lit = teleios_rdf::strdf::period_literal(period);
    for f in features {
        let s = Term::iri(format!(
            "http://teleios.di.uoa.gr/products/{event_id}/burnt/{}",
            f.id
        ));
        n += db.insert(&s, &type_p, &Term::iri(BURNT_AREA)) as usize;
        n += db.insert(&s, &geom_p, &geometry_literal_wgs84(&f.geometry())) as usize;
        n += db.insert(&s, &time_p, &period_lit) as usize;
        n += db.insert(
            &s,
            &Term::iri(noa::IS_DERIVED_FROM),
            &Term::iri(format!("http://teleios.di.uoa.gr/events/{event_id}")),
        ) as usize;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_rdf::strdf::Period;

    fn geo() -> GeoTransform {
        GeoTransform { origin_x: 0.0, origin_y: 10.0, pixel_w: 1.0, pixel_h: 1.0 }
    }

    fn mask(on: &[(usize, usize)]) -> NdArray {
        let mut m = NdArray::matrix(6, 6, vec![0.0; 36]).unwrap();
        for &(r, c) in on {
            m.set(&[r, c], 1.0).unwrap();
        }
        m
    }

    #[test]
    fn accumulation_is_union() {
        let a = mask(&[(1, 1), (1, 2)]);
        let b = mask(&[(1, 2), (2, 2)]);
        let acc = accumulate_masks(&[a, b]).unwrap();
        assert_eq!(acc.sum(), 3.0);
    }

    #[test]
    fn moving_fire_front_leaves_connected_scar() {
        // The front advances one column per timestep; the scar dissolves
        // into a single feature covering all three.
        let masks = vec![mask(&[(2, 1)]), mask(&[(2, 2)]), mask(&[(2, 3)])];
        let features = burnt_area_features(&masks, &geo()).unwrap();
        assert_eq!(features.len(), 1);
        assert_eq!(features[0].cells, 3);
        assert!((features[0].polygon.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_errors() {
        assert!(accumulate_masks(&[]).is_err());
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = mask(&[(0, 0)]);
        let b = NdArray::matrix(3, 3, vec![0.0; 9]).unwrap();
        assert!(accumulate_masks(&[a, b]).is_err());
    }

    #[test]
    fn hectares_of_degree_scale_scar() {
        // One 1x1-degree cell near the equator: ~1.24e6 hectares.
        let geo_eq = GeoTransform { origin_x: 0.0, origin_y: 1.0, pixel_w: 1.0, pixel_h: 1.0 };
        let m = mask(&[(0, 0)]);
        let features = burnt_area_features(&[m], &geo_eq).unwrap();
        let ha = total_hectares(&features);
        assert!((ha - 1.236e6).abs() / 1.236e6 < 0.02, "ha = {ha}");
    }

    #[test]
    fn publish_carries_valid_time() {
        let masks = vec![mask(&[(2, 1)]), mask(&[(2, 2)])];
        let features = burnt_area_features(&masks, &geo()).unwrap();
        let mut db = Strabon::new();
        let period = Period::new("2007-08-25T10:00:00Z", "2007-08-25T16:00:00Z");
        let n = publish_burnt_area(&features, "fire-42", &period, &mut db);
        assert_eq!(n, features.len() * 4);
        let sols = db
            .query(&format!("SELECT ?b ?t WHERE {{ ?b a <{BURNT_AREA}> . ?b <{}> ?t }}", strdf::HAS_VALID_TIME))
            .unwrap();
        assert_eq!(sols.len(), features.len());
        let t = sols.get(0, "t").unwrap();
        let parsed = teleios_rdf::strdf::parse_period(t).unwrap();
        assert_eq!(parsed, period);
    }
}
