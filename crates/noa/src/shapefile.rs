//! Hotspot shapefile generation (processing-chain module (e)).
//!
//! Positive pixels of the classification mask are dissolved into
//! 4-connected components, and each component is polygonized *exactly*:
//! its boundary edges are chained into rings (CCW exterior, CW holes) in
//! geographic coordinates. The resulting features are what the NOA
//! service distributes as ESRI shapefiles; here they are in-memory
//! geometries ready for stRDF publication.

use std::collections::HashMap;
use teleios_geo::algorithm::area::centroid;
use teleios_geo::geometry::{LineString, Polygon};
use teleios_geo::{Coord, Geometry};
use teleios_ingest::raster::GeoTransform;
use teleios_monet::array::NdArray;
use teleios_monet::{DbError, Result};

/// One dissolved hotspot feature.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotFeature {
    /// Sequential feature id within the product.
    pub id: usize,
    /// The dissolved polygon (may carry holes).
    pub polygon: Polygon,
    /// Number of pixels in the component.
    pub cells: usize,
    /// Centroid of the polygon.
    pub centroid: Coord,
}

impl HotspotFeature {
    /// The feature as a geometry.
    pub fn geometry(&self) -> Geometry {
        Geometry::Polygon(self.polygon.clone())
    }
}

/// Dissolve a binary mask into polygon features using the geotransform
/// for geographic placement.
pub fn mask_to_features(mask: &NdArray, geo: &GeoTransform) -> Result<Vec<HotspotFeature>> {
    if mask.ndim() != 2 {
        return Err(DbError::ShapeMismatch("mask must be 2-D".into()));
    }
    let rows = mask.shape()[0];
    let cols = mask.shape()[1];
    let data = mask.data();
    let at = |r: usize, c: usize| data[r * cols + c] > 0.0;

    // Connected components (4-connectivity).
    let mut component = vec![usize::MAX; rows * cols];
    let mut comp_cells: Vec<Vec<(usize, usize)>> = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if !at(r, c) || component[r * cols + c] != usize::MAX {
                continue;
            }
            let id = comp_cells.len();
            let mut cells = Vec::new();
            let mut stack = vec![(r, c)];
            component[r * cols + c] = id;
            while let Some((cr, cc)) = stack.pop() {
                cells.push((cr, cc));
                let mut push = |nr: usize, nc: usize, stack: &mut Vec<(usize, usize)>| {
                    if at(nr, nc) && component[nr * cols + nc] == usize::MAX {
                        component[nr * cols + nc] = id;
                        stack.push((nr, nc));
                    }
                };
                if cr > 0 {
                    push(cr - 1, cc, &mut stack);
                }
                if cr + 1 < rows {
                    push(cr + 1, cc, &mut stack);
                }
                if cc > 0 {
                    push(cr, cc - 1, &mut stack);
                }
                if cc + 1 < cols {
                    push(cr, cc + 1, &mut stack);
                }
            }
            comp_cells.push(cells);
        }
    }

    // Polygonize each component.
    let mut features = Vec::with_capacity(comp_cells.len());
    for (id, cells) in comp_cells.iter().enumerate() {
        let polygon = polygonize_component(cells, geo)?;
        let center = centroid(&Geometry::Polygon(polygon.clone()))
            .unwrap_or_else(|| polygon.envelope().center());
        features.push(HotspotFeature { id, polygon, cells: cells.len(), centroid: center });
    }
    Ok(features)
}

/// Exact rectilinear polygonization of one cell set.
///
/// Boundary edges are emitted in integer corner coordinates with the
/// interior on the left, then chained into closed rings. The ring with
/// the largest absolute area is the exterior; the rest are holes.
fn polygonize_component(cells: &[(usize, usize)], geo: &GeoTransform) -> Result<Polygon> {
    use std::collections::HashSet;
    let cell_set: HashSet<(i64, i64)> =
        cells.iter().map(|&(r, c)| (r as i64, c as i64)).collect();

    // Directed boundary edges start → end (integer corner coordinates
    // (col, row); y grows downward with row).
    let mut edges: HashMap<(i64, i64), Vec<(i64, i64)>> = HashMap::new();
    let mut add = |from: (i64, i64), to: (i64, i64)| {
        edges.entry(from).or_default().push(to);
    };
    for &(r, c) in &cell_set {
        // South neighbour missing: bottom edge, travelling east.
        if !cell_set.contains(&(r + 1, c)) {
            add((c, r + 1), (c + 1, r + 1));
        }
        // East neighbour missing: right edge, travelling north.
        if !cell_set.contains(&(r, c + 1)) {
            add((c + 1, r + 1), (c + 1, r));
        }
        // North neighbour missing: top edge, travelling west.
        if !cell_set.contains(&(r - 1, c)) {
            add((c + 1, r), (c, r));
        }
        // West neighbour missing: left edge, travelling south.
        if !cell_set.contains(&(r, c - 1)) {
            add((c, r), (c, r + 1));
        }
    }

    // Chain the edges into rings. At pinch corners with two outgoing
    // edges, take the sharpest left turn to keep rings simple.
    let mut rings: Vec<Vec<(i64, i64)>> = Vec::new();
    while let Some((&start, _)) = edges.iter().find(|(_, v)| !v.is_empty()) {
        let mut ring = vec![start];
        let mut current = start;
        let mut incoming: Option<(i64, i64)> = None;
        loop {
            // Every boundary corner has as many outgoing as incoming
            // edges, so the chain can only break on a logic bug — fail
            // the feature instead of panicking the worker.
            let Some(outs) = edges.get_mut(&current).filter(|o| !o.is_empty()) else {
                return Err(teleios_monet::DbError::Execution(format!(
                    "boundary edge chain broke at corner ({}, {})",
                    current.0, current.1
                )));
            };
            let next = if outs.len() == 1 {
                outs.remove(0)
            } else {
                // Pick the leftmost turn relative to the incoming direction.
                let dir = incoming.unwrap_or((1, 0));
                let mut best = 0usize;
                let mut best_score = f64::NEG_INFINITY;
                for (i, &cand) in outs.iter().enumerate() {
                    let v = (cand.0 - current.0, cand.1 - current.1);
                    // Cross/dot in screen coordinates (y down): left turns
                    // have negative cross; invert sign to score them high.
                    let cross = (dir.0 * v.1 - dir.1 * v.0) as f64;
                    let dot = (dir.0 * v.0 + dir.1 * v.1) as f64;
                    let angle = (-cross).atan2(dot);
                    if angle > best_score {
                        best_score = angle;
                        best = i;
                    }
                }
                outs.remove(best)
            };
            incoming = Some((next.0 - current.0, next.1 - current.1));
            current = next;
            if current == start {
                break;
            }
            ring.push(current);
        }
        rings.push(ring);
    }

    // Convert to geographic coordinates, collapsing collinear runs.
    let to_geo = |&(cx, ry): &(i64, i64)| -> Coord {
        Coord::new(
            geo.origin_x + cx as f64 * geo.pixel_w,
            geo.origin_y - ry as f64 * geo.pixel_h,
        )
    };
    let mut geo_rings: Vec<LineString> = rings
        .iter()
        .map(|ring| {
            let mut pts: Vec<Coord> = Vec::with_capacity(ring.len() + 1);
            let n = ring.len();
            for i in 0..n {
                let prev = ring[(i + n - 1) % n];
                let cur = ring[i];
                let next = ring[(i + 1) % n];
                // Keep only direction changes.
                let d1 = (cur.0 - prev.0, cur.1 - prev.1);
                let d2 = (next.0 - cur.0, next.1 - cur.1);
                if d1 != d2 {
                    pts.push(to_geo(&cur));
                }
            }
            let first = pts[0];
            pts.push(first);
            LineString(pts)
        })
        .collect();

    // Largest |area| ring is the exterior.
    let ext_idx = geo_rings
        .iter()
        .enumerate()
        .max_by(|a, b| {
            a.1.signed_area2()
                .abs()
                .partial_cmp(&b.1.signed_area2().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(i, _)| i)
        .ok_or_else(|| DbError::Execution("component produced no rings".into()))?;
    let exterior = geo_rings.remove(ext_idx);
    let mut poly = Polygon::new(exterior, geo_rings);
    poly.normalize();
    Ok(poly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::algorithm::predicates::{locate_point_in_polygon, PointLocation};

    fn geo() -> GeoTransform {
        GeoTransform { origin_x: 0.0, origin_y: 10.0, pixel_w: 1.0, pixel_h: 1.0 }
    }

    fn mask(rows: usize, cols: usize, on: &[(usize, usize)]) -> NdArray {
        let mut m = NdArray::matrix(rows, cols, vec![0.0; rows * cols]).unwrap();
        for &(r, c) in on {
            m.set(&[r, c], 1.0).unwrap();
        }
        m
    }

    #[test]
    fn empty_mask_no_features() {
        let m = mask(4, 4, &[]);
        assert!(mask_to_features(&m, &geo()).unwrap().is_empty());
    }

    #[test]
    fn single_cell_is_unit_square() {
        let m = mask(4, 4, &[(1, 2)]);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cells, 1);
        assert!((f[0].polygon.area() - 1.0).abs() < 1e-12);
        // Cell (1, 2) sits at x in [2,3], y in [8,9] under this transform.
        let env = f[0].polygon.envelope();
        assert_eq!(env.min, Coord::new(2.0, 8.0));
        assert_eq!(env.max, Coord::new(3.0, 9.0));
        assert_eq!(f[0].centroid, Coord::new(2.5, 8.5));
    }

    #[test]
    fn block_dissolves_into_one_polygon() {
        let m = mask(6, 6, &[(1, 1), (1, 2), (2, 1), (2, 2)]);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cells, 4);
        assert!((f[0].polygon.area() - 4.0).abs() < 1e-12);
        // Collinear corner collapse: a 2x2 block is a square (4 corners).
        assert_eq!(f[0].polygon.exterior.len(), 5);
    }

    #[test]
    fn l_shape_polygonizes_exactly() {
        let m = mask(6, 6, &[(1, 1), (2, 1), (3, 1), (3, 2), (3, 3)]);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 1);
        assert!((f[0].polygon.area() - 5.0).abs() < 1e-12);
        assert_eq!(f[0].polygon.exterior.len(), 7); // 6 corners + closure
    }

    #[test]
    fn diagonal_cells_are_separate_components() {
        let m = mask(4, 4, &[(0, 0), (1, 1)]);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn separate_blobs_separate_features() {
        let m = mask(8, 8, &[(1, 1), (1, 2), (6, 6)]);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 2);
        let total: f64 = f.iter().map(|x| x.polygon.area()).sum();
        assert!((total - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ring_with_hole() {
        // A 3x3 ring of cells around an empty centre.
        let on: Vec<(usize, usize)> = (0..3)
            .flat_map(|r| (0..3).map(move |c| (r + 1, c + 1)))
            .filter(|&(r, c)| !(r == 2 && c == 2))
            .collect();
        let m = mask(6, 6, &on);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].polygon.interiors.len(), 1);
        assert!((f[0].polygon.area() - 8.0).abs() < 1e-12);
        // The hole centre is outside the polygon.
        let hole_center = Coord::new(2.5, 7.5); // cell (2,2) centre
        assert_eq!(
            locate_point_in_polygon(hole_center, &f[0].polygon),
            PointLocation::Outside
        );
        // A ring cell centre is inside.
        assert_eq!(
            locate_point_in_polygon(Coord::new(1.5, 7.5), &f[0].polygon),
            PointLocation::Inside
        );
    }

    #[test]
    fn exterior_is_ccw_holes_cw() {
        let on: Vec<(usize, usize)> = (0..3)
            .flat_map(|r| (0..3).map(move |c| (r + 1, c + 1)))
            .filter(|&(r, c)| !(r == 2 && c == 2))
            .collect();
        let m = mask(6, 6, &on);
        let f = mask_to_features(&m, &geo()).unwrap();
        assert!(f[0].polygon.exterior.is_ccw());
        assert!(!f[0].polygon.interiors[0].is_ccw());
    }

    #[test]
    fn polygons_validate() {
        let m = mask(8, 8, &[(1, 1), (1, 2), (2, 2), (2, 3), (5, 5)]);
        for f in mask_to_features(&m, &geo()).unwrap() {
            assert!(f.geometry().validate().is_ok());
        }
    }

    #[test]
    fn full_mask_single_rectangle() {
        let m = mask(3, 4, &(0..3).flat_map(|r| (0..4).map(move |c| (r, c))).collect::<Vec<_>>());
        let f = mask_to_features(&m, &geo()).unwrap();
        assert_eq!(f.len(), 1);
        assert!((f[0].polygon.area() - 12.0).abs() < 1e-12);
        assert_eq!(f[0].polygon.exterior.len(), 5);
    }

    #[test]
    fn non_2d_mask_rejected() {
        let m = NdArray::zeros(vec![teleios_monet::array::Dim::new("x", 4)]);
        assert!(mask_to_features(&m, &geo()).is_err());
    }

    #[test]
    fn area_equals_cell_count_scaled() {
        // With 0.5-degree pixels, area scales by 0.25 per cell.
        let g = GeoTransform { origin_x: 0.0, origin_y: 10.0, pixel_w: 0.5, pixel_h: 0.5 };
        let m = mask(4, 4, &[(0, 0), (0, 1), (1, 0)]);
        let f = mask_to_features(&m, &g).unwrap();
        assert_eq!(f.len(), 1);
        assert!((f[0].polygon.area() - 3.0 * 0.25).abs() < 1e-12);
    }
}
