//! The NOA processing chain: (a) ingestion, (b) cropping,
//! (c) georeferencing, (d) classification, (e) shapefile generation.
//!
//! Each stage is timed individually; experiment E1 reports the
//! breakdown. The chain is configured with a classification submodule
//! (scenario 1 compares several) and optional crop window / target grid.

use crate::hotspot::HotspotClassifier;
use crate::shapefile::{mask_to_features, HotspotFeature};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};
use teleios_exec::CancelToken;
use teleios_geo::Envelope;
use teleios_ingest::georef;
use teleios_ingest::raster::{GeoRaster, GeoTransform};
use teleios_monet::array::NdArray;
use teleios_monet::{Catalog, DbError, Result};

/// Per-stage wall-clock timings.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageTimings {
    /// (a) ingestion into database arrays.
    pub ingest: Duration,
    /// (b) cropping.
    pub crop: Duration,
    /// (c) georeferencing.
    pub georef: Duration,
    /// (d) classification.
    pub classify: Duration,
    /// (e) shapefile generation.
    pub shapefile: Duration,
}

impl StageTimings {
    /// Total chain time.
    pub fn total(&self) -> Duration {
        self.ingest + self.crop + self.georef + self.classify + self.shapefile
    }
}

/// One of the five chain modules, as seen by [`StageHook`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainStage {
    /// (a) ingestion into database arrays.
    Ingest,
    /// (b) cropping.
    Crop,
    /// (c) georeferencing.
    Georef,
    /// (d) classification.
    Classify,
    /// (e) shapefile generation.
    Shapefile,
}

impl fmt::Display for ChainStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ChainStage::Ingest => "ingest",
            ChainStage::Crop => "crop",
            ChainStage::Georef => "georef",
            ChainStage::Classify => "classify",
            ChainStage::Shapefile => "shapefile",
        };
        f.write_str(name)
    }
}

/// Hook invoked at the start of every chain stage with the product id,
/// the stage, and the chain configuration about to execute. Returning
/// `Err` fails that stage for that scene; panicking simulates a worker
/// crash. `teleios-resilience` threads its deterministic fault plans
/// through this to test supervised execution offline; tracing and
/// metrics collectors fit here too.
pub type StageHook = Arc<dyn Fn(&str, ChainStage, &ProcessingChain) -> Result<()> + Send + Sync>;

/// The configured chain.
#[derive(Clone)]
pub struct ProcessingChain {
    /// Classification submodule (module (d)).
    pub classifier: HotspotClassifier,
    /// Optional area-of-interest crop (module (b)).
    pub crop_window: Option<Envelope>,
    /// Optional georeferencing target grid (module (c)):
    /// (transform, rows, cols).
    pub target_grid: Option<(GeoTransform, usize, usize)>,
    /// Optional per-stage hook (fault injection, tracing). `None` in
    /// production chains.
    pub stage_hook: Option<StageHook>,
    /// Optional cooperative cancellation token, checked at every stage
    /// boundary (before the stage hook fires). A cancelled token fails
    /// the *next* stage with the token's reason — the running stage is
    /// never interrupted, so partial catalog state stays consistent.
    /// `teleios-resilience`'s deadline watchdog cancels this; `None`
    /// in unsupervised chains.
    pub cancel: Option<CancelToken>,
}

impl fmt::Debug for ProcessingChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcessingChain")
            .field("classifier", &self.classifier)
            .field("crop_window", &self.crop_window)
            .field("target_grid", &self.target_grid)
            .field("stage_hook", &self.stage_hook.as_ref().map(|_| "<hook>"))
            .field("cancel", &self.cancel.as_ref().map(CancelToken::is_cancelled))
            .finish()
    }
}

impl ProcessingChain {
    /// Operational chain: fixed 318 K threshold, no crop, native grid.
    pub fn operational() -> ProcessingChain {
        ProcessingChain {
            classifier: HotspotClassifier::default_operational(),
            crop_window: None,
            target_grid: None,
            stage_hook: None,
            cancel: None,
        }
    }

    /// The same chain with a per-stage hook installed.
    pub fn with_stage_hook(mut self, hook: StageHook) -> ProcessingChain {
        self.stage_hook = Some(hook);
        self
    }

    /// The same chain with a cooperative cancellation token installed.
    pub fn with_cancel_token(mut self, token: CancelToken) -> ProcessingChain {
        self.cancel = Some(token);
        self
    }

    /// Chain identifier (used in product metadata).
    pub fn id(&self) -> String {
        self.classifier.id()
    }

    /// Check the cancellation token (if any), then fire the stage
    /// hook (if any). A cancelled token fails the stage before any of
    /// its work — or its injected faults — can run.
    fn fire_hook(&self, product_id: &str, stage: ChainStage) -> Result<()> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                let reason = token
                    .reason()
                    .unwrap_or_else(|| "cancellation requested".to_string());
                return Err(DbError::Execution(format!(
                    "{product_id} cancelled before {stage}: {reason}"
                )));
            }
        }
        match &self.stage_hook {
            Some(hook) => hook(product_id, stage, self),
            None => Ok(()),
        }
    }

    /// Run the chain on a scene raster.
    ///
    /// `catalog` receives the ingested band arrays under
    /// `{product_id}_band{i}` (module (a) makes the image content
    /// transparently queryable instead of a BLOB, per paper §3).
    pub fn run(
        &self,
        catalog: &Catalog,
        product_id: &str,
        raster: &GeoRaster,
    ) -> Result<ChainOutput> {
        let mut timings = StageTimings::default();

        // (a) ingestion: bands become database arrays.
        self.fire_hook(product_id, ChainStage::Ingest)?;
        let t0 = Instant::now();
        for b in 0..raster.bands() {
            catalog.put_array(&format!("{product_id}_band{b}"), raster.band(b)?);
        }
        timings.ingest = t0.elapsed();

        // (b) cropping.
        self.fire_hook(product_id, ChainStage::Crop)?;
        let t0 = Instant::now();
        let cropped = match &self.crop_window {
            Some(w) => georef::crop(raster, w)?,
            None => raster.clone(),
        };
        timings.crop = t0.elapsed();

        // (c) georeferencing.
        self.fire_hook(product_id, ChainStage::Georef)?;
        let t0 = Instant::now();
        let referenced = match &self.target_grid {
            Some((transform, rows, cols)) => {
                georef::georeference(&cropped, transform, *rows, *cols, 0.0)?
            }
            None => cropped,
        };
        timings.georef = t0.elapsed();

        // (d) classification.
        self.fire_hook(product_id, ChainStage::Classify)?;
        let t0 = Instant::now();
        let mask = self.classifier.classify(&referenced)?;
        timings.classify = t0.elapsed();
        catalog.put_array(&format!("{product_id}_hotspots"), mask.clone());

        // (e) shapefile generation.
        self.fire_hook(product_id, ChainStage::Shapefile)?;
        let t0 = Instant::now();
        let features = mask_to_features(&mask, &referenced.geo)?;
        timings.shapefile = t0.elapsed();

        Ok(ChainOutput { raster: referenced, mask, features, timings })
    }
}

/// Extract a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

impl ProcessingChain {
    /// Run the chain over a batch of scenes in parallel (one worker per
    /// scene, scoped threads), with per-scene panic isolation: a worker
    /// panic becomes an `Err` for that scene only and NEVER aborts the
    /// process. Outputs come back in input order. NOA's service processes
    /// each rapid-scan timestep's scenes concurrently — this is that
    /// path; `teleios-resilience::Supervisor` adds retry and degraded
    /// modes on top of it.
    pub fn run_many_isolated(
        &self,
        catalog: &Catalog,
        scenes: &[(String, GeoRaster)],
    ) -> Vec<Result<ChainOutput>> {
        let run = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = scenes
                .iter()
                .map(|(id, raster)| {
                    let chain = self.clone();
                    let catalog = catalog.clone();
                    scope.spawn(move |_| {
                        catch_unwind(AssertUnwindSafe(|| chain.run(&catalog, id, raster)))
                            .unwrap_or_else(|payload| {
                                Err(DbError::Execution(format!(
                                    "chain worker panicked on {id}: {}",
                                    panic_message(payload.as_ref())
                                )))
                            })
                    })
                })
                .collect();
            handles
                .into_iter()
                .zip(scenes)
                .map(|(h, (id, _))| {
                    h.join().unwrap_or_else(|payload| {
                        Err(DbError::Execution(format!(
                            "chain worker for {id} could not be joined: {}",
                            panic_message(payload.as_ref())
                        )))
                    })
                })
                .collect::<Vec<Result<ChainOutput>>>()
        });
        match run {
            Ok(results) => results,
            // Unreachable in practice (workers catch their own panics),
            // but still: degrade to per-scene errors, never abort.
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                scenes
                    .iter()
                    .map(|(id, _)| {
                        Err(DbError::Execution(format!(
                            "chain worker pool panicked while {id} was in flight: {msg}"
                        )))
                    })
                    .collect()
            }
        }
    }

    /// All-or-nothing batch wrapper over [`Self::run_many_isolated`]:
    /// the first per-scene failure is returned as the batch error (the
    /// other scenes still ran to completion — nothing aborts).
    pub fn run_many(
        &self,
        catalog: &Catalog,
        scenes: &[(String, GeoRaster)],
    ) -> Result<Vec<ChainOutput>> {
        self.run_many_isolated(catalog, scenes).into_iter().collect()
    }
}

/// The chain's products.
#[derive(Debug, Clone)]
pub struct ChainOutput {
    /// The processed (cropped/georeferenced) raster.
    pub raster: GeoRaster,
    /// The binary hotspot mask.
    pub mask: NdArray,
    /// The dissolved hotspot features (the shapefile content).
    pub features: Vec<HotspotFeature>,
    /// Per-stage timings.
    pub timings: StageTimings,
}

impl ChainOutput {
    /// Number of detected hotspot pixels.
    pub fn hotspot_pixels(&self) -> usize {
        self.mask.data().iter().filter(|&&v| v > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::Coord;
    use teleios_ingest::seviri::{generate, FireEvent, SceneSpec, SurfaceKind};

    fn bbox() -> Envelope {
        Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
    }

    fn surface(c: Coord) -> SurfaceKind {
        if c.x < 23.0 {
            SurfaceKind::Forest
        } else {
            SurfaceKind::Sea
        }
    }

    fn scene() -> teleios_ingest::seviri::Scene {
        let mut spec = SceneSpec::new(3, 64, 64, bbox());
        spec.cloud_cover = 0.0;
        spec.glint_rate = 0.0;
        spec.fires.push(FireEvent {
            center: Coord::new(21.8, 37.5),
            radius: 0.1,
            intensity: 0.9,
        });
        generate(&spec, &surface).unwrap()
    }

    #[test]
    fn operational_chain_detects_fire() {
        let cat = Catalog::new();
        let out = ProcessingChain::operational()
            .run(&cat, "scene1", &scene().raster)
            .unwrap();
        assert!(out.hotspot_pixels() > 0);
        assert!(!out.features.is_empty());
        // The ingested band arrays are queryable.
        assert!(cat.has_array("scene1_band0"));
        assert!(cat.has_array("scene1_band1"));
        assert!(cat.has_array("scene1_hotspots"));
    }

    #[test]
    fn chain_with_crop_limits_extent() {
        let cat = Catalog::new();
        let mut chain = ProcessingChain::operational();
        chain.crop_window = Some(Envelope::new(Coord::new(21.5, 37.0), Coord::new(22.5, 38.0)));
        let out = chain.run(&cat, "s", &scene().raster).unwrap();
        assert!(out.raster.rows() < 64);
        assert!(out.hotspot_pixels() > 0);
        // Features fall inside the crop window (with pixel tolerance).
        let window = chain.crop_window.unwrap().buffer(0.1);
        for f in &out.features {
            assert!(window.contains_envelope(&f.polygon.envelope()));
        }
    }

    #[test]
    fn chain_with_georeference_resamples() {
        let cat = Catalog::new();
        let mut chain = ProcessingChain::operational();
        let target = GeoTransform::fit(&bbox(), 32, 32);
        chain.target_grid = Some((target, 32, 32));
        let out = chain.run(&cat, "s", &scene().raster).unwrap();
        assert_eq!(out.raster.rows(), 32);
        assert_eq!(out.raster.cols(), 32);
        assert!(out.hotspot_pixels() > 0);
    }

    #[test]
    fn timings_are_recorded() {
        let cat = Catalog::new();
        let out = ProcessingChain::operational().run(&cat, "s", &scene().raster).unwrap();
        assert!(out.timings.total() > Duration::ZERO);
        assert!(out.timings.classify > Duration::ZERO);
    }

    #[test]
    fn different_classifiers_yield_different_products() {
        let cat = Catalog::new();
        let raster = scene().raster;
        let plain = ProcessingChain {
            classifier: HotspotClassifier::Threshold { kelvin: 318.0 },
            ..ProcessingChain::operational()
        }
        .run(&cat, "a", &raster)
        .unwrap();
        let strict = ProcessingChain {
            classifier: HotspotClassifier::Threshold { kelvin: 340.0 },
            ..ProcessingChain::operational()
        }
        .run(&cat, "b", &raster)
        .unwrap();
        assert!(strict.hotspot_pixels() <= plain.hotspot_pixels());
    }

    #[test]
    fn run_many_matches_sequential() {
        let cat_par = Catalog::new();
        let cat_seq = Catalog::new();
        let chain = ProcessingChain::operational();
        let scenes: Vec<(String, teleios_ingest::raster::GeoRaster)> = (0..4)
            .map(|i| {
                let mut spec = SceneSpec::new(50 + i, 48, 48, bbox());
                spec.cloud_cover = 0.0;
                spec.fires.push(FireEvent {
                    center: Coord::new(21.6 + i as f64 * 0.1, 37.4),
                    radius: 0.08,
                    intensity: 0.9,
                });
                (format!("batch{i}"), generate(&spec, &surface).unwrap().raster)
            })
            .collect();
        let parallel = chain.run_many(&cat_par, &scenes).unwrap();
        let sequential: Vec<ChainOutput> = scenes
            .iter()
            .map(|(id, r)| chain.run(&cat_seq, id, r).unwrap())
            .collect();
        assert_eq!(parallel.len(), 4);
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.mask, s.mask);
            assert_eq!(p.features.len(), s.features.len());
        }
        // Both catalogs hold all the ingested arrays.
        for i in 0..4 {
            assert!(cat_par.has_array(&format!("batch{i}_hotspots")));
        }
    }

    #[test]
    fn chain_ids() {
        assert_eq!(ProcessingChain::operational().id(), "threshold-318");
    }

    #[test]
    fn pre_cancelled_token_fails_the_first_stage() {
        let cat = Catalog::new();
        let token = CancelToken::new();
        token.cancel("deadline overshot");
        let chain = ProcessingChain::operational().with_cancel_token(token);
        let err = chain.run(&cat, "c0", &scene().raster).unwrap_err().to_string();
        assert!(err.contains("c0 cancelled before ingest"), "{err}");
        assert!(err.contains("deadline overshot"), "{err}");
        // Nothing was ingested.
        assert!(!cat.has_array("c0_band0"));
    }

    #[test]
    fn mid_chain_cancellation_stops_before_the_next_stage() {
        let cat = Catalog::new();
        let token = CancelToken::new();
        let fire = token.clone();
        // Fire the token from the classify hook: the classify stage
        // itself still runs (cooperative, never interrupted), and the
        // chain fails at the next stage boundary.
        let chain = ProcessingChain::operational()
            .with_cancel_token(token)
            .with_stage_hook(Arc::new(
                move |_id: &str, stage: ChainStage, _chain: &ProcessingChain| {
                    if stage == ChainStage::Classify {
                        fire.cancel("watchdog: classify overdue");
                    }
                    Ok(())
                },
            ));
        let err = chain.run(&cat, "c1", &scene().raster).unwrap_err().to_string();
        assert!(err.contains("c1 cancelled before shapefile"), "{err}");
        assert!(err.contains("watchdog: classify overdue"), "{err}");
        // Stages before the cancellation point completed normally.
        assert!(cat.has_array("c1_band0"));
    }

    fn batch_scenes(n: usize) -> Vec<(String, teleios_ingest::raster::GeoRaster)> {
        (0..n)
            .map(|i| {
                let mut spec = SceneSpec::new(90 + i as u64, 32, 32, bbox());
                spec.cloud_cover = 0.0;
                spec.fires.push(FireEvent {
                    center: Coord::new(21.6, 37.4),
                    radius: 0.08,
                    intensity: 0.9,
                });
                (format!("iso{i}"), generate(&spec, &surface).unwrap().raster)
            })
            .collect()
    }

    #[test]
    fn worker_panic_is_isolated_per_scene() {
        let cat = Catalog::new();
        let chain = ProcessingChain::operational().with_stage_hook(Arc::new(
            |id: &str, stage: ChainStage, _chain: &ProcessingChain| {
                if id == "iso1" && stage == ChainStage::Classify {
                    panic!("injected worker panic");
                }
                Ok(())
            },
        ));
        let scenes = batch_scenes(3);
        let results = chain.run_many_isolated(&cat, &scenes);
        assert_eq!(results.len(), 3);
        assert!(results[0].is_ok());
        let err = results[1].as_ref().unwrap_err().to_string();
        assert!(err.contains("panicked"), "unexpected error: {err}");
        assert!(err.contains("iso1"), "error should name the scene: {err}");
        assert!(err.contains("injected worker panic"), "error should carry the payload: {err}");
        assert!(results[2].is_ok());
        // The all-or-nothing wrapper reports the failure as an Err —
        // and the process is still alive to observe it.
        assert!(chain.run_many(&cat, &scenes).is_err());
    }

    #[test]
    fn stage_hook_error_fails_only_that_scene() {
        let cat = Catalog::new();
        let chain = ProcessingChain::operational().with_stage_hook(Arc::new(
            |id: &str, stage: ChainStage, _chain: &ProcessingChain| {
                if id == "iso0" && stage == ChainStage::Georef {
                    return Err(teleios_monet::DbError::Execution("injected georef fault".into()));
                }
                Ok(())
            },
        ));
        let scenes = batch_scenes(2);
        let results = chain.run_many_isolated(&cat, &scenes);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }
}
