//! Thematic-accuracy scoring against ground truth.
//!
//! Experiments E2 (classifier comparison) and E7 (refinement benefit)
//! report precision, recall and F1 of detection masks relative to the
//! generator's truth masks.

use teleios_monet::array::NdArray;
use teleios_monet::{DbError, Result};

/// Pixel-level confusion counts and derived scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    /// Detected and truly burning.
    pub true_positives: usize,
    /// Detected but not burning.
    pub false_positives: usize,
    /// Burning but missed.
    pub false_negatives: usize,
    /// Neither detected nor burning.
    pub true_negatives: usize,
}

impl Accuracy {
    /// Precision: TP / (TP + FP); 1.0 when nothing was detected.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN); 1.0 when nothing was burning.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1: harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Score a detection mask against the truth mask (same shape; positive
/// means > 0).
pub fn score(detected: &NdArray, truth: &NdArray) -> Result<Accuracy> {
    if detected.shape() != truth.shape() {
        return Err(DbError::ShapeMismatch(format!(
            "detected {:?} vs truth {:?}",
            detected.shape(),
            truth.shape()
        )));
    }
    let mut acc = Accuracy {
        true_positives: 0,
        false_positives: 0,
        false_negatives: 0,
        true_negatives: 0,
    };
    for (&d, &t) in detected.data().iter().zip(truth.data()) {
        match (d > 0.0, t > 0.0) {
            (true, true) => acc.true_positives += 1,
            (true, false) => acc.false_positives += 1,
            (false, true) => acc.false_negatives += 1,
            (false, false) => acc.true_negatives += 1,
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(vals: &[f64]) -> NdArray {
        NdArray::matrix(1, vals.len(), vals.to_vec()).unwrap()
    }

    #[test]
    fn perfect_detection() {
        let a = score(&arr(&[1.0, 0.0, 1.0]), &arr(&[1.0, 0.0, 1.0])).unwrap();
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        assert_eq!(a.f1(), 1.0);
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.true_negatives, 1);
    }

    #[test]
    fn false_positive_lowers_precision() {
        let a = score(&arr(&[1.0, 1.0]), &arr(&[1.0, 0.0])).unwrap();
        assert_eq!(a.precision(), 0.5);
        assert_eq!(a.recall(), 1.0);
        assert!((a.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn miss_lowers_recall() {
        let a = score(&arr(&[0.0, 1.0]), &arr(&[1.0, 1.0])).unwrap();
        assert_eq!(a.recall(), 0.5);
        assert_eq!(a.precision(), 1.0);
    }

    #[test]
    fn empty_cases() {
        let a = score(&arr(&[0.0, 0.0]), &arr(&[0.0, 0.0])).unwrap();
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        let b = score(&arr(&[0.0]), &arr(&[1.0])).unwrap();
        assert_eq!(b.f1(), 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(score(&arr(&[1.0]), &arr(&[1.0, 0.0])).is_err());
    }
}
