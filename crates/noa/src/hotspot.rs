//! Hotspot classification submodules (processing-chain module (d)).
//!
//! Scenario 1 of the demo lets the user "test the efficiency of
//! different processing chains (i.e., chains using a different
//! classification submodule)". Three submodules are provided, all
//! operating on the IR_039 fire channel; experiment E2 scores them
//! against ground truth.

use teleios_ingest::raster::GeoRaster;
use teleios_ingest::seviri::BAND_IR039;
use teleios_monet::array::NdArray;
use teleios_monet::Result;
use teleios_sciql::ops;

/// A pixel-classification strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HotspotClassifier {
    /// `IR_039 > t` (kelvin). The operational MSG/SEVIRI default uses
    /// t ≈ 318 K.
    Threshold {
        /// Brightness-temperature threshold in kelvin.
        kelvin: f64,
    },
    /// Scene-adaptive threshold `mean + k·σ` of the fire channel,
    /// robust to seasonal ambient changes.
    Adaptive {
        /// Multiplier on the scene standard deviation.
        sigma: f64,
    },
    /// Fixed threshold followed by a spatial-context filter: a positive
    /// pixel survives only with `min_neighbors` positive 8-neighbours,
    /// suppressing isolated artifacts (glint, noise).
    Contextual {
        /// Brightness-temperature threshold in kelvin.
        kelvin: f64,
        /// Minimum positive neighbours to keep a detection.
        min_neighbors: usize,
    },
}

impl HotspotClassifier {
    /// The operational default (fixed 318 K threshold).
    pub fn default_operational() -> HotspotClassifier {
        HotspotClassifier::Threshold { kelvin: 318.0 }
    }

    /// Short identifier used in product metadata
    /// (`noa:isProducedByProcessingChain`).
    pub fn id(&self) -> String {
        match self {
            HotspotClassifier::Threshold { kelvin } => format!("threshold-{kelvin:.0}"),
            HotspotClassifier::Adaptive { sigma } => format!("adaptive-{sigma:.1}sigma"),
            HotspotClassifier::Contextual { kelvin, min_neighbors } => {
                format!("contextual-{kelvin:.0}-n{min_neighbors}")
            }
        }
    }

    /// Classify a scene: returns the binary hotspot mask (y, x).
    pub fn classify(&self, raster: &GeoRaster) -> Result<NdArray> {
        let ir = raster.band(BAND_IR039)?;
        match self {
            HotspotClassifier::Threshold { kelvin } => Ok(ops::classify_threshold(&ir, *kelvin)),
            HotspotClassifier::Adaptive { sigma } => {
                let mean = ir.mean().unwrap_or(0.0);
                let sd = ir.std_dev().unwrap_or(0.0);
                Ok(ops::classify_threshold(&ir, mean + sigma * sd))
            }
            HotspotClassifier::Contextual { kelvin, min_neighbors } => {
                let mask = ops::classify_threshold(&ir, *kelvin);
                ops::contextual_filter(&mask, *min_neighbors)
            }
        }
    }

    /// The same classification expressed as a SciQL statement (what the
    /// demo shows users: "SciQL queries are used to implement the NOA
    /// processing chains"). Only threshold-style classifiers have a
    /// single-statement form.
    pub fn sciql_statement(&self, array_name: &str) -> Option<String> {
        match self {
            HotspotClassifier::Threshold { kelvin } => Some(format!(
                "UPDATE {array_name} SET v = CASE WHEN v > {kelvin} THEN 1 ELSE 0 END"
            )),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::{Coord, Envelope};
    use teleios_ingest::seviri::{generate, FireEvent, SceneSpec, SurfaceKind};

    fn bbox() -> Envelope {
        Envelope::new(Coord::new(21.0, 36.0), Coord::new(24.0, 39.0))
    }

    fn surface(c: Coord) -> SurfaceKind {
        if c.x < 22.5 {
            SurfaceKind::Forest
        } else {
            SurfaceKind::Sea
        }
    }

    fn fire_scene(glint: f64) -> teleios_ingest::seviri::Scene {
        let mut spec = SceneSpec::new(11, 64, 64, bbox());
        spec.cloud_cover = 0.0;
        spec.glint_rate = glint;
        spec.fires.push(FireEvent {
            center: Coord::new(21.8, 37.5),
            radius: 0.1,
            intensity: 0.9,
        });
        generate(&spec, &surface).unwrap()
    }

    #[test]
    fn threshold_detects_fire_core() {
        let scene = fire_scene(0.0);
        let mask = HotspotClassifier::default_operational().classify(&scene.raster).unwrap();
        assert!(mask.sum() > 0.0);
        // Every truth pixel is detected (threshold is generous).
        let missed = scene
            .truth
            .data()
            .iter()
            .zip(mask.data())
            .filter(|(t, m)| **t > 0.0 && **m == 0.0)
            .count();
        assert_eq!(missed, 0);
    }

    #[test]
    fn adaptive_tracks_scene_statistics() {
        let scene = fire_scene(0.0);
        let mask = HotspotClassifier::Adaptive { sigma: 4.0 }.classify(&scene.raster).unwrap();
        assert!(mask.sum() > 0.0);
        // Adaptive should not flag huge swaths of ambient pixels.
        assert!(mask.sum() < 200.0, "mask sum {}", mask.sum());
    }

    #[test]
    fn contextual_suppresses_isolated_glint() {
        let scene = fire_scene(0.01);
        let plain = HotspotClassifier::Threshold { kelvin: 318.0 }.classify(&scene.raster).unwrap();
        let ctx = HotspotClassifier::Contextual { kelvin: 318.0, min_neighbors: 2 }
            .classify(&scene.raster)
            .unwrap();
        assert!(ctx.sum() <= plain.sum());
        // The fire core (a dense blob) survives the context filter.
        assert!(ctx.sum() > 0.0);
    }

    #[test]
    fn classifier_ids() {
        assert_eq!(HotspotClassifier::Threshold { kelvin: 318.0 }.id(), "threshold-318");
        assert_eq!(HotspotClassifier::Adaptive { sigma: 3.5 }.id(), "adaptive-3.5sigma");
        assert_eq!(
            HotspotClassifier::Contextual { kelvin: 320.0, min_neighbors: 3 }.id(),
            "contextual-320-n3"
        );
    }

    #[test]
    fn sciql_form_matches_native() {
        let scene = fire_scene(0.0);
        let classifier = HotspotClassifier::Threshold { kelvin: 318.0 };
        let native = classifier.classify(&scene.raster).unwrap();

        // Run the same classification through the SciQL engine.
        let cat = teleios_monet::Catalog::new();
        cat.create_array("ir", scene.raster.band(BAND_IR039).unwrap()).unwrap();
        let stmt = classifier.sciql_statement("ir").unwrap();
        teleios_sciql::execute(&cat, &stmt).unwrap();
        assert_eq!(cat.array("ir").unwrap(), native);
    }

    #[test]
    fn non_threshold_has_no_single_statement() {
        assert!(HotspotClassifier::Adaptive { sigma: 3.0 }.sciql_statement("a").is_none());
    }
}
