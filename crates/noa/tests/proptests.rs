//! Property-based tests of the NOA product pipeline invariants.

use proptest::prelude::*;
use teleios_ingest::raster::GeoTransform;
use teleios_monet::array::NdArray;
use teleios_noa::accuracy;
use teleios_noa::refine::features_to_mask;
use teleios_noa::shapefile::mask_to_features;

fn geo() -> GeoTransform {
    GeoTransform { origin_x: 0.0, origin_y: 16.0, pixel_w: 1.0, pixel_h: 1.0 }
}

fn mask_from_cells(rows: usize, cols: usize, cells: &[(usize, usize)]) -> NdArray {
    let mut m = NdArray::matrix(rows, cols, vec![0.0; rows * cols]).expect("mask");
    for &(r, c) in cells {
        m.set(&[r % rows, c % cols], 1.0).expect("in range");
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Polygonization is exact: total feature area equals the number of
    /// positive pixels (pixel size 1), and feature cell counts partition
    /// the positive pixels.
    #[test]
    fn polygonization_conserves_area(
        cells in proptest::collection::vec((0usize..16, 0usize..16), 0..60)
    ) {
        let mask = mask_from_cells(16, 16, &cells);
        let positive = mask.data().iter().filter(|&&v| v > 0.0).count();
        let features = mask_to_features(&mask, &geo()).expect("features");
        let total_cells: usize = features.iter().map(|f| f.cells).sum();
        prop_assert_eq!(total_cells, positive);
        let total_area: f64 = features.iter().map(|f| f.polygon.area()).sum();
        prop_assert!((total_area - positive as f64).abs() < 1e-9,
            "area {} != pixels {}", total_area, positive);
    }

    /// Every produced polygon is structurally valid.
    #[test]
    fn polygonization_produces_valid_geometries(
        cells in proptest::collection::vec((0usize..12, 0usize..12), 0..50)
    ) {
        let mask = mask_from_cells(12, 12, &cells);
        for f in mask_to_features(&mask, &geo()).expect("features") {
            prop_assert!(f.geometry().validate().is_ok());
        }
    }

    /// Rasterizing the features back yields the original mask
    /// (mask → polygons → mask is the identity).
    #[test]
    fn polygonize_rasterize_roundtrip(
        cells in proptest::collection::vec((0usize..12, 0usize..12), 0..50)
    ) {
        let mask = mask_from_cells(12, 12, &cells);
        let features = mask_to_features(&mask, &geo()).expect("features");
        let polys: Vec<&teleios_geo::geometry::Polygon> =
            features.iter().map(|f| &f.polygon).collect();
        let back = features_to_mask(&polys, &geo(), 12, 12);
        prop_assert_eq!(back, mask);
    }

    /// Accuracy counts partition the pixel grid.
    #[test]
    fn accuracy_counts_partition(
        detected in proptest::collection::vec((0usize..10, 0usize..10), 0..40),
        truth in proptest::collection::vec((0usize..10, 0usize..10), 0..40),
    ) {
        let d = mask_from_cells(10, 10, &detected);
        let t = mask_from_cells(10, 10, &truth);
        let a = accuracy::score(&d, &t).expect("score");
        prop_assert_eq!(
            a.true_positives + a.false_positives + a.false_negatives + a.true_negatives,
            100
        );
        prop_assert!(a.precision() >= 0.0 && a.precision() <= 1.0);
        prop_assert!(a.recall() >= 0.0 && a.recall() <= 1.0);
        prop_assert!(a.f1() >= 0.0 && a.f1() <= 1.0);
    }

    /// Burnt-area accumulation is commutative and idempotent.
    #[test]
    fn burnt_accumulation_properties(
        a_cells in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
        b_cells in proptest::collection::vec((0usize..8, 0usize..8), 0..20),
    ) {
        use teleios_noa::burnt::accumulate_masks;
        let a = mask_from_cells(8, 8, &a_cells);
        let b = mask_from_cells(8, 8, &b_cells);
        let ab = accumulate_masks(&[a.clone(), b.clone()]).expect("acc");
        let ba = accumulate_masks(&[b.clone(), a.clone()]).expect("acc");
        prop_assert_eq!(&ab, &ba);
        let aa = accumulate_masks(&[a.clone(), a.clone()]).expect("acc");
        prop_assert_eq!(aa, a);
        // Union dominates both inputs.
        for (o, i) in ab.data().iter().zip(b.data()) {
            prop_assert!(o >= i);
        }
    }
}
