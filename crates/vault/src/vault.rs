//! The Data Vault proper: policy, materialization, cache, statistics.

use crate::catalog::{extract_metadata, VaultCatalog};
use crate::format::{decode_gtf1, decode_sev1, decode_shp1, FormatKind, Shp1Record};
use crate::repository::Repository;
use crate::{Result, VaultError};
use teleios_geo::Envelope;
use teleios_monet::array::{Dim, NdArray};
use teleios_monet::Catalog;

/// When payloads are converted into database arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestionPolicy {
    /// Convert every file at registration time (the traditional load).
    Eager,
    /// Convert on first access (the Data Vault's just-in-time load).
    Lazy,
}

/// Access statistics (experiment E5 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Header-only metadata extractions.
    pub registrations: usize,
    /// Full payload conversions performed.
    pub materializations: usize,
    /// Array requests served from the cache / database.
    pub cache_hits: usize,
    /// Array requests that had to materialize.
    pub cache_misses: usize,
    /// Cached arrays evicted to respect the cache capacity.
    pub evictions: usize,
}

/// The Data Vault: external repository + metadata catalog + array store.
#[derive(Debug)]
pub struct DataVault {
    repository: Repository,
    catalog: VaultCatalog,
    db: Catalog,
    policy: IngestionPolicy,
    /// LRU order of materialized array names (front = oldest).
    lru: Vec<String>,
    cache_capacity: usize,
    stats: VaultStats,
}

impl DataVault {
    /// New vault over a repository and database catalog.
    ///
    /// `cache_capacity` bounds how many materialized raster arrays stay
    /// resident in the database at once (0 = unbounded).
    pub fn new(
        repository: Repository,
        db: Catalog,
        policy: IngestionPolicy,
        cache_capacity: usize,
    ) -> DataVault {
        DataVault {
            repository,
            catalog: VaultCatalog::new(),
            db,
            policy,
            lru: Vec::new(),
            cache_capacity,
            stats: VaultStats::default(),
        }
    }

    /// The metadata catalog.
    pub fn catalog(&self) -> &VaultCatalog {
        &self.catalog
    }

    /// Persist the metadata catalog as JSON (what survives a restart: the
    /// repository files plus this catalog; payloads re-materialize on
    /// demand).
    pub fn export_catalog(&self) -> String {
        self.catalog.to_json()
    }

    /// Restore a previously exported catalog, replacing the current one.
    /// Records referring to files missing from the repository are kept
    /// (accessing them errors), matching a vault pointed at a partially
    /// restored archive.
    pub fn import_catalog(&mut self, json: &str) -> Result<usize> {
        let catalog = VaultCatalog::from_json(json)?;
        let n = catalog.len();
        self.catalog = catalog;
        Ok(n)
    }

    /// The underlying database catalog.
    pub fn database(&self) -> &Catalog {
        &self.db
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Mutable repository access (new files need [`Self::register`]).
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repository
    }

    /// Current statistics.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// The ingestion policy.
    pub fn policy(&self) -> IngestionPolicy {
        self.policy
    }

    /// Register one repository file: header parse into the catalog, plus
    /// immediate materialization under the eager policy.
    pub fn register(&mut self, name: &str) -> Result<()> {
        let bytes = self
            .repository
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?
            .clone();
        let record = extract_metadata(name, &bytes)?;
        self.catalog.register(record);
        self.stats.registrations += 1;
        if self.policy == IngestionPolicy::Eager {
            self.materialize(name)?;
        }
        Ok(())
    }

    /// Register every file currently in the repository.
    pub fn register_all(&mut self) -> Result<usize> {
        let names: Vec<String> = self.repository.names().map(str::to_string).collect();
        for name in &names {
            self.register(name)?;
        }
        Ok(names.len())
    }

    /// Database array name for a repository file.
    pub fn array_name(file: &str) -> String {
        format!("vault::{file}")
    }

    /// Fetch the raster array for a file, materializing it if needed.
    /// Errors for `.shp1` files (use [`Self::records_for`]).
    pub fn array_for(&mut self, name: &str) -> Result<NdArray> {
        let record = self
            .catalog
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?
            .clone();
        if record.format == "shp1" {
            return Err(VaultError::Malformed(format!(
                "{name} is a geometry set, not a raster"
            )));
        }
        let array_name = Self::array_name(name);
        if self.db.has_array(&array_name) {
            self.stats.cache_hits += 1;
            self.touch(&array_name);
            return self
                .db
                .array(&array_name)
                .map_err(|e| VaultError::Database(e.to_string()));
        }
        self.stats.cache_misses += 1;
        self.materialize(name)?;
        self.db
            .array(&array_name)
            .map_err(|e| VaultError::Database(e.to_string()))
    }

    /// Fetch geometry records for a `.shp1` file (always decoded fresh —
    /// geometry sets are small next to rasters).
    pub fn records_for(&mut self, name: &str) -> Result<Vec<Shp1Record>> {
        let bytes = self
            .repository
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?;
        decode_shp1(bytes)
    }

    /// Materialize every registered file whose bbox intersects `window`,
    /// returning their names. This is the vault's query-driven loading.
    pub fn materialize_window(&mut self, window: &Envelope) -> Result<Vec<String>> {
        let names: Vec<String> = self
            .catalog
            .covering(window)
            .into_iter()
            .map(|r| r.name.clone())
            .collect();
        for name in &names {
            // Reuse the cache path so stats and LRU stay correct.
            let record = self.catalog.get(name).expect("registered").clone();
            if record.format != "shp1" {
                self.array_for(name)?;
            }
        }
        Ok(names)
    }

    /// Convert one file's payload into a database array.
    fn materialize(&mut self, name: &str) -> Result<()> {
        let bytes = self
            .repository
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?
            .clone();
        let array_name = Self::array_name(name);
        let array = match FormatKind::from_name(name)? {
            FormatKind::Sev1 => {
                let (h, payload) = decode_sev1(&bytes)?;
                NdArray::from_vec(
                    vec![
                        Dim::new("band", h.bands as usize),
                        Dim::new("y", h.rows as usize),
                        Dim::new("x", h.cols as usize),
                    ],
                    payload,
                )
                .map_err(|e| VaultError::Database(e.to_string()))?
            }
            FormatKind::Gtf1 => {
                let (h, payload) = decode_gtf1(&bytes)?;
                NdArray::from_vec(
                    vec![Dim::new("y", h.rows as usize), Dim::new("x", h.cols as usize)],
                    payload,
                )
                .map_err(|e| VaultError::Database(e.to_string()))?
            }
            FormatKind::Shp1 => {
                return Err(VaultError::Malformed(format!(
                    "{name} is a geometry set, not a raster"
                )))
            }
        };
        self.db.put_array(&array_name, array);
        self.stats.materializations += 1;
        self.touch(&array_name);
        self.evict_if_needed();
        Ok(())
    }

    fn touch(&mut self, array_name: &str) {
        if let Some(pos) = self.lru.iter().position(|n| n == array_name) {
            self.lru.remove(pos);
        }
        self.lru.push(array_name.to_string());
    }

    fn evict_if_needed(&mut self) {
        if self.cache_capacity == 0 {
            return;
        }
        while self.lru.len() > self.cache_capacity {
            let victim = self.lru.remove(0);
            if self.db.drop_array(&victim).is_ok() {
                self.stats.evictions += 1;
            }
        }
    }

    /// Number of arrays currently resident.
    pub fn resident_arrays(&self) -> usize {
        self.lru.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_sev1, encode_shp1, Sev1Header};
    use teleios_geo::Coord;

    fn scene_bytes(rows: u32, cols: u32, bbox: (f64, f64, f64, f64), fill: f64) -> bytes::Bytes {
        let h = Sev1Header {
            rows,
            cols,
            bands: 1,
            acquisition: "2007-08-25T12:00:00Z".into(),
            bbox,
        };
        encode_sev1(&h, &vec![fill; (rows * cols) as usize]).unwrap()
    }

    fn vault_with(n: usize, policy: IngestionPolicy, cache: usize) -> DataVault {
        let mut repo = Repository::new();
        for i in 0..n {
            let x = i as f64;
            repo.put(
                format!("scene-{i:03}.sev1"),
                scene_bytes(4, 4, (x, 0.0, x + 1.0, 1.0), i as f64),
            );
        }
        let mut v = DataVault::new(repo, Catalog::new(), policy, cache);
        v.register_all().unwrap();
        v
    }

    #[test]
    fn lazy_defers_materialization() {
        let mut v = vault_with(10, IngestionPolicy::Lazy, 0);
        assert_eq!(v.stats().registrations, 10);
        assert_eq!(v.stats().materializations, 0);
        let a = v.array_for("scene-003.sev1").unwrap();
        assert_eq!(a.shape(), vec![1, 4, 4]);
        assert_eq!(a.data()[0], 3.0);
        assert_eq!(v.stats().materializations, 1);
        assert_eq!(v.stats().cache_misses, 1);
    }

    #[test]
    fn eager_materializes_everything() {
        let v = vault_with(10, IngestionPolicy::Eager, 0);
        assert_eq!(v.stats().materializations, 10);
        assert_eq!(v.resident_arrays(), 10);
    }

    #[test]
    fn second_access_hits_cache() {
        let mut v = vault_with(5, IngestionPolicy::Lazy, 0);
        v.array_for("scene-001.sev1").unwrap();
        v.array_for("scene-001.sev1").unwrap();
        assert_eq!(v.stats().materializations, 1);
        assert_eq!(v.stats().cache_hits, 1);
    }

    #[test]
    fn cache_evicts_lru() {
        let mut v = vault_with(5, IngestionPolicy::Lazy, 2);
        v.array_for("scene-000.sev1").unwrap();
        v.array_for("scene-001.sev1").unwrap();
        v.array_for("scene-002.sev1").unwrap(); // evicts 000
        assert_eq!(v.resident_arrays(), 2);
        assert_eq!(v.stats().evictions, 1);
        // Re-access of the evicted scene re-materializes.
        v.array_for("scene-000.sev1").unwrap();
        assert_eq!(v.stats().materializations, 4);
    }

    #[test]
    fn lru_touch_on_hit() {
        let mut v = vault_with(3, IngestionPolicy::Lazy, 2);
        v.array_for("scene-000.sev1").unwrap();
        v.array_for("scene-001.sev1").unwrap();
        v.array_for("scene-000.sev1").unwrap(); // refresh 000
        v.array_for("scene-002.sev1").unwrap(); // evicts 001, not 000
        assert!(v.database().has_array(&DataVault::array_name("scene-000.sev1")));
        assert!(!v.database().has_array(&DataVault::array_name("scene-001.sev1")));
    }

    #[test]
    fn materialize_window_touches_only_covering() {
        let mut v = vault_with(10, IngestionPolicy::Lazy, 0);
        let window = Envelope::new(Coord::new(2.5, 0.2), Coord::new(4.5, 0.8));
        let names = v.materialize_window(&window).unwrap();
        assert_eq!(names.len(), 3); // scenes 2, 3, 4
        assert_eq!(v.stats().materializations, 3);
    }

    #[test]
    fn shp1_records_roundtrip() {
        let mut repo = Repository::new();
        repo.put(
            "hotspots.shp1",
            encode_shp1(&[Shp1Record { wkt: "POINT (1 2)".into(), label: "fire".into() }]),
        );
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        v.register_all().unwrap();
        let recs = v.records_for("hotspots.shp1").unwrap();
        assert_eq!(recs.len(), 1);
        assert!(v.array_for("hotspots.shp1").is_err());
    }

    #[test]
    fn unknown_file_errors() {
        let mut v = vault_with(1, IngestionPolicy::Lazy, 0);
        assert!(matches!(v.array_for("nope.sev1"), Err(VaultError::UnknownFile(_))));
        assert!(matches!(v.register("nope.sev1"), Err(VaultError::UnknownFile(_))));
    }

    #[test]
    fn unregistered_file_not_found_by_array_for() {
        let mut repo = Repository::new();
        repo.put("late.sev1", scene_bytes(2, 2, (0.0, 0.0, 1.0, 1.0), 1.0));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        assert!(v.array_for("late.sev1").is_err());
        v.register("late.sev1").unwrap();
        assert!(v.array_for("late.sev1").is_ok());
    }

    #[test]
    fn catalog_survives_export_import() {
        let v = vault_with(5, IngestionPolicy::Lazy, 0);
        let json = v.export_catalog();
        // A fresh vault over the same repository restores discovery
        // without re-registering.
        let mut v2 = DataVault::new(v.repository().clone(), Catalog::new(), IngestionPolicy::Lazy, 0);
        assert_eq!(v2.import_catalog(&json).unwrap(), 5);
        assert_eq!(v2.catalog().len(), 5);
        assert_eq!(v2.stats().registrations, 0); // no header parses needed
        let a = v2.array_for("scene-002.sev1").unwrap();
        assert_eq!(a.data()[0], 2.0);
        assert!(v2.import_catalog("garbage").is_err());
    }

    #[test]
    fn eager_vs_lazy_cost_shape() {
        // The E5 claim in miniature: with 10% access, lazy does ~10% of
        // the conversions eager does.
        let mut lazy = vault_with(50, IngestionPolicy::Lazy, 0);
        for i in 0..5 {
            lazy.array_for(&format!("scene-{:03}.sev1", i * 10)).unwrap();
        }
        let eager = vault_with(50, IngestionPolicy::Eager, 0);
        assert_eq!(lazy.stats().materializations, 5);
        assert_eq!(eager.stats().materializations, 50);
    }
}
