//! The Data Vault proper: policy, materialization, cache, quarantine,
//! statistics.

use crate::catalog::{extract_metadata, VaultCatalog};
use crate::format::{decode_gtf1, decode_sev1, decode_shp1, FormatKind, Shp1Record};
use crate::repository::Repository;
use crate::{Result, VaultError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use teleios_geo::Envelope;
use teleios_monet::array::{Dim, NdArray};
use teleios_monet::Catalog;

/// When payloads are converted into database arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestionPolicy {
    /// Convert every file at registration time (the traditional load).
    Eager,
    /// Convert on first access (the Data Vault's just-in-time load).
    Lazy,
}

/// Access statistics (experiment E5 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Header-only metadata extractions.
    pub registrations: usize,
    /// Full payload conversions performed.
    pub materializations: usize,
    /// Array requests served from the cache / database.
    pub cache_hits: usize,
    /// Array requests that had to materialize.
    pub cache_misses: usize,
    /// Cached arrays evicted to respect the cache capacity.
    pub evictions: usize,
    /// Files currently sitting in the quarantine list.
    pub quarantined: usize,
    /// Header/payload decodes that failed (corruption, truncation,
    /// malformed bytes) — each one quarantines its file.
    pub decode_failures: usize,
    /// Quarantine retries attempted via [`DataVault::retry_quarantined`].
    pub retries: usize,
}

/// Serialization envelope for [`DataVault::export_catalog`]: the
/// metadata catalog flattened at the top level (so the JSON stays
/// readable by [`VaultCatalog::from_json`]) plus the quarantine list.
#[derive(Serialize)]
struct VaultExportRef<'a> {
    #[serde(flatten)]
    catalog: &'a VaultCatalog,
    quarantine: &'a BTreeSet<String>,
}

/// Owned counterpart for [`DataVault::import_catalog`]. `quarantine`
/// defaults to empty so exports written before quarantine persistence
/// existed still import.
#[derive(Deserialize)]
struct VaultExport {
    #[serde(flatten)]
    catalog: VaultCatalog,
    #[serde(default)]
    quarantine: BTreeSet<String>,
}

/// The Data Vault: external repository + metadata catalog + array store.
#[derive(Debug)]
pub struct DataVault {
    repository: Repository,
    catalog: VaultCatalog,
    db: Catalog,
    policy: IngestionPolicy,
    /// LRU order of materialized array names (front = oldest).
    lru: Vec<String>,
    cache_capacity: usize,
    stats: VaultStats,
    /// Files whose decode failed; accesses are refused until a retry
    /// clears them, so one corrupt scene can't repeatedly stall a batch.
    quarantine: BTreeSet<String>,
}

impl DataVault {
    /// New vault over a repository and database catalog.
    ///
    /// `cache_capacity` bounds how many materialized raster arrays stay
    /// resident in the database at once (0 = unbounded).
    pub fn new(
        repository: Repository,
        db: Catalog,
        policy: IngestionPolicy,
        cache_capacity: usize,
    ) -> DataVault {
        DataVault {
            repository,
            catalog: VaultCatalog::new(),
            db,
            policy,
            lru: Vec::new(),
            cache_capacity,
            stats: VaultStats::default(),
            quarantine: BTreeSet::new(),
        }
    }

    /// The metadata catalog.
    pub fn catalog(&self) -> &VaultCatalog {
        &self.catalog
    }

    /// Persist the metadata catalog and the quarantine list as JSON
    /// (what survives a restart: the repository files plus this
    /// export; payloads re-materialize on demand, and known-bad files
    /// stay fenced off instead of re-stalling the first post-restart
    /// batch).
    pub fn export_catalog(&self) -> String {
        let export = VaultExportRef { catalog: &self.catalog, quarantine: &self.quarantine };
        serde_json::to_string_pretty(&export).unwrap_or_else(|_| self.catalog.to_json())
    }

    /// Restore a previously exported catalog, replacing the current one
    /// (including the quarantine list; exports from before quarantine
    /// persistence restore with an empty list). Records referring to
    /// files missing from the repository are kept (accessing them
    /// errors), matching a vault pointed at a partially restored
    /// archive.
    pub fn import_catalog(&mut self, json: &str) -> Result<usize> {
        let export: VaultExport = serde_json::from_str(json)
            .map_err(|e| VaultError::Malformed(format!("catalog json: {e}")))?;
        let n = export.catalog.len();
        self.catalog = export.catalog;
        self.quarantine = export.quarantine;
        self.stats.quarantined = self.quarantine.len();
        Ok(n)
    }

    /// Persist the metadata catalog and quarantine list to a storage
    /// backend as one transaction (the durable successor to
    /// [`Self::export_catalog`]); returns the commit sequence number.
    pub fn persist_to(
        &self,
        backend: &mut dyn teleios_store::StorageBackend,
    ) -> std::result::Result<u64, teleios_store::StoreError> {
        crate::persist::save_vault_state(&self.catalog, &self.quarantine, backend)
    }

    /// Restore the catalog and quarantine list persisted by
    /// [`Self::persist_to`], replacing the current ones. Returns
    /// `false` (and changes nothing) if the backend holds no vault
    /// state. Records referring to files missing from the repository
    /// are kept, same as [`Self::import_catalog`].
    pub fn restore_from(
        &mut self,
        backend: &dyn teleios_store::StorageBackend,
    ) -> std::result::Result<bool, teleios_store::StoreError> {
        match crate::persist::load_vault_state(backend)? {
            Some((catalog, quarantine)) => {
                self.catalog = catalog;
                self.quarantine = quarantine;
                self.stats.quarantined = self.quarantine.len();
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The underlying database catalog.
    pub fn database(&self) -> &Catalog {
        &self.db
    }

    /// The repository.
    pub fn repository(&self) -> &Repository {
        &self.repository
    }

    /// Mutable repository access (new files need [`Self::register`]).
    pub fn repository_mut(&mut self) -> &mut Repository {
        &mut self.repository
    }

    /// Current statistics.
    pub fn stats(&self) -> VaultStats {
        self.stats
    }

    /// The ingestion policy.
    pub fn policy(&self) -> IngestionPolicy {
        self.policy
    }

    /// Register one repository file: header parse into the catalog, plus
    /// immediate materialization under the eager policy. A failed header
    /// parse or eager decode quarantines the file and returns the error
    /// (never panics).
    pub fn register(&mut self, name: &str) -> Result<()> {
        let bytes = self
            .repository
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?
            .clone();
        let record = match extract_metadata(name, &bytes) {
            Ok(r) => r,
            Err(e) => {
                self.note_decode_failure(name);
                return Err(e);
            }
        };
        self.catalog.register(record);
        self.stats.registrations += 1;
        if self.policy == IngestionPolicy::Eager {
            self.materialize(name)?;
        }
        Ok(())
    }

    /// Register every file currently in the repository. Files that fail
    /// to decode are quarantined and skipped rather than aborting the
    /// sweep; the count of cleanly registered files is returned.
    pub fn register_all(&mut self) -> Result<usize> {
        let names: Vec<String> = self.repository.names().map(str::to_string).collect();
        let mut clean = 0;
        for name in &names {
            match self.register(name) {
                Ok(()) => clean += 1,
                Err(
                    VaultError::Malformed(_)
                    | VaultError::Corrupt(_)
                    | VaultError::UnknownFormat(_)
                    | VaultError::Quarantined(_),
                ) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(clean)
    }

    /// Database array name for a repository file.
    pub fn array_name(file: &str) -> String {
        format!("vault::{file}")
    }

    /// Fetch the raster array for a file, materializing it if needed.
    /// Errors for `.shp1` files (use [`Self::records_for`]) and for
    /// quarantined files (use [`Self::retry_quarantined`]).
    pub fn array_for(&mut self, name: &str) -> Result<NdArray> {
        if self.quarantine.contains(name) {
            return Err(VaultError::Quarantined(name.to_string()));
        }
        let record = self
            .catalog
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?
            .clone();
        if record.format == "shp1" {
            return Err(VaultError::Malformed(format!(
                "{name} is a geometry set, not a raster"
            )));
        }
        let array_name = Self::array_name(name);
        if self.db.has_array(&array_name) {
            self.stats.cache_hits += 1;
            self.touch(&array_name);
            return self
                .db
                .array(&array_name)
                .map_err(|e| VaultError::Database(e.to_string()));
        }
        self.stats.cache_misses += 1;
        self.materialize(name)?;
        self.db
            .array(&array_name)
            .map_err(|e| VaultError::Database(e.to_string()))
    }

    /// Fetch geometry records for a `.shp1` file (always decoded fresh —
    /// geometry sets are small next to rasters). Decode failures
    /// quarantine the file.
    pub fn records_for(&mut self, name: &str) -> Result<Vec<Shp1Record>> {
        if self.quarantine.contains(name) {
            return Err(VaultError::Quarantined(name.to_string()));
        }
        let bytes = self
            .repository
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?;
        match decode_shp1(bytes) {
            Ok(records) => Ok(records),
            Err(e) => {
                self.note_decode_failure(name);
                Err(e)
            }
        }
    }

    /// Materialize every registered file whose bbox intersects `window`,
    /// returning their names. This is the vault's query-driven loading.
    /// Quarantined files are skipped, not fatal.
    pub fn materialize_window(&mut self, window: &Envelope) -> Result<Vec<String>> {
        let names: Vec<String> = self
            .catalog
            .covering(window)
            .into_iter()
            .map(|r| r.name.clone())
            .collect();
        for name in &names {
            if self.quarantine.contains(name) {
                continue;
            }
            // Reuse the cache path so stats and LRU stay correct.
            let format = self.catalog.get(name).map(|r| r.format.clone());
            if matches!(format.as_deref(), Some(f) if f != "shp1") {
                self.array_for(name)?;
            }
        }
        Ok(names)
    }

    /// Names currently in the quarantine list (sorted).
    pub fn quarantined(&self) -> Vec<String> {
        self.quarantine.iter().cloned().collect()
    }

    /// Whether a file is quarantined.
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.quarantine.contains(name)
    }

    /// Lift a file out of quarantine and re-attempt its decode (e.g.
    /// after the archive operator restored the bytes). Counts towards
    /// `stats.retries`; a failing decode re-quarantines the file.
    pub fn retry_quarantined(&mut self, name: &str) -> Result<()> {
        if self.quarantine.remove(name) {
            self.stats.quarantined = self.quarantine.len();
            self.stats.retries += 1;
        }
        if self.catalog.get(name).is_none() {
            self.register(name)?;
            if self.policy == IngestionPolicy::Eager {
                // register already materialized.
                return Ok(());
            }
        }
        let format = self.catalog.get(name).map(|r| r.format.clone());
        match format.as_deref() {
            Some("shp1") => self.records_for(name).map(|_| ()),
            _ => self.materialize(name),
        }
    }

    /// Record a failed decode: quarantine the file and bump the stats.
    fn note_decode_failure(&mut self, name: &str) {
        self.stats.decode_failures += 1;
        self.quarantine.insert(name.to_string());
        self.stats.quarantined = self.quarantine.len();
    }

    /// Decode one file's payload. Raster formats yield the array to
    /// store; geometry sets are validated and yield `None`.
    fn decode_payload(name: &str, bytes: &bytes::Bytes) -> Result<Option<NdArray>> {
        match FormatKind::from_name(name)? {
            FormatKind::Sev1 => {
                let (h, payload) = decode_sev1(bytes)?;
                NdArray::from_vec(
                    vec![
                        Dim::new("band", h.bands as usize),
                        Dim::new("y", h.rows as usize),
                        Dim::new("x", h.cols as usize),
                    ],
                    payload,
                )
                .map(Some)
                .map_err(|e| VaultError::Database(e.to_string()))
            }
            FormatKind::Gtf1 => {
                let (h, payload) = decode_gtf1(bytes)?;
                NdArray::from_vec(
                    vec![Dim::new("y", h.rows as usize), Dim::new("x", h.cols as usize)],
                    payload,
                )
                .map(Some)
                .map_err(|e| VaultError::Database(e.to_string()))
            }
            FormatKind::Shp1 => decode_shp1(bytes).map(|_| None),
        }
    }

    /// Convert one file's payload into a database array. Decode failures
    /// quarantine the file instead of propagating garbage.
    fn materialize(&mut self, name: &str) -> Result<()> {
        let bytes = self
            .repository
            .get(name)
            .ok_or_else(|| VaultError::UnknownFile(name.to_string()))?
            .clone();
        let array = match Self::decode_payload(name, &bytes) {
            Ok(Some(array)) => array,
            Ok(None) => return Ok(()), // validated geometry set
            Err(e) => {
                if matches!(
                    e,
                    VaultError::Malformed(_) | VaultError::Corrupt(_) | VaultError::UnknownFormat(_)
                ) {
                    self.note_decode_failure(name);
                }
                return Err(e);
            }
        };
        let array_name = Self::array_name(name);
        self.db.put_array(&array_name, array);
        self.stats.materializations += 1;
        self.touch(&array_name);
        self.evict_if_needed();
        Ok(())
    }

    fn touch(&mut self, array_name: &str) {
        if let Some(pos) = self.lru.iter().position(|n| n == array_name) {
            self.lru.remove(pos);
        }
        self.lru.push(array_name.to_string());
    }

    fn evict_if_needed(&mut self) {
        if self.cache_capacity == 0 {
            return;
        }
        while self.lru.len() > self.cache_capacity {
            let victim = self.lru.remove(0);
            if self.db.drop_array(&victim).is_ok() {
                self.stats.evictions += 1;
            }
        }
    }

    /// Number of arrays currently resident.
    pub fn resident_arrays(&self) -> usize {
        self.lru.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_sev1, encode_shp1, Sev1Header};
    use teleios_geo::Coord;

    fn scene_bytes(rows: u32, cols: u32, bbox: (f64, f64, f64, f64), fill: f64) -> bytes::Bytes {
        let h = Sev1Header {
            rows,
            cols,
            bands: 1,
            acquisition: "2007-08-25T12:00:00Z".into(),
            bbox,
        };
        encode_sev1(&h, &vec![fill; (rows * cols) as usize]).unwrap()
    }

    fn vault_with(n: usize, policy: IngestionPolicy, cache: usize) -> DataVault {
        let mut repo = Repository::new();
        for i in 0..n {
            let x = i as f64;
            repo.put(
                format!("scene-{i:03}.sev1"),
                scene_bytes(4, 4, (x, 0.0, x + 1.0, 1.0), i as f64),
            );
        }
        let mut v = DataVault::new(repo, Catalog::new(), policy, cache);
        v.register_all().unwrap();
        v
    }

    #[test]
    fn lazy_defers_materialization() {
        let mut v = vault_with(10, IngestionPolicy::Lazy, 0);
        assert_eq!(v.stats().registrations, 10);
        assert_eq!(v.stats().materializations, 0);
        let a = v.array_for("scene-003.sev1").unwrap();
        assert_eq!(a.shape(), vec![1, 4, 4]);
        assert_eq!(a.data()[0], 3.0);
        assert_eq!(v.stats().materializations, 1);
        assert_eq!(v.stats().cache_misses, 1);
    }

    #[test]
    fn eager_materializes_everything() {
        let v = vault_with(10, IngestionPolicy::Eager, 0);
        assert_eq!(v.stats().materializations, 10);
        assert_eq!(v.resident_arrays(), 10);
    }

    #[test]
    fn second_access_hits_cache() {
        let mut v = vault_with(5, IngestionPolicy::Lazy, 0);
        v.array_for("scene-001.sev1").unwrap();
        v.array_for("scene-001.sev1").unwrap();
        assert_eq!(v.stats().materializations, 1);
        assert_eq!(v.stats().cache_hits, 1);
    }

    #[test]
    fn cache_evicts_lru() {
        let mut v = vault_with(5, IngestionPolicy::Lazy, 2);
        v.array_for("scene-000.sev1").unwrap();
        v.array_for("scene-001.sev1").unwrap();
        v.array_for("scene-002.sev1").unwrap(); // evicts 000
        assert_eq!(v.resident_arrays(), 2);
        assert_eq!(v.stats().evictions, 1);
        // Re-access of the evicted scene re-materializes.
        v.array_for("scene-000.sev1").unwrap();
        assert_eq!(v.stats().materializations, 4);
    }

    #[test]
    fn lru_touch_on_hit() {
        let mut v = vault_with(3, IngestionPolicy::Lazy, 2);
        v.array_for("scene-000.sev1").unwrap();
        v.array_for("scene-001.sev1").unwrap();
        v.array_for("scene-000.sev1").unwrap(); // refresh 000
        v.array_for("scene-002.sev1").unwrap(); // evicts 001, not 000
        assert!(v.database().has_array(&DataVault::array_name("scene-000.sev1")));
        assert!(!v.database().has_array(&DataVault::array_name("scene-001.sev1")));
    }

    #[test]
    fn materialize_window_touches_only_covering() {
        let mut v = vault_with(10, IngestionPolicy::Lazy, 0);
        let window = Envelope::new(Coord::new(2.5, 0.2), Coord::new(4.5, 0.8));
        let names = v.materialize_window(&window).unwrap();
        assert_eq!(names.len(), 3); // scenes 2, 3, 4
        assert_eq!(v.stats().materializations, 3);
    }

    #[test]
    fn shp1_records_roundtrip() {
        let mut repo = Repository::new();
        repo.put(
            "hotspots.shp1",
            encode_shp1(&[Shp1Record { wkt: "POINT (1 2)".into(), label: "fire".into() }]),
        );
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        v.register_all().unwrap();
        let recs = v.records_for("hotspots.shp1").unwrap();
        assert_eq!(recs.len(), 1);
        assert!(v.array_for("hotspots.shp1").is_err());
    }

    #[test]
    fn unknown_file_errors() {
        let mut v = vault_with(1, IngestionPolicy::Lazy, 0);
        assert!(matches!(v.array_for("nope.sev1"), Err(VaultError::UnknownFile(_))));
        assert!(matches!(v.register("nope.sev1"), Err(VaultError::UnknownFile(_))));
    }

    #[test]
    fn unregistered_file_not_found_by_array_for() {
        let mut repo = Repository::new();
        repo.put("late.sev1", scene_bytes(2, 2, (0.0, 0.0, 1.0, 1.0), 1.0));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        assert!(v.array_for("late.sev1").is_err());
        v.register("late.sev1").unwrap();
        assert!(v.array_for("late.sev1").is_ok());
    }

    #[test]
    fn catalog_survives_export_import() {
        let v = vault_with(5, IngestionPolicy::Lazy, 0);
        let json = v.export_catalog();
        // A fresh vault over the same repository restores discovery
        // without re-registering.
        let mut v2 = DataVault::new(v.repository().clone(), Catalog::new(), IngestionPolicy::Lazy, 0);
        assert_eq!(v2.import_catalog(&json).unwrap(), 5);
        assert_eq!(v2.catalog().len(), 5);
        assert_eq!(v2.stats().registrations, 0); // no header parses needed
        let a = v2.array_for("scene-002.sev1").unwrap();
        assert_eq!(a.data()[0], 2.0);
        assert!(v2.import_catalog("garbage").is_err());
    }

    #[test]
    fn quarantine_survives_export_import() {
        let mut repo = Repository::new();
        repo.put("good.sev1", scene_bytes(4, 4, (0.0, 0.0, 1.0, 1.0), 1.0));
        repo.put("bad.sev1", corrupt(&scene_bytes(4, 4, (1.0, 0.0, 2.0, 1.0), 2.0)));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        v.register_all().unwrap();
        assert!(v.array_for("bad.sev1").is_err());
        assert!(v.is_quarantined("bad.sev1"));

        let json = v.export_catalog();
        let mut v2 =
            DataVault::new(v.repository().clone(), Catalog::new(), IngestionPolicy::Lazy, 0);
        assert_eq!(v2.import_catalog(&json).unwrap(), 2);
        // The restored vault fences the bad file off immediately,
        // without re-decoding it first.
        assert!(v2.is_quarantined("bad.sev1"));
        assert_eq!(v2.stats().quarantined, 1);
        assert!(matches!(v2.array_for("bad.sev1"), Err(VaultError::Quarantined(_))));
        assert_eq!(v2.stats().decode_failures, 0);
        assert!(v2.array_for("good.sev1").is_ok());
    }

    #[test]
    fn bare_catalog_import_clears_quarantine() {
        let mut repo = Repository::new();
        repo.put("bad.sev1", corrupt(&scene_bytes(4, 4, (0.0, 0.0, 1.0, 1.0), 2.0)));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        v.register_all().unwrap();
        let _ = v.array_for("bad.sev1");
        assert!(v.is_quarantined("bad.sev1"));
        // A pre-quarantine-persistence export (the bare catalog JSON)
        // imports with an empty quarantine list.
        let bare = v.catalog().to_json();
        assert_eq!(v.import_catalog(&bare).unwrap(), 1);
        assert!(!v.is_quarantined("bad.sev1"));
        assert_eq!(v.stats().quarantined, 0);
    }

    fn corrupt(bytes: &bytes::Bytes) -> bytes::Bytes {
        let mut raw = bytes.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x01; // bit-flip in the payload region
        bytes::Bytes::from(raw)
    }

    #[test]
    fn lazy_corrupt_payload_quarantined_not_panicking() {
        let mut repo = Repository::new();
        repo.put("good.sev1", scene_bytes(4, 4, (0.0, 0.0, 1.0, 1.0), 1.0));
        repo.put("bad.sev1", corrupt(&scene_bytes(4, 4, (1.0, 0.0, 2.0, 1.0), 2.0)));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        // Registration is header-only, so both files register cleanly.
        assert_eq!(v.register_all().unwrap(), 2);
        // First access detects the corruption and quarantines.
        assert!(matches!(v.array_for("bad.sev1"), Err(VaultError::Corrupt(_))));
        assert!(v.is_quarantined("bad.sev1"));
        assert_eq!(v.stats().decode_failures, 1);
        assert_eq!(v.stats().quarantined, 1);
        // Subsequent accesses short-circuit without re-decoding.
        assert!(matches!(v.array_for("bad.sev1"), Err(VaultError::Quarantined(_))));
        assert_eq!(v.stats().decode_failures, 1);
        // Healthy files are unaffected.
        assert!(v.array_for("good.sev1").is_ok());
    }

    #[test]
    fn eager_corrupt_payload_quarantined_not_panicking() {
        let mut repo = Repository::new();
        repo.put("good.sev1", scene_bytes(4, 4, (0.0, 0.0, 1.0, 1.0), 1.0));
        repo.put("bad.sev1", corrupt(&scene_bytes(4, 4, (1.0, 0.0, 2.0, 1.0), 2.0)));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Eager, 0);
        // The sweep survives the corrupt file: one clean registration.
        assert_eq!(v.register_all().unwrap(), 1);
        assert!(v.is_quarantined("bad.sev1"));
        assert_eq!(v.quarantined(), vec!["bad.sev1".to_string()]);
        assert_eq!(v.stats().materializations, 1);
        assert!(matches!(v.array_for("bad.sev1"), Err(VaultError::Quarantined(_))));
    }

    #[test]
    fn truncated_header_quarantined_under_both_policies() {
        for policy in [IngestionPolicy::Lazy, IngestionPolicy::Eager] {
            let mut repo = Repository::new();
            let full = scene_bytes(4, 4, (0.0, 0.0, 1.0, 1.0), 1.0);
            repo.put("cut.sev1", full.slice(0..9)); // magic + half the checksum
            let mut v = DataVault::new(repo, Catalog::new(), policy, 0);
            assert_eq!(v.register_all().unwrap(), 0);
            assert!(v.is_quarantined("cut.sev1"), "policy {policy:?}");
            assert_eq!(v.stats().decode_failures, 1);
        }
    }

    #[test]
    fn retry_quarantined_after_repair() {
        let good = scene_bytes(4, 4, (0.0, 0.0, 1.0, 1.0), 7.0);
        let mut repo = Repository::new();
        repo.put("flaky.sev1", corrupt(&good));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        v.register_all().unwrap();
        assert!(v.array_for("flaky.sev1").is_err());
        assert!(v.is_quarantined("flaky.sev1"));
        // Retrying without repairing fails and re-quarantines.
        assert!(v.retry_quarantined("flaky.sev1").is_err());
        assert!(v.is_quarantined("flaky.sev1"));
        // Repair the bytes, retry, and the file is healthy again.
        v.repository_mut().put("flaky.sev1", good);
        v.retry_quarantined("flaky.sev1").unwrap();
        assert!(!v.is_quarantined("flaky.sev1"));
        let a = v.array_for("flaky.sev1").unwrap();
        assert_eq!(a.data()[0], 7.0);
        assert_eq!(v.stats().retries, 2);
        assert_eq!(v.stats().quarantined, 0);
    }

    #[test]
    fn corrupt_shp1_records_quarantined() {
        let clean = encode_shp1(&[Shp1Record { wkt: "POINT (1 2)".into(), label: "fire".into() }]);
        let mut repo = Repository::new();
        repo.put("geoms.shp1", corrupt(&clean));
        let mut v = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 0);
        // Header (record count) parses, so registration succeeds...
        assert_eq!(v.register_all().unwrap(), 1);
        // ...but record access detects corruption and quarantines.
        assert!(matches!(v.records_for("geoms.shp1"), Err(VaultError::Corrupt(_))));
        assert!(v.is_quarantined("geoms.shp1"));
        assert!(matches!(v.records_for("geoms.shp1"), Err(VaultError::Quarantined(_))));
    }

    #[test]
    fn eager_vs_lazy_cost_shape() {
        // The E5 claim in miniature: with 10% access, lazy does ~10% of
        // the conversions eager does.
        let mut lazy = vault_with(50, IngestionPolicy::Lazy, 0);
        for i in 0..5 {
            lazy.array_for(&format!("scene-{:03}.sev1", i * 10)).unwrap();
        }
        let eager = vault_with(50, IngestionPolicy::Eager, 0);
        assert_eq!(lazy.stats().materializations, 5);
        assert_eq!(eager.stats().materializations, 50);
    }
}
