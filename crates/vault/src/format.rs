//! Synthetic external file formats.
//!
//! The paper's archive holds proprietary formats (HDF, native SEVIRI,
//! GeoTIFF, ESRI shapefiles). We implement three binary stand-ins that
//! exercise the same code paths: a magic header that is cheap to parse
//! (metadata extraction) and a payload that is expensive relative to the
//! header (full materialization).
//!
//! Every format carries a 64-bit FNV-1a payload checksum right after the
//! magic, so bit rot in the archive is detected at materialization time
//! ([`VaultError::Corrupt`]) instead of silently feeding garbage pixels
//! into the processing chains. Header-only parses skip verification —
//! registration stays cheap; corruption surfaces on first payload access,
//! matching the vault's just-in-time philosophy.

use crate::{Result, VaultError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// 64-bit FNV-1a hash used as the payload checksum of all three formats.
pub fn payload_checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn verify_checksum(kind: &str, expected: u64, payload: &[u8]) -> Result<()> {
    let actual = payload_checksum(payload);
    if actual != expected {
        return Err(VaultError::Corrupt(format!(
            "{kind} payload checksum mismatch: header says {expected:#018x}, payload hashes to {actual:#018x}"
        )));
    }
    Ok(())
}

/// Identifies an external format by its magic / extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// SEVIRI-like raw multiband raster (`.sev1`).
    Sev1,
    /// GeoTIFF-like georeferenced single-band product (`.gtf1`).
    Gtf1,
    /// Shapefile-like WKT geometry set (`.shp1`).
    Shp1,
}

impl FormatKind {
    /// Detect a format from a file name extension.
    pub fn from_name(name: &str) -> Result<FormatKind> {
        let ext = name.rsplit('.').next().unwrap_or("");
        match ext.to_ascii_lowercase().as_str() {
            "sev1" => Ok(FormatKind::Sev1),
            "gtf1" => Ok(FormatKind::Gtf1),
            "shp1" => Ok(FormatKind::Shp1),
            other => Err(VaultError::UnknownFormat(format!("{name} (.{other})"))),
        }
    }

    /// The four-byte magic.
    pub fn magic(&self) -> &'static [u8; 4] {
        match self {
            FormatKind::Sev1 => b"SEV1",
            FormatKind::Gtf1 => b"GTF1",
            FormatKind::Shp1 => b"SHP1",
        }
    }
}

/// Header of a `.sev1` raster file.
#[derive(Debug, Clone, PartialEq)]
pub struct Sev1Header {
    /// Raster rows.
    pub rows: u32,
    /// Raster columns.
    pub cols: u32,
    /// Spectral bands.
    pub bands: u32,
    /// Acquisition instant (ISO-8601).
    pub acquisition: String,
    /// Geographic bounding box (min_lon, min_lat, max_lon, max_lat).
    pub bbox: (f64, f64, f64, f64),
}

/// Encode a `.sev1` file: header plus row-major band-major f64 payload.
pub fn encode_sev1(header: &Sev1Header, payload: &[f64]) -> Result<Bytes> {
    let expect = (header.rows * header.cols * header.bands) as usize;
    if payload.len() != expect {
        return Err(VaultError::Malformed(format!(
            "payload has {} cells, header implies {expect}",
            payload.len()
        )));
    }
    let mut body = BytesMut::with_capacity(payload.len() * 8);
    for &v in payload {
        body.put_f64(v);
    }
    let mut out = BytesMut::with_capacity(72 + body.len());
    out.put_slice(FormatKind::Sev1.magic());
    out.put_u64(payload_checksum(&body));
    out.put_u32(header.rows);
    out.put_u32(header.cols);
    out.put_u32(header.bands);
    put_string(&mut out, &header.acquisition);
    out.put_f64(header.bbox.0);
    out.put_f64(header.bbox.1);
    out.put_f64(header.bbox.2);
    out.put_f64(header.bbox.3);
    out.put_slice(&body);
    Ok(out.freeze())
}

/// Parse only the header of a `.sev1` file (cheap metadata extraction;
/// the payload checksum is NOT verified here).
pub fn decode_sev1_header(bytes: &Bytes) -> Result<Sev1Header> {
    let mut buf = bytes.clone();
    check_magic(&mut buf, FormatKind::Sev1)?;
    if buf.remaining() < 8 + 12 {
        return Err(VaultError::Malformed("truncated sev1 header".into()));
    }
    let _checksum = buf.get_u64();
    let rows = buf.get_u32();
    let cols = buf.get_u32();
    let bands = buf.get_u32();
    let acquisition = get_string(&mut buf)?;
    if buf.remaining() < 32 {
        return Err(VaultError::Malformed("truncated sev1 bbox".into()));
    }
    let bbox = (buf.get_f64(), buf.get_f64(), buf.get_f64(), buf.get_f64());
    Ok(Sev1Header { rows, cols, bands, acquisition, bbox })
}

/// Parse the full `.sev1` file: header plus checksum-verified payload.
pub fn decode_sev1(bytes: &Bytes) -> Result<(Sev1Header, Vec<f64>)> {
    let header = decode_sev1_header(bytes)?;
    let header_len = 4 + 8 + 12 + 4 + header.acquisition.len() + 32;
    let n = (header.rows as usize) * (header.cols as usize) * (header.bands as usize);
    if bytes.len() < header_len + n * 8 {
        return Err(VaultError::Malformed(format!(
            "payload truncated: need {} bytes, have {}",
            n * 8,
            bytes.len().saturating_sub(header_len)
        )));
    }
    let expected = bytes.slice(4..12).get_u64();
    let mut buf = bytes.slice(header_len..header_len + n * 8);
    verify_checksum("sev1", expected, &buf)?;
    let mut payload = Vec::with_capacity(n);
    for _ in 0..n {
        payload.push(buf.get_f64());
    }
    Ok((header, payload))
}

/// Header of a `.gtf1` georeferenced product.
#[derive(Debug, Clone, PartialEq)]
pub struct Gtf1Header {
    /// Raster rows.
    pub rows: u32,
    /// Raster columns.
    pub cols: u32,
    /// Affine geotransform (origin_x, origin_y, pixel_w, pixel_h).
    pub transform: (f64, f64, f64, f64),
    /// EPSG code of the CRS.
    pub epsg: u32,
}

impl Gtf1Header {
    /// Geographic bounding box implied by the transform.
    pub fn bbox(&self) -> (f64, f64, f64, f64) {
        let (ox, oy, pw, ph) = self.transform;
        let x2 = ox + pw * self.cols as f64;
        let y2 = oy - ph * self.rows as f64;
        (ox.min(x2), oy.min(y2), ox.max(x2), oy.max(y2))
    }
}

/// Encode a `.gtf1` file.
pub fn encode_gtf1(header: &Gtf1Header, payload: &[f64]) -> Result<Bytes> {
    let expect = (header.rows * header.cols) as usize;
    if payload.len() != expect {
        return Err(VaultError::Malformed(format!(
            "payload has {} cells, header implies {expect}",
            payload.len()
        )));
    }
    let mut body = BytesMut::with_capacity(payload.len() * 8);
    for &v in payload {
        body.put_f64(v);
    }
    let mut out = BytesMut::with_capacity(72 + body.len());
    out.put_slice(FormatKind::Gtf1.magic());
    out.put_u64(payload_checksum(&body));
    out.put_u32(header.rows);
    out.put_u32(header.cols);
    out.put_u32(header.epsg);
    out.put_f64(header.transform.0);
    out.put_f64(header.transform.1);
    out.put_f64(header.transform.2);
    out.put_f64(header.transform.3);
    out.put_slice(&body);
    Ok(out.freeze())
}

/// Parse only the header of a `.gtf1` file (checksum not verified).
pub fn decode_gtf1_header(bytes: &Bytes) -> Result<Gtf1Header> {
    let mut buf = bytes.clone();
    check_magic(&mut buf, FormatKind::Gtf1)?;
    if buf.remaining() < 8 + 12 + 32 {
        return Err(VaultError::Malformed("truncated gtf1 header".into()));
    }
    let _checksum = buf.get_u64();
    let rows = buf.get_u32();
    let cols = buf.get_u32();
    let epsg = buf.get_u32();
    let transform = (buf.get_f64(), buf.get_f64(), buf.get_f64(), buf.get_f64());
    Ok(Gtf1Header { rows, cols, transform, epsg })
}

/// Parse the full `.gtf1` file: header plus checksum-verified payload.
pub fn decode_gtf1(bytes: &Bytes) -> Result<(Gtf1Header, Vec<f64>)> {
    let header = decode_gtf1_header(bytes)?;
    let header_len = 4 + 8 + 12 + 32;
    let n = (header.rows as usize) * (header.cols as usize);
    if bytes.len() < header_len + n * 8 {
        return Err(VaultError::Malformed("gtf1 payload truncated".into()));
    }
    let expected = bytes.slice(4..12).get_u64();
    let mut buf = bytes.slice(header_len..header_len + n * 8);
    verify_checksum("gtf1", expected, &buf)?;
    let mut payload = Vec::with_capacity(n);
    for _ in 0..n {
        payload.push(buf.get_f64());
    }
    Ok((header, payload))
}

/// A `.shp1` record: WKT geometry plus a label attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Shp1Record {
    /// Geometry in WKT.
    pub wkt: String,
    /// Feature label / attribute.
    pub label: String,
}

/// Encode a `.shp1` file.
pub fn encode_shp1(records: &[Shp1Record]) -> Bytes {
    let mut body = BytesMut::new();
    for r in records {
        put_string(&mut body, &r.wkt);
        put_string(&mut body, &r.label);
    }
    let mut out = BytesMut::with_capacity(16 + body.len());
    out.put_slice(FormatKind::Shp1.magic());
    out.put_u64(payload_checksum(&body));
    out.put_u32(records.len() as u32);
    out.put_slice(&body);
    out.freeze()
}

/// Parse a `.shp1` file. The "header" is the record count; record data
/// doubles as payload and is checksum-verified before parsing.
pub fn decode_shp1(bytes: &Bytes) -> Result<Vec<Shp1Record>> {
    let mut buf = bytes.clone();
    check_magic(&mut buf, FormatKind::Shp1)?;
    if buf.remaining() < 8 + 4 {
        return Err(VaultError::Malformed("truncated shp1 header".into()));
    }
    let expected = buf.get_u64();
    let n = buf.get_u32() as usize;
    verify_checksum("shp1", expected, &buf)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let wkt = get_string(&mut buf)?;
        let label = get_string(&mut buf)?;
        out.push(Shp1Record { wkt, label });
    }
    Ok(out)
}

/// Record count of a `.shp1` file without decoding (or verifying) records.
pub fn decode_shp1_count(bytes: &Bytes) -> Result<u32> {
    let mut buf = bytes.clone();
    check_magic(&mut buf, FormatKind::Shp1)?;
    if buf.remaining() < 8 + 4 {
        return Err(VaultError::Malformed("truncated shp1 header".into()));
    }
    let _checksum = buf.get_u64();
    Ok(buf.get_u32())
}

fn check_magic(buf: &mut Bytes, kind: FormatKind) -> Result<()> {
    if buf.remaining() < 4 {
        return Err(VaultError::Malformed("file too short for magic".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != kind.magic() {
        return Err(VaultError::Malformed(format!(
            "bad magic {:?}, expected {:?}",
            magic,
            kind.magic()
        )));
    }
    Ok(())
}

fn put_string(out: &mut BytesMut, s: &str) {
    out.put_u32(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn get_string(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(VaultError::Malformed("truncated string length".into()));
    }
    let len = buf.get_u32() as usize;
    if buf.remaining() < len {
        return Err(VaultError::Malformed("truncated string body".into()));
    }
    let mut raw = vec![0u8; len];
    buf.copy_to_slice(&mut raw);
    String::from_utf8(raw).map_err(|e| VaultError::Malformed(format!("bad utf8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sev1_header() -> Sev1Header {
        Sev1Header {
            rows: 2,
            cols: 3,
            bands: 2,
            acquisition: "2007-08-25T12:00:00Z".into(),
            bbox: (20.0, 35.0, 25.0, 40.0),
        }
    }

    #[test]
    fn format_detection() {
        assert_eq!(FormatKind::from_name("a.sev1").unwrap(), FormatKind::Sev1);
        assert_eq!(FormatKind::from_name("b.GTF1").unwrap(), FormatKind::Gtf1);
        assert_eq!(FormatKind::from_name("c.shp1").unwrap(), FormatKind::Shp1);
        assert!(FormatKind::from_name("d.tif").is_err());
    }

    #[test]
    fn sev1_roundtrip() {
        let h = sev1_header();
        let payload: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let bytes = encode_sev1(&h, &payload).unwrap();
        let (h2, p2) = decode_sev1(&bytes).unwrap();
        assert_eq!(h, h2);
        assert_eq!(payload, p2);
    }

    #[test]
    fn sev1_header_only_is_cheap() {
        let h = sev1_header();
        let bytes = encode_sev1(&h, &[0.0; 12]).unwrap();
        let h2 = decode_sev1_header(&bytes).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn sev1_payload_size_checked() {
        assert!(encode_sev1(&sev1_header(), &[1.0, 2.0]).is_err());
    }

    #[test]
    fn sev1_truncated_payload_rejected() {
        let h = sev1_header();
        let bytes = encode_sev1(&h, &[0.0; 12]).unwrap();
        let cut = bytes.slice(0..bytes.len() - 8);
        assert!(decode_sev1(&cut).is_err());
        // The header still parses.
        assert!(decode_sev1_header(&cut).is_ok());
    }

    #[test]
    fn wrong_magic_rejected() {
        let h = sev1_header();
        let bytes = encode_sev1(&h, &[0.0; 12]).unwrap();
        assert!(decode_gtf1_header(&bytes).is_err());
        assert!(decode_shp1(&bytes).is_err());
    }

    #[test]
    fn gtf1_roundtrip_and_bbox() {
        let h = Gtf1Header {
            rows: 10,
            cols: 20,
            transform: (21.0, 40.0, 0.1, 0.1),
            epsg: 4326,
        };
        let payload = vec![1.5; 200];
        let bytes = encode_gtf1(&h, &payload).unwrap();
        let (h2, p2) = decode_gtf1(&bytes).unwrap();
        assert_eq!(h, h2);
        assert_eq!(p2.len(), 200);
        let bbox = h.bbox();
        assert_eq!(bbox, (21.0, 39.0, 23.0, 40.0));
    }

    #[test]
    fn shp1_roundtrip() {
        let records = vec![
            Shp1Record { wkt: "POINT (1 2)".into(), label: "hotspot".into() },
            Shp1Record { wkt: "POLYGON ((0 0, 1 0, 1 1, 0 0))".into(), label: "burnt".into() },
        ];
        let bytes = encode_shp1(&records);
        assert_eq!(decode_shp1(&bytes).unwrap(), records);
        assert_eq!(decode_shp1_count(&bytes).unwrap(), 2);
    }

    #[test]
    fn shp1_empty() {
        let bytes = encode_shp1(&[]);
        assert!(decode_shp1(&bytes).unwrap().is_empty());
    }

    #[test]
    fn garbage_rejected_everywhere() {
        let garbage = Bytes::from_static(b"xx");
        assert!(decode_sev1_header(&garbage).is_err());
        assert!(decode_gtf1_header(&garbage).is_err());
        assert!(decode_shp1(&garbage).is_err());
    }

    #[test]
    fn checksum_is_stable_fnv1a() {
        assert_eq!(payload_checksum(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(payload_checksum(b"a"), payload_checksum(b"b"));
    }

    #[test]
    fn sev1_bit_flip_detected_as_corrupt() {
        let h = sev1_header();
        let payload: Vec<f64> = (0..12).map(|v| v as f64).collect();
        let bytes = encode_sev1(&h, &payload).unwrap();
        let mut raw = bytes.to_vec();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        let corrupt = Bytes::from(raw);
        // The header still parses (checksums are not verified there)...
        assert!(decode_sev1_header(&corrupt).is_ok());
        // ...but full materialization reports corruption, not garbage data.
        assert!(matches!(decode_sev1(&corrupt), Err(VaultError::Corrupt(_))));
    }

    #[test]
    fn gtf1_bit_flip_detected_as_corrupt() {
        let h = Gtf1Header { rows: 4, cols: 4, transform: (21.0, 40.0, 0.1, 0.1), epsg: 4326 };
        let bytes = encode_gtf1(&h, &vec![2.5; 16]).unwrap();
        let mut raw = bytes.to_vec();
        raw[60] ^= 0x80; // a payload byte (header is 56 bytes)
        assert!(matches!(decode_gtf1(&Bytes::from(raw)), Err(VaultError::Corrupt(_))));
    }

    #[test]
    fn shp1_bit_flip_detected_as_corrupt() {
        let bytes = encode_shp1(&[Shp1Record {
            wkt: "POINT (1 2)".into(),
            label: "hotspot".into(),
        }]);
        let mut raw = bytes.to_vec();
        raw[20] ^= 0x04; // inside the first record's WKT
        let corrupt = Bytes::from(raw);
        assert!(decode_shp1_count(&corrupt).is_ok());
        assert!(matches!(decode_shp1(&corrupt), Err(VaultError::Corrupt(_))));
    }
}
