//! Persistence of the vault's metadata catalog and quarantine list
//! onto a `teleios-store` [`StorageBackend`] — the binary successor
//! to the legacy JSON export (which remains for portal interchange).
//!
//! Keyspace `vault/catalog`: one entry per registered file, key =
//! file name bytes, value = a compact [`FileRecord`] encoding (name,
//! format, varint size, a presence flag + four raw-bit `f64`s for
//! the bbox, a presence flag + string for the acquisition instant,
//! varint-prefixed shape items). Keyspace `vault/quarantine`: one
//! empty-valued entry per fenced-off file.
//!
//! Per-record keys (rather than one big page) mean an ingest that
//! registers a single scene commits a WAL record proportional to
//! that scene, not to the whole archive.

use std::collections::BTreeSet;

use teleios_store::codec::{put_f64, put_str, put_varint, Reader};
use teleios_store::{StorageBackend, StoreError};

use crate::catalog::{FileRecord, VaultCatalog};

/// Keyspace holding one entry per catalog record.
pub const CATALOG_KEYSPACE: &str = "vault/catalog";
/// Keyspace holding one empty entry per quarantined file.
pub const QUARANTINE_KEYSPACE: &str = "vault/quarantine";

fn encode_record(record: &FileRecord) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &record.name);
    put_str(&mut out, &record.format);
    put_varint(&mut out, record.size_bytes as u64);
    match record.bbox {
        Some((a, b, c, d)) => {
            out.push(1);
            put_f64(&mut out, a);
            put_f64(&mut out, b);
            put_f64(&mut out, c);
            put_f64(&mut out, d);
        }
        None => out.push(0),
    }
    match &record.acquisition {
        Some(acq) => {
            out.push(1);
            put_str(&mut out, acq);
        }
        None => out.push(0),
    }
    put_varint(&mut out, record.shape.len() as u64);
    for dim in &record.shape {
        put_varint(&mut out, *dim as u64);
    }
    out
}

fn decode_record(bytes: &[u8]) -> Result<FileRecord, StoreError> {
    let mut r = Reader::new(bytes);
    let name = r.string()?;
    let format = r.string()?;
    let size_bytes = r.varint()? as usize;
    let bbox = match r.u8()? {
        0 => None,
        1 => Some((r.f64()?, r.f64()?, r.f64()?, r.f64()?)),
        other => {
            return Err(StoreError::Codec(format!("bad bbox flag {other}")));
        }
    };
    let acquisition = match r.u8()? {
        0 => None,
        1 => Some(r.string()?),
        other => {
            return Err(StoreError::Codec(format!("bad acquisition flag {other}")));
        }
    };
    let n_dims = r.varint()?;
    let mut shape = Vec::with_capacity(n_dims as usize);
    for _ in 0..n_dims {
        let dim = r.varint()?;
        shape.push(u32::try_from(dim).map_err(|_| {
            StoreError::Codec(format!("shape dimension {dim} out of range"))
        })?);
    }
    if !r.is_empty() {
        return Err(StoreError::Codec("trailing bytes after file record".into()));
    }
    Ok(FileRecord { name, format, size_bytes, bbox, acquisition, shape })
}

/// Stage the catalog and quarantine as puts/deletes inside the
/// backend's open transaction, removing entries for files no longer
/// registered or no longer quarantined.
pub fn persist_vault_state(
    catalog: &VaultCatalog,
    quarantine: &BTreeSet<String>,
    backend: &mut dyn StorageBackend,
) -> Result<(), StoreError> {
    for (key, _) in backend.scan(CATALOG_KEYSPACE)? {
        let still_here =
            std::str::from_utf8(&key).is_ok_and(|name| catalog.get(name).is_some());
        if !still_here {
            backend.delete(CATALOG_KEYSPACE, &key)?;
        }
    }
    for record in catalog.iter() {
        backend.put(CATALOG_KEYSPACE, record.name.as_bytes(), &encode_record(record))?;
    }
    for (key, _) in backend.scan(QUARANTINE_KEYSPACE)? {
        let still_fenced =
            std::str::from_utf8(&key).is_ok_and(|name| quarantine.contains(name));
        if !still_fenced {
            backend.delete(QUARANTINE_KEYSPACE, &key)?;
        }
    }
    for name in quarantine {
        backend.put(QUARANTINE_KEYSPACE, name.as_bytes(), &[])?;
    }
    Ok(())
}

/// Persist catalog + quarantine as one transaction; returns the
/// commit sequence number.
pub fn save_vault_state(
    catalog: &VaultCatalog,
    quarantine: &BTreeSet<String>,
    backend: &mut dyn StorageBackend,
) -> Result<u64, StoreError> {
    backend.begin()?;
    // A failed put must not leave the transaction open on the shared
    // backend (txn-leak): roll back before propagating.
    if let Err(e) = persist_vault_state(catalog, quarantine, backend) {
        backend.rollback();
        return Err(e);
    }
    backend.commit()
}

/// Load the state persisted by [`persist_vault_state`]; `Ok(None)`
/// if nothing was ever persisted.
pub fn load_vault_state(
    backend: &dyn StorageBackend,
) -> Result<Option<(VaultCatalog, BTreeSet<String>)>, StoreError> {
    let records = backend.scan(CATALOG_KEYSPACE)?;
    let fenced = backend.scan(QUARANTINE_KEYSPACE)?;
    if records.is_empty() && fenced.is_empty() {
        return Ok(None);
    }
    let mut catalog = VaultCatalog::new();
    for (_, value) in records {
        catalog.register(decode_record(&value)?);
    }
    let mut quarantine = BTreeSet::new();
    for (key, _) in fenced {
        let name = String::from_utf8(key)
            .map_err(|_| StoreError::Codec("non-utf8 quarantine entry".into()))?;
        quarantine.insert(name);
    }
    Ok(Some((catalog, quarantine)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_store::{DurableBackend, DurableConfig, MemMedium, MemoryBackend};

    fn sample_record(name: &str) -> FileRecord {
        FileRecord {
            name: name.to_string(),
            format: "sev1".into(),
            size_bytes: 123_456,
            bbox: Some((20.0, 34.5, 28.25, 41.75)),
            acquisition: Some("2007-08-25T12:15:00Z".into()),
            shape: vec![4, 1024, 1024],
        }
    }

    fn sample_state() -> (VaultCatalog, BTreeSet<String>) {
        let mut catalog = VaultCatalog::new();
        catalog.register(sample_record("msg2-0825.sev1"));
        catalog.register(FileRecord {
            name: "landmass.shp1".into(),
            format: "shp1".into(),
            size_bytes: 42,
            bbox: None,
            acquisition: None,
            shape: vec![],
        });
        let mut quarantine = BTreeSet::new();
        quarantine.insert("corrupt-scene.sev1".to_string());
        (catalog, quarantine)
    }

    fn assert_catalogs_equal(a: &VaultCatalog, b: &VaultCatalog) {
        assert_eq!(a.len(), b.len());
        let ra: Vec<_> = a.iter().collect();
        let rb: Vec<_> = b.iter().collect();
        assert_eq!(ra, rb);
    }

    #[test]
    fn round_trip_through_memory_backend() {
        let (catalog, quarantine) = sample_state();
        let mut backend = MemoryBackend::new();
        save_vault_state(&catalog, &quarantine, &mut backend).unwrap();
        let (lc, lq) = load_vault_state(&backend).unwrap().unwrap();
        assert_catalogs_equal(&catalog, &lc);
        assert_eq!(quarantine, lq);
    }

    #[test]
    fn round_trip_survives_crash_recovery() {
        let (catalog, quarantine) = sample_state();
        let mut backend =
            DurableBackend::open(MemMedium::new(), DurableConfig::default()).unwrap();
        save_vault_state(&catalog, &quarantine, &mut backend).unwrap();
        let mut medium = backend.into_medium();
        medium.crash();
        let recovered = DurableBackend::open(medium, DurableConfig::default()).unwrap();
        let (lc, lq) = load_vault_state(&recovered).unwrap().unwrap();
        assert_catalogs_equal(&catalog, &lc);
        assert_eq!(quarantine, lq);
    }

    #[test]
    fn missing_state_loads_as_none() {
        assert!(load_vault_state(&MemoryBackend::new()).unwrap().is_none());
    }

    #[test]
    fn removed_and_unfenced_entries_are_deleted_on_next_persist() {
        let (mut catalog, mut quarantine) = sample_state();
        let mut backend = MemoryBackend::new();
        save_vault_state(&catalog, &quarantine, &mut backend).unwrap();
        catalog.remove("msg2-0825.sev1");
        quarantine.clear();
        save_vault_state(&catalog, &quarantine, &mut backend).unwrap();
        let (lc, lq) = load_vault_state(&backend).unwrap().unwrap();
        assert_eq!(lc.len(), 1);
        assert!(lc.get("landmass.shp1").is_some());
        assert!(lq.is_empty());
    }

    #[test]
    fn corrupt_record_is_a_codec_error() {
        let (catalog, quarantine) = sample_state();
        let mut backend = MemoryBackend::new();
        save_vault_state(&catalog, &quarantine, &mut backend).unwrap();
        backend.begin().unwrap();
        backend.put(CATALOG_KEYSPACE, b"msg2-0825.sev1", &[9, 9]).unwrap();
        backend.commit().unwrap();
        assert!(matches!(load_vault_state(&backend), Err(StoreError::Codec(_))));
    }

    #[test]
    fn bbox_f64_bits_are_exact() {
        let mut record = sample_record("edge.sev1");
        record.bbox = Some((-0.0, f64::MIN_POSITIVE, f64::INFINITY, 1.0e-308));
        let back = decode_record(&encode_record(&record)).unwrap();
        let (a, b, c, d) = back.bbox.unwrap();
        let (ea, eb, ec, ed) = record.bbox.unwrap();
        assert_eq!(
            [a.to_bits(), b.to_bits(), c.to_bits(), d.to_bits()],
            [ea.to_bits(), eb.to_bits(), ec.to_bits(), ed.to_bits()]
        );
    }
}
