//! The vault's metadata catalog.
//!
//! One record per registered external file, produced by the cheap
//! header-only parse at registration time. The catalog answers the
//! discovery queries ("which files cover this window / this period?")
//! without touching payloads, and serializes to JSON for persistence.

use crate::format::{
    decode_gtf1_header, decode_sev1_header, decode_shp1_count, FormatKind,
};
use crate::{Result, VaultError};
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use teleios_geo::{Coord, Envelope};

/// Metadata extracted from an external file's header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileRecord {
    /// File name in the repository.
    pub name: String,
    /// Format tag (`sev1`, `gtf1`, `shp1`).
    pub format: String,
    /// Total size in bytes.
    pub size_bytes: usize,
    /// Geographic bounding box, when the format carries one.
    pub bbox: Option<(f64, f64, f64, f64)>,
    /// Acquisition instant, when the format carries one.
    pub acquisition: Option<String>,
    /// Raster shape (bands, rows, cols) or record count for shp1.
    pub shape: Vec<u32>,
}

impl FileRecord {
    /// Bounding box as an [`Envelope`], when present.
    pub fn envelope(&self) -> Option<Envelope> {
        self.bbox.map(|(x0, y0, x1, y1)| {
            Envelope::new(Coord::new(x0, y0), Coord::new(x1, y1))
        })
    }
}

/// Extract a metadata record from a file's bytes (header-only parse).
pub fn extract_metadata(name: &str, bytes: &Bytes) -> Result<FileRecord> {
    match FormatKind::from_name(name)? {
        FormatKind::Sev1 => {
            let h = decode_sev1_header(bytes)?;
            Ok(FileRecord {
                name: name.to_string(),
                format: "sev1".into(),
                size_bytes: bytes.len(),
                bbox: Some(h.bbox),
                acquisition: Some(h.acquisition),
                shape: vec![h.bands, h.rows, h.cols],
            })
        }
        FormatKind::Gtf1 => {
            let h = decode_gtf1_header(bytes)?;
            Ok(FileRecord {
                name: name.to_string(),
                format: "gtf1".into(),
                size_bytes: bytes.len(),
                bbox: Some(h.bbox()),
                acquisition: None,
                shape: vec![1, h.rows, h.cols],
            })
        }
        FormatKind::Shp1 => {
            let n = decode_shp1_count(bytes)?;
            Ok(FileRecord {
                name: name.to_string(),
                format: "shp1".into(),
                size_bytes: bytes.len(),
                bbox: None,
                acquisition: None,
                shape: vec![n],
            })
        }
    }
}

/// The metadata catalog: name → record.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VaultCatalog {
    records: BTreeMap<String, FileRecord>,
}

impl VaultCatalog {
    /// Empty catalog.
    pub fn new() -> VaultCatalog {
        VaultCatalog::default()
    }

    /// Register a record (replacing any previous one for the name).
    pub fn register(&mut self, record: FileRecord) {
        self.records.insert(record.name.clone(), record);
    }

    /// Lookup by name.
    pub fn get(&self, name: &str) -> Option<&FileRecord> {
        self.records.get(name)
    }

    /// Remove a record.
    pub fn remove(&mut self, name: &str) -> Option<FileRecord> {
        self.records.remove(name)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate all records (sorted by name).
    pub fn iter(&self) -> impl Iterator<Item = &FileRecord> {
        self.records.values()
    }

    /// Records whose bbox intersects `window`.
    pub fn covering(&self, window: &Envelope) -> Vec<&FileRecord> {
        self.records
            .values()
            .filter(|r| r.envelope().is_some_and(|e| e.intersects(window)))
            .collect()
    }

    /// Records whose acquisition instant falls in `[start, end)`.
    pub fn acquired_between(&self, start: &str, end: &str) -> Vec<&FileRecord> {
        self.records
            .values()
            .filter(|r| {
                r.acquisition
                    .as_deref()
                    .is_some_and(|a| a >= start && a < end)
            })
            .collect()
    }

    /// Serialize to JSON. (Serialization of this plain map cannot fail;
    /// an empty object is returned defensively rather than panicking.)
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<VaultCatalog> {
        serde_json::from_str(json).map_err(|e| VaultError::Malformed(format!("catalog json: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{encode_sev1, encode_shp1, Sev1Header, Shp1Record};

    fn record(name: &str, bbox: (f64, f64, f64, f64), t: &str) -> FileRecord {
        let h = Sev1Header {
            rows: 2,
            cols: 2,
            bands: 1,
            acquisition: t.into(),
            bbox,
        };
        let bytes = encode_sev1(&h, &[0.0; 4]).unwrap();
        extract_metadata(name, &bytes).unwrap()
    }

    #[test]
    fn extract_sev1_metadata() {
        let r = record("x.sev1", (20.0, 35.0, 25.0, 40.0), "2007-08-25T12:00:00Z");
        assert_eq!(r.format, "sev1");
        assert_eq!(r.shape, vec![1, 2, 2]);
        assert_eq!(r.acquisition.as_deref(), Some("2007-08-25T12:00:00Z"));
        let env = r.envelope().unwrap();
        assert_eq!(env.min, Coord::new(20.0, 35.0));
    }

    #[test]
    fn extract_shp1_metadata() {
        let bytes = encode_shp1(&[Shp1Record { wkt: "POINT (1 2)".into(), label: "h".into() }]);
        let r = extract_metadata("f.shp1", &bytes).unwrap();
        assert_eq!(r.format, "shp1");
        assert_eq!(r.shape, vec![1]);
        assert!(r.bbox.is_none());
    }

    #[test]
    fn extract_rejects_mismatched_extension() {
        let bytes = encode_shp1(&[]);
        assert!(extract_metadata("f.sev1", &bytes).is_err());
    }

    #[test]
    fn covering_window() {
        let mut cat = VaultCatalog::new();
        cat.register(record("a.sev1", (20.0, 35.0, 22.0, 37.0), "2007-08-25T12:00:00Z"));
        cat.register(record("b.sev1", (30.0, 45.0, 32.0, 47.0), "2007-08-25T12:15:00Z"));
        let window = Envelope::new(Coord::new(21.0, 36.0), Coord::new(23.0, 38.0));
        let hits = cat.covering(&window);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "a.sev1");
    }

    #[test]
    fn acquired_between() {
        let mut cat = VaultCatalog::new();
        cat.register(record("a.sev1", (0.0, 0.0, 1.0, 1.0), "2007-08-25T12:00:00Z"));
        cat.register(record("b.sev1", (0.0, 0.0, 1.0, 1.0), "2007-08-25T13:00:00Z"));
        let hits = cat.acquired_between("2007-08-25T12:00:00Z", "2007-08-25T12:30:00Z");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "a.sev1");
    }

    #[test]
    fn json_roundtrip() {
        let mut cat = VaultCatalog::new();
        cat.register(record("a.sev1", (1.0, 2.0, 3.0, 4.0), "2007-08-25T12:00:00Z"));
        let json = cat.to_json();
        let cat2 = VaultCatalog::from_json(&json).unwrap();
        assert_eq!(cat2.len(), 1);
        assert_eq!(cat2.get("a.sev1"), cat.get("a.sev1"));
        assert!(VaultCatalog::from_json("not json").is_err());
    }

    #[test]
    fn register_replaces() {
        let mut cat = VaultCatalog::new();
        cat.register(record("a.sev1", (0.0, 0.0, 1.0, 1.0), "t1"));
        cat.register(record("a.sev1", (5.0, 5.0, 6.0, 6.0), "t2"));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("a.sev1").unwrap().acquisition.as_deref(), Some("t2"));
        assert!(cat.remove("a.sev1").is_some());
        assert!(cat.is_empty());
    }
}
