#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-vault — the Data Vault
//!
//! Implements the Data Vault concept (Ivanova, Kersten, Manegold —
//! SSDBM 2012) used by TELEIOS: a *symbiosis* between the DBMS and a
//! scientific file repository. The DBMS is made aware of external file
//! formats; file **metadata** is cataloged up front (cheap header
//! parses), while the **payload** is converted into database arrays
//! just-in-time, on first query — so an archive where "up to 95% of the
//! data has never been accessed" (paper, §1) never pays ingestion cost
//! for cold files.
//!
//! Components:
//!
//! * [`mod@format`] — three synthetic external formats standing in for the
//!   proprietary ones in the paper's archive: `Sev1` (SEVIRI-like raw
//!   multiband rasters), `Gtf1` (GeoTIFF-like georeferenced products),
//!   `Shp1` (shapefile-like geometry sets),
//! * [`repository::Repository`] — an in-memory scientific file repository,
//! * [`catalog::VaultCatalog`] — the metadata catalog (JSON-serializable),
//! * [`vault::DataVault`] — the vault itself: lazy or eager policy, an
//!   LRU materialization cache, and access statistics (experiment E5).
//!
//! ## Example
//!
//! ```
//! use teleios_vault::format::{encode_sev1, Sev1Header};
//! use teleios_vault::repository::Repository;
//! use teleios_vault::vault::{DataVault, IngestionPolicy};
//! use teleios_monet::Catalog;
//!
//! let mut repo = Repository::new();
//! let header = Sev1Header {
//!     rows: 4, cols: 4, bands: 1,
//!     acquisition: "2007-08-25T12:00:00Z".into(),
//!     bbox: (20.0, 35.0, 25.0, 40.0),
//! };
//! repo.put("scene-001.sev1", encode_sev1(&header, &vec![300.0; 16]).unwrap());
//!
//! let mut vault = DataVault::new(repo, Catalog::new(), IngestionPolicy::Lazy, 8);
//! vault.register_all().unwrap();
//! let array = vault.array_for("scene-001.sev1").unwrap();
//! assert_eq!(array.shape(), vec![1, 4, 4]);
//! assert_eq!(vault.stats().materializations, 1);
//! ```

pub mod catalog;
pub mod format;
pub mod persist;
pub mod repository;
pub mod vault;

pub use vault::{DataVault, IngestionPolicy, VaultStats};

/// Errors for vault operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VaultError {
    /// The file's bytes did not match its declared format.
    Malformed(String),
    /// The file's payload checksum did not verify (bit rot / truncated
    /// archive writes).
    Corrupt(String),
    /// The named file failed a decode and sits in the quarantine list;
    /// accesses are refused until [`DataVault::retry_quarantined`].
    Quarantined(String),
    /// The named file is not in the repository.
    UnknownFile(String),
    /// The file extension matches no registered format.
    UnknownFormat(String),
    /// Database-side failure during materialization.
    Database(String),
}

impl std::fmt::Display for VaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VaultError::Malformed(m) => write!(f, "malformed file: {m}"),
            VaultError::Corrupt(m) => write!(f, "corrupt file: {m}"),
            VaultError::Quarantined(n) => write!(f, "file is quarantined: {n}"),
            VaultError::UnknownFile(n) => write!(f, "unknown file: {n}"),
            VaultError::UnknownFormat(n) => write!(f, "unknown format: {n}"),
            VaultError::Database(m) => write!(f, "database error: {m}"),
        }
    }
}

impl std::error::Error for VaultError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, VaultError>;
