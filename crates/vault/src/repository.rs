//! The scientific file repository the vault attaches to.
//!
//! In the paper this is the EO data centre's archive filesystem; here it
//! is an in-memory map, which preserves the property that matters for
//! the vault experiments: reading a file's *header* is cheap, converting
//! its *payload* is proportional to its size.

use bytes::Bytes;
use std::collections::BTreeMap;

/// An in-memory file repository: name → raw bytes.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    files: BTreeMap<String, Bytes>,
}

impl Repository {
    /// Empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Store (or replace) a file.
    pub fn put(&mut self, name: impl Into<String>, bytes: Bytes) {
        self.files.insert(name.into(), bytes);
    }

    /// Fetch a file's bytes.
    pub fn get(&self, name: &str) -> Option<&Bytes> {
        self.files.get(name)
    }

    /// Remove a file.
    pub fn remove(&mut self, name: &str) -> Option<Bytes> {
        self.files.remove(name)
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the repository holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// File names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.files.values().map(Bytes::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let mut r = Repository::new();
        r.put("a.sev1", Bytes::from_static(b"123"));
        r.put("b.sev1", Bytes::from_static(b"4567"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get("a.sev1").unwrap().as_ref(), b"123");
        assert_eq!(r.total_bytes(), 7);
        assert_eq!(r.names().collect::<Vec<_>>(), vec!["a.sev1", "b.sev1"]);
        assert!(r.remove("a.sev1").is_some());
        assert!(r.get("a.sev1").is_none());
        assert!(r.remove("a.sev1").is_none());
    }

    #[test]
    fn replace_overwrites() {
        let mut r = Repository::new();
        r.put("a", Bytes::from_static(b"1"));
        r.put("a", Bytes::from_static(b"22"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.total_bytes(), 2);
    }
}
