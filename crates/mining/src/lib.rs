#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-mining — knowledge discovery and data mining
//!
//! The image-information-mining tier of the Virtual Earth Observatory
//! (paper §1/§2, after Datcu et al.): it closes the *semantic gap*
//! between low-level image descriptors and the domain concepts users
//! search for. Components:
//!
//! * [`ontology::Ontology`] — an OWL-ish concept hierarchy (land-cover
//!   and environmental-monitoring concepts) with RDFS subclass
//!   subsumption reasoning,
//! * [`classify`] — feature-vector classifiers (k-nearest-neighbour and
//!   nearest-centroid) mapping patch descriptors to ontology concepts,
//! * [`annotate`] — semantic annotation: publishing classified patches
//!   as stRDF so they join with linked open data in Strabon.

pub mod annotate;
pub mod classify;
pub mod ontology;

pub use classify::{Classifier, LabeledExample};
pub use ontology::Ontology;
