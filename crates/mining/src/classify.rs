//! Feature-vector classifiers mapping patches to ontology concepts.

use std::collections::HashMap;
use teleios_ingest::features::feature_distance;

/// A training example: feature vector plus concept IRI label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    /// The feature vector.
    pub features: Vec<f64>,
    /// The concept IRI.
    pub label: String,
}

/// A trained classifier.
#[derive(Debug, Clone)]
pub enum Classifier {
    /// k-nearest-neighbour over normalized features.
    Knn {
        /// Neighbours consulted.
        k: usize,
        /// Normalized training set.
        examples: Vec<LabeledExample>,
        /// Per-dimension (mean, std) used for normalization.
        scaler: Vec<(f64, f64)>,
    },
    /// Nearest centroid per class over normalized features.
    Centroid {
        /// (label, centroid) pairs.
        centroids: Vec<(String, Vec<f64>)>,
        /// Per-dimension (mean, std).
        scaler: Vec<(f64, f64)>,
    },
}

fn fit_scaler(examples: &[LabeledExample]) -> Vec<(f64, f64)> {
    let dim = examples.first().map_or(0, |e| e.features.len());
    let n = examples.len() as f64;
    (0..dim)
        .map(|d| {
            let mean = examples.iter().map(|e| e.features[d]).sum::<f64>() / n;
            let var = examples
                .iter()
                .map(|e| (e.features[d] - mean).powi(2))
                .sum::<f64>()
                / n;
            (mean, var.sqrt().max(1e-9))
        })
        .collect()
}

fn scale(features: &[f64], scaler: &[(f64, f64)]) -> Vec<f64> {
    features
        .iter()
        .zip(scaler)
        .map(|(v, (m, s))| (v - m) / s)
        .collect()
}

impl Classifier {
    /// Train a kNN classifier. Panics on an empty training set or k = 0.
    pub fn train_knn(k: usize, examples: Vec<LabeledExample>) -> Classifier {
        assert!(k > 0, "k must be positive");
        assert!(!examples.is_empty(), "training set must not be empty");
        let scaler = fit_scaler(&examples);
        let examples = examples
            .into_iter()
            .map(|e| LabeledExample { features: scale(&e.features, &scaler), label: e.label })
            .collect();
        Classifier::Knn { k, examples, scaler }
    }

    /// Train a nearest-centroid classifier.
    pub fn train_centroid(examples: Vec<LabeledExample>) -> Classifier {
        assert!(!examples.is_empty(), "training set must not be empty");
        let scaler = fit_scaler(&examples);
        let mut sums: HashMap<String, (Vec<f64>, usize)> = HashMap::new();
        let dim = examples[0].features.len();
        for e in &examples {
            let scaled = scale(&e.features, &scaler);
            let entry = sums.entry(e.label.clone()).or_insert((vec![0.0; dim], 0));
            for (acc, v) in entry.0.iter_mut().zip(&scaled) {
                *acc += v;
            }
            entry.1 += 1;
        }
        let mut centroids: Vec<(String, Vec<f64>)> = sums
            .into_iter()
            .map(|(label, (sum, n))| {
                (label, sum.into_iter().map(|v| v / n as f64).collect())
            })
            .collect();
        centroids.sort_by(|a, b| a.0.cmp(&b.0));
        Classifier::Centroid { centroids, scaler }
    }

    /// Classify a feature vector, returning the winning concept IRI.
    pub fn classify(&self, features: &[f64]) -> &str {
        match self {
            Classifier::Knn { k, examples, scaler } => {
                let probe = scale(features, scaler);
                // Collect the k nearest by distance.
                let mut dists: Vec<(f64, &str)> = examples
                    .iter()
                    .map(|e| (feature_distance(&e.features, &probe), e.label.as_str()))
                    .collect();
                dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
                let mut votes: HashMap<&str, usize> = HashMap::new();
                for (_, label) in dists.iter().take(*k) {
                    *votes.entry(label).or_insert(0) += 1;
                }
                // Majority; ties broken by closeness (first occurrence in
                // the distance-sorted list).
                let best = votes.values().max().copied().unwrap_or(0);
                dists
                    .iter()
                    .take(*k)
                    .find(|(_, l)| votes[l] == best)
                    .map(|(_, l)| *l)
                    // Empty training set: no label to emit.
                    .unwrap_or("")
            }
            Classifier::Centroid { centroids, scaler } => {
                let probe = scale(features, scaler);
                centroids
                    .iter()
                    .min_by(|a, b| {
                        feature_distance(&a.1, &probe)
                            .partial_cmp(&feature_distance(&b.1, &probe))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(l, _)| l.as_str())
                    // Empty centroid set: no label to emit.
                    .unwrap_or("")
            }
        }
    }

    /// Full confusion matrix over a labeled evaluation set.
    pub fn confusion(&self, eval: &[LabeledExample]) -> ConfusionMatrix {
        let mut labels: Vec<String> = eval.iter().map(|e| e.label.clone()).collect();
        labels.sort();
        labels.dedup();
        // Include labels only the classifier can emit.
        match self {
            Classifier::Knn { examples, .. } => {
                for e in examples {
                    if !labels.contains(&e.label) {
                        labels.push(e.label.clone());
                    }
                }
            }
            Classifier::Centroid { centroids, .. } => {
                for (l, _) in centroids {
                    if !labels.contains(l) {
                        labels.push(l.clone());
                    }
                }
            }
        }
        labels.sort();
        // Every label the classifier can emit is in `labels` (merged
        // above), so the position lookup cannot miss.
        let idx = |l: &str| labels.iter().position(|x| x == l).unwrap_or(0);
        let mut counts = vec![vec![0usize; labels.len()]; labels.len()];
        for e in eval {
            let predicted = self.classify(&e.features).to_string();
            counts[idx(&e.label)][idx(&predicted)] += 1;
        }
        ConfusionMatrix { labels, counts }
    }

    /// Accuracy over a labeled evaluation set.
    pub fn accuracy(&self, eval: &[LabeledExample]) -> f64 {
        if eval.is_empty() {
            return 0.0;
        }
        let correct = eval
            .iter()
            .filter(|e| self.classify(&e.features) == e.label)
            .count();
        correct as f64 / eval.len() as f64
    }
}

/// A confusion matrix: `counts[truth][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Class labels, sorted; indexes both matrix axes.
    pub labels: Vec<String>,
    /// `counts[i][j]`: examples of true class `i` predicted as `j`.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Precision of one class: TP / column sum. 1.0 when never predicted.
    pub fn precision(&self, label: &str) -> f64 {
        let Some(j) = self.labels.iter().position(|l| l == label) else {
            return 0.0;
        };
        let tp = self.counts[j][j];
        let predicted: usize = self.counts.iter().map(|row| row[j]).sum();
        if predicted == 0 {
            1.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: TP / row sum. 1.0 when the class is absent.
    pub fn recall(&self, label: &str) -> f64 {
        let Some(i) = self.labels.iter().position(|l| l == label) else {
            return 0.0;
        };
        let tp = self.counts[i][i];
        let actual: usize = self.counts[i].iter().sum();
        if actual == 0 {
            1.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// Overall accuracy: trace / total.
    pub fn accuracy(&self) -> f64 {
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            return 0.0;
        }
        let trace: usize = (0..self.labels.len()).map(|i| self.counts[i][i]).sum();
        trace as f64 / total as f64
    }

    /// Aligned text rendering (short label tails for readability).
    pub fn to_text(&self) -> String {
        let short = |l: &str| -> String {
            l.rsplit(['/', '#']).next().unwrap_or(l).to_string()
        };
        let names: Vec<String> = self.labels.iter().map(|l| short(l)).collect();
        let width = names.iter().map(String::len).max().unwrap_or(4).max(6);
        let mut out = format!("{:>width$} |", "truth\\pred");
        for n in &names {
            out.push_str(&format!(" {n:>width$}"));
        }
        out.push('\n');
        for (i, n) in names.iter().enumerate() {
            out.push_str(&format!("{n:>width$} |"));
            for j in 0..names.len() {
                out.push_str(&format!(" {:>width$}", self.counts[i][j]));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters in 2-D.
    fn clustered(n: usize) -> Vec<LabeledExample> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = i as f64 / n as f64;
            out.push(LabeledExample {
                features: vec![t * 0.1, 1.0 + t * 0.1],
                label: "http://c/A".into(),
            });
            out.push(LabeledExample {
                features: vec![5.0 + t * 0.1, -3.0 + t * 0.1],
                label: "http://c/B".into(),
            });
        }
        out
    }

    #[test]
    fn knn_separates_clusters() {
        let c = Classifier::train_knn(3, clustered(10));
        assert_eq!(c.classify(&[0.05, 1.0]), "http://c/A");
        assert_eq!(c.classify(&[5.0, -3.0]), "http://c/B");
    }

    #[test]
    fn centroid_separates_clusters() {
        let c = Classifier::train_centroid(clustered(10));
        assert_eq!(c.classify(&[0.0, 1.05]), "http://c/A");
        assert_eq!(c.classify(&[5.1, -2.9]), "http://c/B");
    }

    #[test]
    fn accuracy_on_training_data_is_high() {
        let data = clustered(20);
        let knn = Classifier::train_knn(1, data.clone());
        assert_eq!(knn.accuracy(&data), 1.0);
        let cent = Classifier::train_centroid(data.clone());
        assert!(cent.accuracy(&data) > 0.95);
    }

    #[test]
    fn scaling_makes_dimensions_comparable() {
        // One dimension has a huge scale; without normalization it would
        // dominate. Class is determined by the small dimension.
        let mut data = Vec::new();
        for i in 0..10 {
            data.push(LabeledExample {
                features: vec![1e6 + i as f64, 0.0],
                label: "http://c/zero".into(),
            });
            data.push(LabeledExample {
                features: vec![1e6 + i as f64, 1.0],
                label: "http://c/one".into(),
            });
        }
        let c = Classifier::train_knn(3, data);
        assert_eq!(c.classify(&[1e6, 0.05]), "http://c/zero");
        assert_eq!(c.classify(&[1e6, 0.95]), "http://c/one");
    }

    #[test]
    fn knn_majority_vote() {
        let data = vec![
            LabeledExample { features: vec![0.0], label: "http://c/A".into() },
            LabeledExample { features: vec![0.1], label: "http://c/A".into() },
            LabeledExample { features: vec![0.2], label: "http://c/B".into() },
        ];
        let c = Classifier::train_knn(3, data);
        assert_eq!(c.classify(&[0.15]), "http://c/A");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn knn_zero_k_panics() {
        Classifier::train_knn(0, clustered(2));
    }

    #[test]
    #[should_panic(expected = "training set must not be empty")]
    fn empty_training_panics() {
        Classifier::train_centroid(Vec::new());
    }

    #[test]
    fn confusion_matrix_diagonal_for_separable_data() {
        let data = clustered(10);
        let c = Classifier::train_knn(1, data.clone());
        let m = c.confusion(&data);
        assert_eq!(m.labels.len(), 2);
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.precision("http://c/A"), 1.0);
        assert_eq!(m.recall("http://c/B"), 1.0);
        // Off-diagonal empty.
        assert_eq!(m.counts[0][1], 0);
        assert_eq!(m.counts[1][0], 0);
    }

    #[test]
    fn confusion_matrix_counts_mistakes() {
        // Train on separated clusters but evaluate mislabeled points.
        let c = Classifier::train_centroid(clustered(10));
        let eval = vec![
            LabeledExample { features: vec![0.0, 1.0], label: "http://c/B".into() }, // truly A region
        ];
        let m = c.confusion(&eval);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.recall("http://c/B"), 0.0);
        let text = m.to_text();
        assert!(text.contains("truth"));
    }

    #[test]
    fn accuracy_of_empty_eval_is_zero() {
        let c = Classifier::train_knn(1, clustered(2));
        assert_eq!(c.accuracy(&[]), 0.0);
    }
}
