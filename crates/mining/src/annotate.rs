//! Semantic annotation: publishing classified patches as stRDF.
//!
//! Annotations link an image product to concepts from the domain
//! ontology per patch, with the patch footprint as an `strdf:WKT`
//! geometry — "in this way, we attempt to close the semantic gap that
//! exists between user requests and searchable information available
//! explicitly in the archive" (paper §1).

use crate::classify::Classifier;
use crate::ontology::Ontology;
use teleios_geo::Geometry;
use teleios_geo::geometry::Polygon;
use teleios_ingest::features::Patch;
use teleios_rdf::store::TripleStore;
use teleios_rdf::strdf::geometry_literal_wgs84;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::strdf;

/// Property linking a product to one of its patch annotations.
pub const HAS_ANNOTATION: &str =
    "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#hasAnnotation";
/// Property linking an annotation to its concept.
pub const DEPICTS: &str = "http://teleios.di.uoa.gr/ontologies/noaOntology.owl#depicts";

/// Annotate every patch of a product with the classifier's concept and
/// publish the result. Returns the number of annotations created.
pub fn annotate_product(
    product_id: &str,
    patches: &[Patch],
    classifier: &Classifier,
    store: &mut TripleStore,
) -> usize {
    let product = Term::iri(format!("http://teleios.di.uoa.gr/products/{product_id}"));
    for patch in patches {
        let concept = classifier.classify(&patch.features).to_string();
        let ann = Term::iri(format!(
            "http://teleios.di.uoa.gr/annotations/{product_id}/p{}-{}",
            patch.py, patch.px
        ));
        store.insert_terms(&product, &Term::iri(HAS_ANNOTATION), &ann);
        store.insert_terms(&ann, &Term::iri(DEPICTS), &Term::iri(concept));
        store.insert_terms(
            &ann,
            &Term::iri(strdf::HAS_GEOMETRY),
            &geometry_literal_wgs84(&Geometry::Polygon(Polygon::from_envelope(&patch.envelope))),
        );
    }
    patches.len()
}

/// Semantic search over annotations: annotation IRIs whose concept is a
/// subclass of `concept` (subsumption-aware, the ontology's added value
/// over raw metadata search — experiment E8).
pub fn find_annotations_by_concept(
    concept: &str,
    ontology: &Ontology,
    store: &TripleStore,
) -> Vec<Term> {
    let depicts = Term::iri(DEPICTS);
    store
        .match_terms(None, Some(&depicts), None)
        .into_iter()
        .filter(|(_, _, obj)| {
            obj.as_iri().is_some_and(|c| ontology.is_subclass_of(c, concept))
        })
        .map(|(s, _, _)| s)
        .collect()
}

/// Products having at least one annotation whose concept subsumes under
/// `concept`.
pub fn find_products_by_concept(
    concept: &str,
    ontology: &Ontology,
    store: &TripleStore,
) -> Vec<Term> {
    let has_ann = Term::iri(HAS_ANNOTATION);
    let mut products: Vec<Term> = find_annotations_by_concept(concept, ontology, store)
        .into_iter()
        .flat_map(|ann| store.subjects(&has_ann, &ann))
        .collect();
    products.sort();
    products.dedup();
    products
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::LabeledExample;
    use crate::ontology::{concept, Ontology};
    use teleios_geo::{Coord, Envelope};

    fn patch(py: usize, px: usize, features: Vec<f64>) -> Patch {
        Patch {
            py,
            px,
            envelope: Envelope::new(
                Coord::new(px as f64, py as f64),
                Coord::new(px as f64 + 1.0, py as f64 + 1.0),
            ),
            features,
        }
    }

    fn classifier() -> Classifier {
        Classifier::train_knn(
            1,
            vec![
                LabeledExample { features: vec![0.0], label: concept("Sea") },
                LabeledExample { features: vec![10.0], label: concept("ForestFire") },
            ],
        )
    }

    #[test]
    fn annotation_triples_created() {
        let mut st = TripleStore::new();
        let patches = vec![patch(0, 0, vec![0.1]), patch(0, 1, vec![9.5])];
        let n = annotate_product("scene-1", &patches, &classifier(), &mut st);
        assert_eq!(n, 2);
        assert_eq!(st.len(), 6);
    }

    #[test]
    fn semantic_search_uses_subsumption() {
        let mut st = TripleStore::new();
        let patches = vec![patch(0, 0, vec![0.1]), patch(0, 1, vec![9.5])];
        annotate_product("scene-1", &patches, &classifier(), &mut st);
        let o = Ontology::teleios();
        // Searching for the *superclass* Fire finds the ForestFire patch.
        let fire_anns = find_annotations_by_concept(&concept("Fire"), &o, &st);
        assert_eq!(fire_anns.len(), 1);
        // Searching for LandCover finds the Sea patch.
        let lc_anns = find_annotations_by_concept(&concept("LandCover"), &o, &st);
        assert_eq!(lc_anns.len(), 1);
        // Searching Concept finds both.
        assert_eq!(find_annotations_by_concept(&concept("Concept"), &o, &st).len(), 2);
    }

    #[test]
    fn products_by_concept_dedup() {
        let mut st = TripleStore::new();
        let patches = vec![patch(0, 0, vec![9.0]), patch(0, 1, vec![9.5])];
        annotate_product("scene-1", &patches, &classifier(), &mut st);
        let o = Ontology::teleios();
        let products = find_products_by_concept(&concept("Fire"), &o, &st);
        assert_eq!(products.len(), 1);
        assert_eq!(
            products[0],
            Term::iri("http://teleios.di.uoa.gr/products/scene-1")
        );
    }

    #[test]
    fn exact_concept_search_excludes_siblings() {
        let mut st = TripleStore::new();
        annotate_product("s", &[patch(0, 0, vec![9.9])], &classifier(), &mut st);
        let o = Ontology::teleios();
        assert!(find_annotations_by_concept(&concept("AgriculturalFire"), &o, &st).is_empty());
        assert_eq!(find_annotations_by_concept(&concept("ForestFire"), &o, &st).len(), 1);
    }

    #[test]
    fn annotations_carry_geometry() {
        let mut st = TripleStore::new();
        annotate_product("s", &[patch(2, 3, vec![0.0])], &classifier(), &mut st);
        let anns = find_annotations_by_concept(&concept("Sea"), &Ontology::teleios(), &st);
        let geom = st.objects(&anns[0], &Term::iri(strdf::HAS_GEOMETRY));
        assert_eq!(geom.len(), 1);
        let (g, _) = teleios_rdf::strdf::parse_geometry(&geom[0]).unwrap();
        assert_eq!(g.envelope().min, Coord::new(3.0, 2.0));
    }
}
