//! The domain concept ontology with subsumption reasoning.
//!
//! Hierarchies of domain concepts (land cover, environmental events) are
//! "formalized using OWL ontologies and used to annotate standard
//! products" (paper §2). We model the fragment the demo needs: named
//! classes, `rdfs:subClassOf` axioms, labels, and transitive-closure
//! subsumption.

use std::collections::{HashMap, HashSet};
use teleios_rdf::store::TripleStore;
use teleios_rdf::term::Term;
use teleios_rdf::vocab::{rdf, rdfs};

/// Base namespace of the TELEIOS land-cover/monitoring ontology.
pub const ONTOLOGY_NS: &str = "http://teleios.di.uoa.gr/ontologies/landcover.owl#";

/// Build the IRI of a concept in the TELEIOS ontology.
pub fn concept(local: &str) -> String {
    format!("{ONTOLOGY_NS}{local}")
}

/// An ontology: concepts plus subclass axioms.
#[derive(Debug, Clone, Default)]
pub struct Ontology {
    /// Direct superclasses per class IRI.
    supers: HashMap<String, HashSet<String>>,
    /// Human labels.
    labels: HashMap<String, String>,
}

impl Ontology {
    /// Empty ontology.
    pub fn new() -> Ontology {
        Ontology::default()
    }

    /// The TELEIOS land-cover / environmental-monitoring hierarchy used
    /// throughout the demo:
    ///
    /// ```text
    /// Concept
    /// ├── LandCover
    /// │   ├── WaterBody ── Sea, Lake
    /// │   ├── Vegetation ── Forest, Agriculture
    /// │   └── ArtificialSurface ── Urban
    /// └── EnvironmentalEvent
    ///     ├── Fire ── ForestFire, AgriculturalFire
    ///     ├── BurntArea
    ///     └── Flood
    /// ```
    pub fn teleios() -> Ontology {
        let mut o = Ontology::new();
        let axioms = [
            ("LandCover", "Concept"),
            ("WaterBody", "LandCover"),
            ("Sea", "WaterBody"),
            ("Lake", "WaterBody"),
            ("Vegetation", "LandCover"),
            ("Forest", "Vegetation"),
            ("Agriculture", "Vegetation"),
            ("ArtificialSurface", "LandCover"),
            ("Urban", "ArtificialSurface"),
            ("EnvironmentalEvent", "Concept"),
            ("Fire", "EnvironmentalEvent"),
            ("ForestFire", "Fire"),
            ("AgriculturalFire", "Fire"),
            ("BurntArea", "EnvironmentalEvent"),
            ("Flood", "EnvironmentalEvent"),
            ("Cloud", "Concept"),
        ];
        for (sub, sup) in axioms {
            o.add_subclass(&concept(sub), &concept(sup));
            o.set_label(&concept(sub), sub);
        }
        o.set_label(&concept("Concept"), "Concept");
        o
    }

    /// Add a subclass axiom (both classes become known).
    pub fn add_subclass(&mut self, sub: &str, sup: &str) {
        self.supers.entry(sub.to_string()).or_default().insert(sup.to_string());
        self.supers.entry(sup.to_string()).or_default();
    }

    /// Set a class label.
    pub fn set_label(&mut self, class: &str, label: &str) {
        self.labels.insert(class.to_string(), label.to_string());
    }

    /// The label of a class, if set.
    pub fn label(&self, class: &str) -> Option<&str> {
        self.labels.get(class).map(String::as_str)
    }

    /// True when the class is known.
    pub fn contains(&self, class: &str) -> bool {
        self.supers.contains_key(class)
    }

    /// Number of known classes.
    pub fn len(&self) -> usize {
        self.supers.len()
    }

    /// True when no classes are known.
    pub fn is_empty(&self) -> bool {
        self.supers.is_empty()
    }

    /// Transitive-reflexive superclass closure of a class.
    pub fn ancestors(&self, class: &str) -> HashSet<String> {
        let mut out = HashSet::new();
        let mut stack = vec![class.to_string()];
        while let Some(c) = stack.pop() {
            if out.insert(c.clone()) {
                if let Some(sups) = self.supers.get(&c) {
                    stack.extend(sups.iter().cloned());
                }
            }
        }
        out
    }

    /// RDFS subsumption: is `sub` a (reflexive, transitive) subclass of
    /// `sup`?
    pub fn is_subclass_of(&self, sub: &str, sup: &str) -> bool {
        self.ancestors(sub).contains(sup)
    }

    /// All known subclasses of `sup` (reflexive).
    pub fn descendants(&self, sup: &str) -> HashSet<String> {
        self.supers
            .keys()
            .filter(|c| self.is_subclass_of(c, sup))
            .cloned()
            .collect()
    }

    /// Publish the ontology as RDFS triples. Returns triples added.
    pub fn emit(&self, store: &mut TripleStore) -> usize {
        let before = store.len();
        let owl_class = Term::iri("http://www.w3.org/2002/07/owl#Class");
        for (sub, sups) in &self.supers {
            store.insert_terms(&Term::iri(sub.clone()), &Term::iri(rdf::TYPE), &owl_class);
            for sup in sups {
                store.insert_terms(
                    &Term::iri(sub.clone()),
                    &Term::iri(rdfs::SUB_CLASS_OF),
                    &Term::iri(sup.clone()),
                );
            }
            if let Some(label) = self.labels.get(sub) {
                store.insert_terms(
                    &Term::iri(sub.clone()),
                    &Term::iri(rdfs::LABEL),
                    &Term::literal(label.clone()),
                );
            }
        }
        store.len() - before
    }

    /// Load subclass axioms and labels from RDFS triples in a store.
    pub fn from_store(store: &TripleStore) -> Ontology {
        let mut o = Ontology::new();
        for (s, _, obj) in store.match_terms(None, Some(&Term::iri(rdfs::SUB_CLASS_OF)), None) {
            if let (Term::Iri(sub), Term::Iri(sup)) = (&s, &obj) {
                o.add_subclass(sub, sup);
            }
        }
        for (s, _, obj) in store.match_terms(None, Some(&Term::iri(rdfs::LABEL)), None) {
            if let (Term::Iri(class), Some(lex)) = (&s, obj.lexical()) {
                if o.contains(class) {
                    o.set_label(class, lex);
                }
            }
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teleios_hierarchy_subsumption() {
        let o = Ontology::teleios();
        assert!(o.is_subclass_of(&concept("ForestFire"), &concept("Fire")));
        assert!(o.is_subclass_of(&concept("ForestFire"), &concept("EnvironmentalEvent")));
        assert!(o.is_subclass_of(&concept("ForestFire"), &concept("Concept")));
        assert!(o.is_subclass_of(&concept("Sea"), &concept("LandCover")));
        assert!(!o.is_subclass_of(&concept("Sea"), &concept("Fire")));
        assert!(!o.is_subclass_of(&concept("Fire"), &concept("ForestFire")));
    }

    #[test]
    fn subsumption_is_reflexive() {
        let o = Ontology::teleios();
        assert!(o.is_subclass_of(&concept("Fire"), &concept("Fire")));
    }

    #[test]
    fn descendants_of_fire() {
        let o = Ontology::teleios();
        let d = o.descendants(&concept("Fire"));
        assert!(d.contains(&concept("Fire")));
        assert!(d.contains(&concept("ForestFire")));
        assert!(d.contains(&concept("AgriculturalFire")));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn labels() {
        let o = Ontology::teleios();
        assert_eq!(o.label(&concept("Forest")), Some("Forest"));
        assert_eq!(o.label("http://nope/"), None);
    }

    #[test]
    fn emit_and_reload_roundtrip() {
        let o = Ontology::teleios();
        let mut st = TripleStore::new();
        let n = o.emit(&mut st);
        assert!(n > 0);
        let o2 = Ontology::from_store(&st);
        assert_eq!(o2.len(), o.len());
        assert!(o2.is_subclass_of(&concept("ForestFire"), &concept("Concept")));
        assert_eq!(o2.label(&concept("Urban")), Some("Urban"));
    }

    #[test]
    fn cycle_tolerated() {
        // Pathological input must not hang the closure computation.
        let mut o = Ontology::new();
        o.add_subclass("http://x/A", "http://x/B");
        o.add_subclass("http://x/B", "http://x/A");
        assert!(o.is_subclass_of("http://x/A", "http://x/B"));
        assert!(o.is_subclass_of("http://x/B", "http://x/A"));
    }

    #[test]
    fn unknown_class_has_singleton_closure() {
        let o = Ontology::teleios();
        let a = o.ancestors("http://unknown/");
        assert_eq!(a.len(), 1);
    }
}
