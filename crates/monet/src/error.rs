//! Error type for the column-store engine.

use std::fmt;

/// Errors produced by the database engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to parse.
    Parse {
        /// Byte offset in the statement where the error was detected.
        position: usize,
        /// What went wrong.
        message: String,
    },
    /// A referenced table does not exist.
    UnknownTable(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// An array with this name already exists.
    ArrayExists(String),
    /// A referenced array does not exist.
    UnknownArray(String),
    /// A value had the wrong type for the target column or operation.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        found: String,
    },
    /// Row arity didn't match the table schema.
    ArityMismatch {
        /// Number of columns in the schema.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// Array shape/index errors.
    ShapeMismatch(String),
    /// Any other execution failure.
    Execution(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::ArrayExists(a) => write!(f, "array already exists: {a}"),
            DbError::UnknownArray(a) => write!(f, "unknown array: {a}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::ArityMismatch { expected, found } => {
                write!(f, "arity mismatch: expected {expected} values, found {found}")
            }
            DbError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(DbError::UnknownTable("t".into()).to_string(), "unknown table: t");
        assert_eq!(
            DbError::TypeMismatch { expected: "INT".into(), found: "STRING".into() }.to_string(),
            "type mismatch: expected INT, found STRING"
        );
        assert_eq!(
            DbError::ArityMismatch { expected: 3, found: 2 }.to_string(),
            "arity mismatch: expected 3 values, found 2"
        );
    }
}
