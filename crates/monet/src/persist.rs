//! Persistence of catalog tables onto a `teleios-store`
//! [`StorageBackend`] as column pages — the BAT layout on disk.
//!
//! Keyspace `monet/schema`: one entry per table, key = lowercase
//! table name, value = case-preserved display name, varint column
//! count, then per column its name and a type tag.
//!
//! Keyspace `monet/col`: one page per column, key = lowercase table
//! name ++ `0x00` ++ big-endian `u32` column index (so a table's
//! pages scan contiguously in column order), value = type tag,
//! varint row count, an RLE validity section (varint run count; `0`
//! means "no nulls"; runs alternate starting with VALID), then the
//! values of the non-null rows only: `Int` as zigzag deltas,
//! `Double` as raw little-endian bits (NaN-exact), `Str`
//! length-prefixed, `Bool` bit-packed.
//!
//! Restore rebuilds each table via `Catalog::create_table` + row
//! inserts, which reproduces the column's internal validity
//! representation exactly (a column only carries a validity vector
//! if it actually holds nulls — same as a freshly pushed column).

use teleios_store::codec::{put_f64, put_str, put_varint, put_zigzag, Reader};
use teleios_store::{StorageBackend, StoreError};

use crate::catalog::Catalog;
use crate::table::{ColumnDef, Table};
use crate::value::{DataType, Value};

/// Keyspace holding per-table schema records.
pub const SCHEMA_KEYSPACE: &str = "monet/schema";
/// Keyspace holding column pages.
pub const COL_KEYSPACE: &str = "monet/col";

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Double => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn tag_type(tag: u8) -> Result<DataType, StoreError> {
    match tag {
        0 => Ok(DataType::Int),
        1 => Ok(DataType::Double),
        2 => Ok(DataType::Str),
        3 => Ok(DataType::Bool),
        other => Err(StoreError::Codec(format!("unknown column type tag {other}"))),
    }
}

fn table_key(name: &str) -> Vec<u8> {
    name.to_ascii_lowercase().into_bytes()
}

fn col_key(name: &str, idx: u32) -> Vec<u8> {
    let mut key = table_key(name);
    key.push(0);
    key.extend_from_slice(&idx.to_be_bytes());
    key
}

fn encode_schema(table: &Table) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, table.name());
    put_varint(&mut out, table.num_columns() as u64);
    for def in table.schema() {
        put_str(&mut out, &def.name);
        out.push(type_tag(def.ty));
    }
    out
}

fn decode_schema(bytes: &[u8]) -> Result<(String, Vec<ColumnDef>), StoreError> {
    let mut r = Reader::new(bytes);
    let name = r.string()?;
    let n_cols = r.varint()?;
    let mut defs = Vec::with_capacity(n_cols as usize);
    for _ in 0..n_cols {
        let col_name = r.string()?;
        let ty = tag_type(r.u8()?)?;
        defs.push(ColumnDef { name: col_name, ty });
    }
    if !r.is_empty() {
        return Err(StoreError::Codec("trailing bytes after table schema".into()));
    }
    Ok((name, defs))
}

fn encode_column(table: &Table, idx: usize) -> Vec<u8> {
    let col = table.column(idx);
    let rows = col.len();
    let mut out = Vec::new();
    out.push(type_tag(col.data_type()));
    put_varint(&mut out, rows as u64);

    // validity as alternating RLE runs, starting VALID; 0 runs = no nulls
    if col.null_count() == 0 {
        put_varint(&mut out, 0);
    } else {
        let mut runs: Vec<u64> = Vec::new();
        let mut current_valid = true;
        let mut run_len = 0u64;
        for i in 0..rows {
            let valid = !col.is_null(i);
            if valid == current_valid {
                run_len += 1;
            } else {
                runs.push(run_len);
                current_valid = valid;
                run_len = 1;
            }
        }
        runs.push(run_len);
        put_varint(&mut out, runs.len() as u64);
        for run in runs {
            put_varint(&mut out, run);
        }
    }

    // non-null values only
    match col.data_type() {
        DataType::Int => {
            let mut prev = 0i64;
            for i in 0..rows {
                if let Value::Int(v) = col.get(i) {
                    put_zigzag(&mut out, v.wrapping_sub(prev));
                    prev = v;
                }
            }
        }
        DataType::Double => {
            for i in 0..rows {
                if let Value::Double(v) = col.get(i) {
                    put_f64(&mut out, v);
                }
            }
        }
        DataType::Str => {
            for i in 0..rows {
                if let Value::Str(v) = col.get(i) {
                    put_str(&mut out, &v);
                }
            }
        }
        DataType::Bool => {
            let mut bits = 0u8;
            let mut n_bits = 0u8;
            for i in 0..rows {
                if let Value::Bool(v) = col.get(i) {
                    if v {
                        bits |= 1 << n_bits;
                    }
                    n_bits += 1;
                    if n_bits == 8 {
                        out.push(bits);
                        bits = 0;
                        n_bits = 0;
                    }
                }
            }
            if n_bits > 0 {
                out.push(bits);
            }
        }
    }
    out
}

struct ColumnPage {
    ty: DataType,
    values: Vec<Value>, // row-aligned, Value::Null where invalid
}

fn decode_column(bytes: &[u8]) -> Result<ColumnPage, StoreError> {
    let mut r = Reader::new(bytes);
    let ty = tag_type(r.u8()?)?;
    let rows = r.varint()? as usize;

    let n_runs = r.varint()? as usize;
    let mut validity = vec![true; rows];
    if n_runs > 0 {
        let mut pos = 0usize;
        let mut current_valid = true;
        for _ in 0..n_runs {
            let run = r.varint()? as usize;
            if pos + run > rows {
                return Err(StoreError::Codec("validity runs exceed row count".into()));
            }
            for slot in &mut validity[pos..pos + run] {
                *slot = current_valid;
            }
            pos += run;
            current_valid = !current_valid;
        }
        if pos != rows {
            return Err(StoreError::Codec("validity runs do not cover all rows".into()));
        }
    }
    let n_present = validity.iter().filter(|v| **v).count();

    let mut present: Vec<Value> = Vec::with_capacity(n_present);
    match ty {
        DataType::Int => {
            let mut prev = 0i64;
            for _ in 0..n_present {
                prev = prev.wrapping_add(r.zigzag()?);
                present.push(Value::Int(prev));
            }
        }
        DataType::Double => {
            for _ in 0..n_present {
                present.push(Value::Double(r.f64()?));
            }
        }
        DataType::Str => {
            for _ in 0..n_present {
                present.push(Value::Str(r.string()?));
            }
        }
        DataType::Bool => {
            let n_bytes = n_present.div_ceil(8);
            let packed = r.take(n_bytes)?;
            for i in 0..n_present {
                present.push(Value::Bool(packed[i / 8] & (1 << (i % 8)) != 0));
            }
        }
    }
    if !r.is_empty() {
        return Err(StoreError::Codec("trailing bytes after column page".into()));
    }

    let mut present_iter = present.into_iter();
    let mut values = Vec::with_capacity(rows);
    for valid in validity {
        if valid {
            values.push(
                present_iter
                    .next()
                    .ok_or_else(|| StoreError::Codec("column page ran out of values".into()))?,
            );
        } else {
            values.push(Value::Null);
        }
    }
    Ok(ColumnPage { ty, values })
}

/// Stage every catalog table (schema + column pages) as puts inside
/// the backend's open transaction, replacing any previously
/// persisted tables that no longer exist.
pub fn persist_catalog(
    catalog: &Catalog,
    backend: &mut dyn StorageBackend,
) -> Result<(), StoreError> {
    // drop pages of tables that disappeared since the last persist
    let live: Vec<Vec<u8>> = catalog.table_names().iter().map(|n| table_key(n)).collect();
    for (key, _) in backend.scan(SCHEMA_KEYSPACE)? {
        if !live.contains(&key) {
            backend.delete(SCHEMA_KEYSPACE, &key)?;
        }
    }
    for (key, _) in backend.scan(COL_KEYSPACE)? {
        let table_part = key.split(|b| *b == 0).next().unwrap_or(&[]).to_vec();
        if !live.contains(&table_part) {
            backend.delete(COL_KEYSPACE, &key)?;
        }
    }

    for name in catalog.table_names() {
        let table = catalog
            .table(&name)
            .map_err(|e| StoreError::Codec(format!("catalog read: {e}")))?;
        backend.put(SCHEMA_KEYSPACE, &table_key(&name), &encode_schema(&table))?;
        // remove stale higher-index pages if the table narrowed
        for (key, _) in backend.scan(COL_KEYSPACE)? {
            if key.starts_with(&col_key(&name, 0)[..table_key(&name).len() + 1]) {
                let idx_bytes = &key[table_key(&name).len() + 1..];
                if idx_bytes.len() == 4 {
                    let mut buf = [0u8; 4];
                    buf.copy_from_slice(idx_bytes);
                    if u32::from_be_bytes(buf) as usize >= table.num_columns() {
                        backend.delete(COL_KEYSPACE, &key)?;
                    }
                }
            }
        }
        for idx in 0..table.num_columns() {
            backend.put(
                COL_KEYSPACE,
                &col_key(&name, idx as u32),
                &encode_column(&table, idx),
            )?;
        }
    }
    Ok(())
}

/// Persist the catalog as one transaction; returns the commit
/// sequence number.
pub fn save_catalog(catalog: &Catalog, backend: &mut dyn StorageBackend) -> Result<u64, StoreError> {
    backend.begin()?;
    // A failed put must not leave the transaction open on the shared
    // backend (txn-leak): roll back before propagating.
    if let Err(e) = persist_catalog(catalog, backend) {
        backend.rollback();
        return Err(e);
    }
    backend.commit()
}

/// Load all tables persisted by [`persist_catalog`] into a fresh
/// catalog; `Ok(None)` if nothing was ever persisted.
pub fn load_catalog(backend: &dyn StorageBackend) -> Result<Option<Catalog>, StoreError> {
    let schemas = backend.scan(SCHEMA_KEYSPACE)?;
    if schemas.is_empty() {
        return Ok(None);
    }
    let catalog = Catalog::new();
    for (key, schema_bytes) in schemas {
        let (name, defs) = decode_schema(&schema_bytes)?;
        let n_cols = defs.len();
        catalog
            .create_table(&name, defs.clone())
            .map_err(|e| StoreError::Codec(format!("recreate table: {e}")))?;

        let mut columns: Vec<ColumnPage> = Vec::with_capacity(n_cols);
        for idx in 0..n_cols {
            let mut col_k = key.clone();
            col_k.push(0);
            col_k.extend_from_slice(&(idx as u32).to_be_bytes());
            let page = backend.get(COL_KEYSPACE, &col_k)?.ok_or_else(|| {
                StoreError::Codec(format!("missing column page {idx} for table {name}"))
            })?;
            let page = decode_column(&page)?;
            if page.ty != defs[idx].ty {
                return Err(StoreError::Codec(format!(
                    "column {idx} of {name} has type {:?}, schema says {:?}",
                    page.ty, defs[idx].ty
                )));
            }
            columns.push(page);
        }
        let rows = columns.first().map(|c| c.values.len()).unwrap_or(0);
        if columns.iter().any(|c| c.values.len() != rows) {
            return Err(StoreError::Codec(format!("ragged column pages for table {name}")));
        }
        let mut row_values = Vec::with_capacity(rows);
        for i in 0..rows {
            row_values.push(columns.iter().map(|c| c.values[i].clone()).collect::<Vec<_>>());
        }
        if !row_values.is_empty() {
            catalog
                .insert(&name, row_values)
                .map_err(|e| StoreError::Codec(format!("refill table: {e}")))?;
        }
    }
    Ok(Some(catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_store::{DurableBackend, DurableConfig, MemMedium, MemoryBackend};

    fn sample_catalog() -> Catalog {
        let catalog = Catalog::new();
        catalog
            .create_table(
                "Hotspots",
                vec![
                    ColumnDef { name: "id".into(), ty: DataType::Int },
                    ColumnDef { name: "confidence".into(), ty: DataType::Double },
                    ColumnDef { name: "sensor".into(), ty: DataType::Str },
                    ColumnDef { name: "confirmed".into(), ty: DataType::Bool },
                ],
            )
            .unwrap();
        let weird_nan = f64::from_bits(0x7ff8_0000_0000_1234);
        catalog
            .insert(
                "Hotspots",
                vec![
                    vec![
                        Value::Int(100),
                        Value::Double(0.93),
                        Value::Str("MSG2".into()),
                        Value::Bool(true),
                    ],
                    vec![Value::Int(101), Value::Null, Value::Str(String::new()), Value::Null],
                    vec![
                        Value::Int(-5),
                        Value::Double(weird_nan),
                        Value::Null,
                        Value::Bool(false),
                    ],
                    vec![
                        Value::Int(i64::MAX),
                        Value::Double(-0.0),
                        Value::Str("utf8 λ€".into()),
                        Value::Bool(true),
                    ],
                ],
            )
            .unwrap();
        catalog
            .create_table("empty_t", vec![ColumnDef { name: "x".into(), ty: DataType::Int }])
            .unwrap();
        catalog
    }

    fn assert_values_equal(a: &Value, b: &Value, ctx: &str) {
        match (a, b) {
            // Double PartialEq fails on NaN; compare raw bits instead
            (Value::Double(x), Value::Double(y)) => {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}");
            }
            _ => assert_eq!(a, b, "{ctx}"),
        }
    }

    fn assert_catalogs_equal(a: &Catalog, b: &Catalog) {
        assert_eq!(a.table_names(), b.table_names());
        for name in a.table_names() {
            let ta = a.table(&name).unwrap();
            let tb = b.table(&name).unwrap();
            assert_eq!(ta.name(), tb.name(), "display name of {name}");
            assert_eq!(ta.schema(), tb.schema(), "schema of {name}");
            assert_eq!(ta.num_rows(), tb.num_rows(), "rows of {name}");
            for i in 0..ta.num_rows() {
                for (va, vb) in ta.row(i).iter().zip(tb.row(i).iter()) {
                    assert_values_equal(va, vb, &format!("{name} row {i}"));
                }
            }
            // the internal representation must match too: a column
            // without nulls must not grow a validity vector
            for idx in 0..ta.num_columns() {
                assert_eq!(
                    ta.column(idx).null_count(),
                    tb.column(idx).null_count(),
                    "null count of {name}.{idx}"
                );
            }
        }
    }

    #[test]
    fn round_trip_through_memory_backend() {
        let catalog = sample_catalog();
        let mut backend = MemoryBackend::new();
        save_catalog(&catalog, &mut backend).unwrap();
        let loaded = load_catalog(&backend).unwrap().unwrap();
        assert_catalogs_equal(&catalog, &loaded);
    }

    #[test]
    fn round_trip_survives_crash_recovery() {
        let catalog = sample_catalog();
        let mut backend =
            DurableBackend::open(MemMedium::new(), DurableConfig::default()).unwrap();
        save_catalog(&catalog, &mut backend).unwrap();
        let mut medium = backend.into_medium();
        medium.crash();
        let recovered = DurableBackend::open(medium, DurableConfig::default()).unwrap();
        let loaded = load_catalog(&recovered).unwrap().unwrap();
        assert_catalogs_equal(&catalog, &loaded);
    }

    #[test]
    fn missing_state_loads_as_none() {
        assert!(load_catalog(&MemoryBackend::new()).unwrap().is_none());
    }

    #[test]
    fn dropped_table_disappears_on_next_persist() {
        let catalog = sample_catalog();
        let mut backend = MemoryBackend::new();
        save_catalog(&catalog, &mut backend).unwrap();
        catalog.drop_table("Hotspots").unwrap();
        save_catalog(&catalog, &mut backend).unwrap();
        let loaded = load_catalog(&backend).unwrap().unwrap();
        assert_eq!(loaded.table_names(), vec!["empty_t".to_string()]);
        // no orphaned column pages either
        for (key, _) in backend.scan(COL_KEYSPACE).unwrap() {
            assert!(key.starts_with(b"empty_t"), "orphan page {key:?}");
        }
    }

    #[test]
    fn corrupt_column_page_is_a_codec_error() {
        let catalog = sample_catalog();
        let mut backend = MemoryBackend::new();
        save_catalog(&catalog, &mut backend).unwrap();
        let key = col_key("Hotspots", 0);
        let mut bytes = backend.get(COL_KEYSPACE, &key).unwrap().unwrap();
        bytes.truncate(bytes.len() - 1);
        backend.begin().unwrap();
        backend.put(COL_KEYSPACE, &key, &bytes).unwrap();
        backend.commit().unwrap();
        assert!(matches!(load_catalog(&backend), Err(StoreError::Codec(_))));
    }

    #[test]
    fn all_null_and_all_bool_columns_round_trip() {
        let catalog = Catalog::new();
        catalog
            .create_table(
                "edge",
                vec![
                    ColumnDef { name: "n".into(), ty: DataType::Double },
                    ColumnDef { name: "b".into(), ty: DataType::Bool },
                ],
            )
            .unwrap();
        let rows: Vec<Vec<Value>> =
            (0..17).map(|i| vec![Value::Null, Value::Bool(i % 3 == 0)]).collect();
        catalog.insert("edge", rows).unwrap();
        let mut backend = MemoryBackend::new();
        save_catalog(&catalog, &mut backend).unwrap();
        let loaded = load_catalog(&backend).unwrap().unwrap();
        assert_catalogs_equal(&catalog, &loaded);
    }
}
