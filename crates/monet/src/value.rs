//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column or scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Double,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "STRING"),
            DataType::Bool => write!(f, "BOOL"),
        }
    }
}

impl DataType {
    /// Parse a SQL type name (several aliases accepted).
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => Some(DataType::Int),
            "DOUBLE" | "FLOAT" | "REAL" | "DECIMAL" | "NUMERIC" => Some(DataType::Double),
            "STRING" | "VARCHAR" | "TEXT" | "CHAR" | "CLOB" => Some(DataType::Str),
            "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            _ => None,
        }
    }
}

/// A scalar value, including SQL NULL.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Double.
    Double(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's type; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to double); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view; `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerce into `ty` when a lossless/standard SQL coercion exists
    /// (ints to double; anything stays NULL).
    pub fn coerce(self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (v @ Value::Int(_), DataType::Int) => Some(v),
            (Value::Int(i), DataType::Double) => Some(Value::Double(i as f64)),
            (v @ Value::Double(_), DataType::Double) => Some(v),
            (v @ Value::Str(_), DataType::Str) => Some(v),
            (v @ Value::Bool(_), DataType::Bool) => Some(v),
            _ => None,
        }
    }

    /// SQL comparison. NULL compares as unknown (`None`); numeric types
    /// compare cross-type.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Ordering for ORDER BY: NULLs first, then by value; NaNs last.
    pub fn order_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => self.sql_cmp(other).unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_parse_aliases() {
        assert_eq!(DataType::parse("integer"), Some(DataType::Int));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Str));
        assert_eq!(DataType::parse("real"), Some(DataType::Double));
        assert_eq!(DataType::parse("boolean"), Some(DataType::Bool));
        assert_eq!(DataType::parse("GEOMETRY"), None);
    }

    #[test]
    fn value_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Double(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Null.as_f64(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn coercion() {
        assert_eq!(Value::Int(3).coerce(DataType::Double), Some(Value::Double(3.0)));
        assert_eq!(Value::Double(3.5).coerce(DataType::Int), None);
        assert_eq!(Value::Null.coerce(DataType::Str), Some(Value::Null));
        assert_eq!(Value::Str("a".into()).coerce(DataType::Int), None);
    }

    #[test]
    fn sql_cmp_cross_numeric() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Double(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Str("b".into()).sql_cmp(&Value::Str("a".into())), Some(Ordering::Greater));
    }

    #[test]
    fn order_cmp_nulls_first() {
        assert_eq!(Value::Null.order_cmp(&Value::Int(1)), Ordering::Less);
        assert_eq!(Value::Int(1).order_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.order_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
