//! The database catalog: named tables and arrays, plus the SQL entry point.

use crate::array::NdArray;
use crate::error::DbError;
use crate::exec::{self, Chunk};
use crate::sql::ast::Statement;
use crate::sql::parser::parse_statement;
use crate::sql::planner::{execute_select_with, TableProvider};
use crate::table::{ColumnDef, Table};
use crate::value::Value;
use crate::Result;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use teleios_exec::WorkerPool;

/// A materialized query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Row tuples.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Empty result (used for DDL/DML statements).
    pub fn empty() -> ResultSet {
        ResultSet { columns: Vec::new(), rows: Vec::new() }
    }

    /// Result carrying a single "rows affected" count.
    pub fn affected(n: usize) -> ResultSet {
        ResultSet { columns: vec!["affected".into()], rows: vec![vec![Value::Int(n as i64)]] }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Value at (row, column name).
    pub fn value(&self, row: usize, column: &str) -> Option<&Value> {
        let c = self
            .columns
            .iter()
            .position(|n| n.eq_ignore_ascii_case(column))?;
        self.rows.get(row).map(|r| &r[c])
    }

    /// Render as RFC-4180-style CSV (quotes doubled, fields with commas
    /// or quotes quoted) — the export format the portal offers.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self.columns.iter().map(|c| field(c)).collect::<Vec<_>>().join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.iter()
                    .map(|v| field(&v.to_string()))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Render as an aligned text table (for examples and the portal).
    pub fn to_text(&self) -> String {
        if self.columns.is_empty() {
            return String::from("(empty)\n");
        }
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Value::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, name) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", name, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl From<Chunk> for ResultSet {
    fn from(chunk: Chunk) -> ResultSet {
        let rows = (0..chunk.num_rows()).map(|i| chunk.row(i)).collect();
        ResultSet { columns: chunk.names().to_vec(), rows }
    }
}

/// The catalog: a concurrent map of tables and arrays.
///
/// Cloning the catalog clones the *handle*; the underlying storage is
/// shared (`Arc`), matching how multiple TELEIOS tiers hold the same
/// MonetDB instance.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<CatalogInner>,
}

#[derive(Debug, Default)]
struct CatalogInner {
    tables: RwLock<HashMap<String, Table>>,
    arrays: RwLock<HashMap<String, NdArray>>,
    /// `SET THREADS` override; `None` means the environment default.
    /// Shared by all clones of the handle, like the table map.
    threads: RwLock<Option<usize>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    // ----- tables ----------------------------------------------------

    /// Create a table; errors when the name is taken.
    pub fn create_table(&self, name: &str, schema: Vec<ColumnDef>) -> Result<()> {
        let mut tables = self.inner.tables.write();
        let key = Self::key(name);
        if tables.contains_key(&key) {
            return Err(DbError::TableExists(name.to_string()));
        }
        tables.insert(key, Table::new(name, schema));
        Ok(())
    }

    /// Drop a table; errors when absent.
    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.inner
            .tables
            .write()
            .remove(&Self::key(name))
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True when the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.inner.tables.read().contains_key(&Self::key(name))
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .tables
            .read()
            .values()
            .map(|t| t.name().to_string())
            .collect();
        names.sort();
        names
    }

    /// Snapshot (clone) of a table.
    pub fn table(&self, name: &str) -> Result<Table> {
        self.inner
            .tables
            .read()
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Append rows to a table.
    pub fn insert(&self, name: &str, rows: Vec<Vec<Value>>) -> Result<usize> {
        let mut tables = self.inner.tables.write();
        let t = tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        t.insert_rows(rows)
    }

    /// Mutate a table in place under the write lock.
    pub fn with_table_mut<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> Result<R> {
        let mut tables = self.inner.tables.write();
        let t = tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        Ok(f(t))
    }

    // ----- arrays ----------------------------------------------------

    /// Register an array; errors when the name is taken.
    pub fn create_array(&self, name: &str, array: NdArray) -> Result<()> {
        let mut arrays = self.inner.arrays.write();
        let key = Self::key(name);
        if arrays.contains_key(&key) {
            return Err(DbError::ArrayExists(name.to_string()));
        }
        arrays.insert(key, array);
        Ok(())
    }

    /// Replace (or create) an array.
    pub fn put_array(&self, name: &str, array: NdArray) {
        self.inner.arrays.write().insert(Self::key(name), array);
    }

    /// Snapshot (clone) of an array.
    pub fn array(&self, name: &str) -> Result<NdArray> {
        self.inner
            .arrays
            .read()
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| DbError::UnknownArray(name.to_string()))
    }

    /// Drop an array; errors when absent.
    pub fn drop_array(&self, name: &str) -> Result<()> {
        self.inner
            .arrays
            .write()
            .remove(&Self::key(name))
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownArray(name.to_string()))
    }

    /// True when the array exists.
    pub fn has_array(&self, name: &str) -> bool {
        self.inner.arrays.read().contains_key(&Self::key(name))
    }

    /// Array names, sorted.
    pub fn array_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.arrays.read().keys().cloned().collect();
        names.sort();
        names
    }

    // ----- session settings ------------------------------------------

    /// The `SET THREADS` override in effect (`None` = default).
    pub fn session_threads(&self) -> Option<usize> {
        *self.inner.threads.read()
    }

    /// The worker pool queries on this handle run on: the `SET
    /// THREADS` override when one is set, else the environment-driven
    /// default (`TELEIOS_THREADS`, then available parallelism).
    pub fn session_pool(&self) -> WorkerPool {
        match self.session_threads() {
            Some(n) => WorkerPool::with_threads(n),
            None => WorkerPool::default(),
        }
    }

    // ----- SQL entry point -------------------------------------------

    /// Parse and execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ResultSet> {
        match parse_statement(sql)? {
            Statement::Select(select) => {
                let chunk =
                    execute_select_with(&self.session_pool(), &CatalogProvider(self), &select)?;
                Ok(chunk.into())
            }
            Statement::SetThreads { threads } => {
                *self.inner.threads.write() = threads;
                Ok(ResultSet::empty())
            }
            Statement::CreateTable { name, columns } => {
                let schema = columns
                    .into_iter()
                    .map(|(n, ty)| ColumnDef::new(n, ty))
                    .collect();
                self.create_table(&name, schema)?;
                Ok(ResultSet::empty())
            }
            Statement::DropTable { name } => {
                self.drop_table(&name)?;
                Ok(ResultSet::empty())
            }
            Statement::Insert { table, columns, rows } => {
                let t = self.table(&table)?;
                let empty = Chunk::new(Vec::new(), Vec::new());
                let mut value_rows: Vec<Vec<Value>> = Vec::with_capacity(rows.len());
                for row in rows {
                    let vals: Vec<Value> = row
                        .iter()
                        .map(|e| exec::eval_expr(&empty, 0, e))
                        .collect::<Result<_>>()?;
                    let full = match &columns {
                        None => vals,
                        Some(cols) => {
                            if cols.len() != vals.len() {
                                return Err(DbError::ArityMismatch {
                                    expected: cols.len(),
                                    found: vals.len(),
                                });
                            }
                            // Reorder onto the full schema; absent => NULL.
                            let mut full = vec![Value::Null; t.schema().len()];
                            for (c, v) in cols.iter().zip(vals) {
                                let idx = t.column_index(c)?;
                                full[idx] = v;
                            }
                            full
                        }
                    };
                    value_rows.push(full);
                }
                let n = self.insert(&table, value_rows)?;
                Ok(ResultSet::affected(n))
            }
            Statement::Update { table, assignments, where_clause } => {
                let n = self.with_table_mut(&table, |t| -> Result<usize> {
                    let chunk = Chunk::from_table(t, t.name());
                    // Resolve target columns.
                    let cols: Vec<usize> = assignments
                        .iter()
                        .map(|(c, _)| t.column_index(c))
                        .collect::<Result<_>>()?;
                    // Rows to touch.
                    let mut rids: Vec<u32> = Vec::new();
                    for i in 0..chunk.num_rows() {
                        let hit = match &where_clause {
                            None => true,
                            Some(pred) => {
                                exec::eval_expr(&chunk, i, pred)? == Value::Bool(true)
                            }
                        };
                        if hit {
                            rids.push(i as u32);
                        }
                    }
                    // New values per row (expressions may reference columns).
                    let mut values: Vec<Vec<Value>> = Vec::with_capacity(rids.len());
                    for &rid in &rids {
                        let row_vals: Vec<Value> = assignments
                            .iter()
                            .map(|(_, e)| exec::eval_expr(&chunk, rid as usize, e))
                            .collect::<Result<_>>()?;
                        values.push(row_vals);
                    }
                    t.update_rows(&rids, &cols, &values)?;
                    Ok(rids.len())
                })??;
                Ok(ResultSet::affected(n))
            }
            Statement::Delete { table, where_clause } => {
                let n = self.with_table_mut(&table, |t| -> Result<usize> {
                    let chunk = Chunk::from_table(t, t.name());
                    let rids: Vec<u32> = match &where_clause {
                        None => (0..t.num_rows() as u32).collect(),
                        Some(pred) => {
                            let mut hits = Vec::new();
                            for i in 0..chunk.num_rows() {
                                if exec::eval_expr(&chunk, i, pred)? == Value::Bool(true) {
                                    hits.push(i as u32);
                                }
                            }
                            hits
                        }
                    };
                    let n = rids.len();
                    t.delete_rows(&rids);
                    Ok(n)
                })??;
                Ok(ResultSet::affected(n))
            }
        }
    }
}

struct CatalogProvider<'a>(&'a Catalog);

impl TableProvider for CatalogProvider<'_> {
    fn table(&self, name: &str) -> Result<Table> {
        self.0.table(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Catalog {
        let cat = Catalog::new();
        cat.execute("CREATE TABLE products (id INT, level STRING, cloud DOUBLE, sat STRING)")
            .unwrap();
        cat.execute(
            "INSERT INTO products VALUES \
             (1, 'L0', 0.10, 'MSG2'), \
             (2, 'L1', 0.55, 'MSG2'), \
             (3, 'L1', 0.20, 'MSG1'), \
             (4, 'L2', NULL,  'MSG1'), \
             (5, 'L2', 0.80, 'MSG2')",
        )
        .unwrap();
        cat
    }

    #[test]
    fn create_insert_select() {
        let cat = setup();
        let rs = cat.execute("SELECT id, level FROM products WHERE cloud > 0.15").unwrap();
        assert_eq!(rs.columns, vec!["id", "level"]);
        assert_eq!(rs.num_rows(), 3);
    }

    #[test]
    fn select_star_strips_qualifiers() {
        let cat = setup();
        let rs = cat.execute("SELECT * FROM products LIMIT 1").unwrap();
        assert_eq!(rs.columns, vec!["id", "level", "cloud", "sat"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let cat = setup();
        assert!(matches!(
            cat.execute("CREATE TABLE products (x INT)"),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn drop_table_works() {
        let cat = setup();
        cat.execute("DROP TABLE products").unwrap();
        assert!(cat.execute("SELECT * FROM products").is_err());
    }

    #[test]
    fn insert_with_column_list_and_nulls() {
        let cat = setup();
        cat.execute("INSERT INTO products (id, sat) VALUES (6, 'MSG3')").unwrap();
        let rs = cat.execute("SELECT level, cloud FROM products WHERE id = 6").unwrap();
        assert_eq!(rs.rows[0], vec![Value::Null, Value::Null]);
    }

    #[test]
    fn aggregates_group_by_having_order() {
        let cat = setup();
        let rs = cat
            .execute(
                "SELECT sat, COUNT(*) AS n, AVG(cloud) AS avg_cloud \
                 FROM products GROUP BY sat HAVING COUNT(*) >= 2 ORDER BY n DESC",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["sat", "n", "avg_cloud"]);
        assert_eq!(rs.num_rows(), 2);
        assert_eq!(rs.rows[0][0], Value::Str("MSG2".into()));
        assert_eq!(rs.rows[0][1], Value::Int(3));
        // AVG skips the NULL cloud.
        let Value::Double(avg) = rs.rows[1][2] else { panic!() };
        assert!((avg - 0.20).abs() < 1e-12);
    }

    #[test]
    fn join_via_where_uses_hash_join() {
        let cat = setup();
        cat.execute("CREATE TABLE sats (name STRING, agency STRING)").unwrap();
        cat.execute("INSERT INTO sats VALUES ('MSG1', 'EUMETSAT'), ('MSG2', 'EUMETSAT')")
            .unwrap();
        let rs = cat
            .execute(
                "SELECT p.id, s.agency FROM products p, sats s \
                 WHERE p.sat = s.name AND p.cloud < 0.3 ORDER BY p.id",
            )
            .unwrap();
        assert_eq!(rs.num_rows(), 2);
        assert_eq!(rs.rows[0][0], Value::Int(1));
        assert_eq!(rs.rows[1][0], Value::Int(3));
    }

    #[test]
    fn explicit_join_on() {
        let cat = setup();
        cat.execute("CREATE TABLE sats (name STRING, agency STRING)").unwrap();
        cat.execute("INSERT INTO sats VALUES ('MSG1', 'EUMETSAT')").unwrap();
        let rs = cat
            .execute("SELECT p.id FROM products p JOIN sats s ON p.sat = s.name ORDER BY p.id")
            .unwrap();
        assert_eq!(rs.num_rows(), 2); // ids 3 and 4 are MSG1
    }

    #[test]
    fn delete_with_predicate() {
        let cat = setup();
        let rs = cat.execute("DELETE FROM products WHERE level = 'L1'").unwrap();
        assert_eq!(rs.value(0, "affected"), Some(&Value::Int(2)));
        let rs = cat.execute("SELECT COUNT(*) FROM products").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn delete_all() {
        let cat = setup();
        cat.execute("DELETE FROM products").unwrap();
        let rs = cat.execute("SELECT COUNT(*) AS n FROM products").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(0));
    }

    #[test]
    fn distinct_and_order() {
        let cat = setup();
        let rs = cat.execute("SELECT DISTINCT level FROM products ORDER BY level").unwrap();
        assert_eq!(rs.num_rows(), 3);
        assert_eq!(rs.rows[0][0], Value::Str("L0".into()));
    }

    #[test]
    fn order_by_expression_alias() {
        let cat = setup();
        let rs = cat
            .execute("SELECT id, cloud * 100 AS pct FROM products WHERE cloud IS NOT NULL ORDER BY pct DESC LIMIT 2")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(5));
        assert_eq!(rs.rows[1][0], Value::Int(2));
    }

    #[test]
    fn like_and_in_filters() {
        let cat = setup();
        let rs = cat
            .execute("SELECT id FROM products WHERE level LIKE 'L_' AND sat IN ('MSG1')")
            .unwrap();
        assert_eq!(rs.num_rows(), 2);
    }

    #[test]
    fn arrays_in_catalog() {
        let cat = Catalog::new();
        let a = NdArray::matrix(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        cat.create_array("img", a.clone()).unwrap();
        assert!(cat.has_array("IMG"));
        assert_eq!(cat.array("img").unwrap(), a);
        assert!(cat.create_array("img", a.clone()).is_err());
        cat.put_array("img", a.map(|v| v * 2.0));
        assert_eq!(cat.array("img").unwrap().sum(), 20.0);
        cat.drop_array("img").unwrap();
        assert!(cat.array("img").is_err());
    }

    #[test]
    fn result_set_text_rendering() {
        let cat = setup();
        let rs = cat.execute("SELECT id, level FROM products LIMIT 2").unwrap();
        let text = rs.to_text();
        assert!(text.contains("id"));
        assert!(text.contains("L0"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    fn csv_export_escapes() {
        let cat = Catalog::new();
        cat.execute("CREATE TABLE t (a STRING, b INT)").unwrap();
        cat.execute("INSERT INTO t VALUES ('plain', 1), ('with,comma', 2), ('with\"quote', 3)")
            .unwrap();
        let csv = cat.execute("SELECT * FROM t ORDER BY b").unwrap().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",2");
        assert_eq!(lines[3], "\"with\"\"quote\",3");
    }

    #[test]
    fn concurrent_handles_share_state() {
        let cat = setup();
        let cat2 = cat.clone();
        cat2.execute("INSERT INTO products VALUES (99, 'L9', 0.0, 'X')").unwrap();
        let rs = cat.execute("SELECT COUNT(*) FROM products").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(6));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let cat = setup();
        assert!(matches!(
            cat.execute("SELECT * FROM nope"),
            Err(DbError::UnknownTable(_))
        ));
        assert!(cat.execute("SELECT nope FROM products").is_err());
    }

    #[test]
    fn update_statement() {
        let cat = setup();
        let rs = cat
            .execute("UPDATE products SET level = 'L9', cloud = cloud * 2 WHERE sat = 'MSG2'")
            .unwrap();
        assert_eq!(rs.value(0, "affected"), Some(&Value::Int(3)));
        let rs = cat.execute("SELECT id, level, cloud FROM products ORDER BY id").unwrap();
        assert_eq!(rs.rows[0][1], Value::Str("L9".into()));
        assert_eq!(rs.rows[0][2], Value::Double(0.2));
        // MSG1 rows untouched.
        assert_eq!(rs.rows[2][1], Value::Str("L1".into()));
        // NULL stays NULL through arithmetic.
        assert_eq!(rs.rows[3][2], Value::Null);
    }

    #[test]
    fn update_without_where_touches_all() {
        let cat = setup();
        let rs = cat.execute("UPDATE products SET cloud = 0.0").unwrap();
        assert_eq!(rs.value(0, "affected"), Some(&Value::Int(5)));
        let rs = cat.execute("SELECT SUM(cloud) AS s FROM products").unwrap();
        assert_eq!(rs.rows[0][0], Value::Double(0.0));
    }

    #[test]
    fn update_type_mismatch_is_atomic() {
        let cat = setup();
        let r = cat.execute("UPDATE products SET id = 'oops'");
        assert!(r.is_err());
        let rs = cat.execute("SELECT id FROM products WHERE id = 1").unwrap();
        assert_eq!(rs.num_rows(), 1);
    }

    #[test]
    fn update_unknown_column_errors() {
        let cat = setup();
        assert!(cat.execute("UPDATE products SET nope = 1").is_err());
    }

    #[test]
    fn count_star_in_order_by() {
        let cat = setup();
        let rs = cat
            .execute("SELECT level, COUNT(*) FROM products GROUP BY level ORDER BY COUNT(*) DESC, level")
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::Int(2));
    }

    #[test]
    fn global_aggregate_no_group() {
        let cat = setup();
        let rs = cat
            .execute("SELECT COUNT(*) AS n, MIN(cloud) AS lo, MAX(cloud) AS hi FROM products")
            .unwrap();
        assert_eq!(rs.rows[0], vec![Value::Int(5), Value::Double(0.1), Value::Double(0.8)]);
    }

    #[test]
    fn set_threads_scopes_the_session_pool() {
        let cat = setup();
        assert_eq!(cat.session_threads(), None);

        cat.execute("SET THREADS 2").unwrap();
        assert_eq!(cat.session_threads(), Some(2));
        assert_eq!(cat.session_pool().threads(), 2);
        // The override is shared by clones of the handle, like tables.
        assert_eq!(cat.clone().session_threads(), Some(2));

        // Queries still produce identical results under the override —
        // the pool only changes how the work is partitioned.
        let rs = cat
            .execute("SELECT level, COUNT(*) AS n FROM products GROUP BY level ORDER BY level")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[1], vec![Value::Str("L1".into()), Value::Int(2)]);

        cat.execute("SET THREADS DEFAULT").unwrap();
        assert_eq!(cat.session_threads(), None);
    }

    #[test]
    fn set_threads_sequential_matches_default() {
        let cat = setup();
        let sql = "SELECT sat, AVG(cloud) AS avg_cloud FROM products GROUP BY sat ORDER BY sat";
        let default_rows = cat.execute(sql).unwrap().rows;
        cat.execute("SET THREADS 1").unwrap();
        assert_eq!(cat.execute(sql).unwrap().rows, default_rows);
        cat.execute("SET THREADS 4").unwrap();
        assert_eq!(cat.execute(sql).unwrap().rows, default_rows);
    }
}
