#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-monet — a column-store database engine with arrays
//!
//! A from-scratch analogue of the MonetDB column store that the TELEIOS
//! Virtual Earth Observatory builds on. It provides:
//!
//! * BAT-style typed [`column::Column`]s with candidate-list (row-id)
//!   selection, executed column-at-a-time,
//! * [`table::Table`]s and a concurrent [`catalog::Catalog`],
//! * a relational executor ([`exec`]) — scan, select, project, hash join,
//!   group-by aggregation, sort, limit,
//! * a SQL subset ([`sql`]) compiled onto the executor,
//! * first-class n-dimensional [`array::NdArray`]s, the storage substrate
//!   for SciQL (`teleios-sciql`) and the Data Vault (`teleios-vault`).
//!
//! ## Example
//!
//! ```
//! use teleios_monet::catalog::Catalog;
//!
//! let cat = Catalog::new();
//! cat.execute("CREATE TABLE t (a INT, b DOUBLE, c STRING)").unwrap();
//! cat.execute("INSERT INTO t VALUES (1, 2.5, 'x'), (2, 5.0, 'y')").unwrap();
//! let rs = cat.execute("SELECT a, b FROM t WHERE b > 3.0").unwrap();
//! assert_eq!(rs.num_rows(), 1);
//! ```

pub mod array;
pub mod catalog;
pub mod column;
pub mod error;
pub mod exec;
pub mod persist;
pub mod sql;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use error::DbError;
pub use value::{DataType, Value};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DbError>;
