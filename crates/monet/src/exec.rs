//! Relational execution engine.
//!
//! Operators work on [`Chunk`]s — named bundles of equal-length columns.
//! Selections try a **columnar fast path** first (conjunctions of
//! `column op constant` compiled to [`Column::select`] candidate-list
//! passes, exactly the MonetDB style); any predicate the fast path cannot
//! express falls back to row-at-a-time evaluation. A pure row-at-a-time
//! reference filter is kept public for the ablation benchmark (E6/E4).

use crate::column::{CmpOp, Column, RowId, PAR_ROW_THRESHOLD};
use crate::error::DbError;
use crate::sql::ast::{AggFunc, BinOp, Expr};
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::Result;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use teleios_exec::WorkerPool;

/// A bundle of equal-length named columns flowing between operators.
#[derive(Debug, Clone)]
pub struct Chunk {
    names: Vec<String>,
    cols: Vec<Column>,
}

impl Chunk {
    /// Chunk from names and columns (must be equal length).
    pub fn new(names: Vec<String>, cols: Vec<Column>) -> Chunk {
        debug_assert_eq!(names.len(), cols.len());
        debug_assert!(cols.windows(2).all(|w| w[0].len() == w[1].len()));
        Chunk { names, cols }
    }

    /// Materialize a full table, qualifying names as `alias.column` and
    /// also exposing the bare column name when unambiguous.
    pub fn from_table(table: &Table, alias: &str) -> Chunk {
        let names = table
            .schema()
            .iter()
            .map(|d| format!("{alias}.{}", d.name))
            .collect();
        let cols = (0..table.num_columns()).map(|i| table.column(i).clone()).collect();
        Chunk { names, cols }
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.cols.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.cols[i]
    }

    /// Resolve a (possibly qualified) column reference.
    ///
    /// `a.x` matches exactly; `x` matches any `*.x` provided it is
    /// unambiguous.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.names.iter().position(|n| n.eq_ignore_ascii_case(name)) {
            return Ok(i);
        }
        let suffix_matches: Vec<usize> = self
            .names
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                n.rsplit('.')
                    .next()
                    .is_some_and(|last| last.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match suffix_matches.len() {
            1 => Ok(suffix_matches[0]),
            0 => Err(DbError::UnknownColumn(name.to_string())),
            _ => Err(DbError::Execution(format!("ambiguous column reference: {name}"))),
        }
    }

    /// Read one row as values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.cols.iter().map(|c| c.get(i)).collect()
    }

    /// Keep only the rows in `rids` (gather).
    pub fn take(&self, rids: &[RowId]) -> Chunk {
        Chunk {
            names: self.names.clone(),
            cols: self.cols.iter().map(|c| c.gather(rids)).collect(),
        }
    }

    /// Cartesian-free concatenation of two equal-row chunks (for joins).
    fn zip_concat(&self, other: &Chunk) -> Chunk {
        let mut names = self.names.clone();
        names.extend(other.names.iter().cloned());
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Chunk { names, cols }
    }
}

// ---------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------

/// Evaluate an expression for one row of a chunk.
pub fn eval_expr(chunk: &Chunk, row: usize, expr: &Expr) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(name) => {
            let i = chunk.resolve(name)?;
            Ok(chunk.column(i).get(row))
        }
        Expr::Binary { op, left, right } => {
            let l = eval_expr(chunk, row, left)?;
            // Short-circuit AND/OR with SQL three-valued logic.
            match op {
                BinOp::And => {
                    if l == Value::Bool(false) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_expr(chunk, row, right)?;
                    return Ok(sql_and(&l, &r));
                }
                BinOp::Or => {
                    if l == Value::Bool(true) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_expr(chunk, row, right)?;
                    return Ok(sql_or(&l, &r));
                }
                _ => {}
            }
            let r = eval_expr(chunk, row, right)?;
            eval_binary(*op, &l, &r)
        }
        Expr::Neg(e) => match eval_expr(chunk, row, e)? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            other => Err(DbError::TypeMismatch {
                expected: "numeric".into(),
                found: other.data_type().map_or("NULL".into(), |t| t.to_string()),
            }),
        },
        Expr::Not(e) => match eval_expr(chunk, row, e)? {
            Value::Null => Ok(Value::Null),
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(DbError::TypeMismatch {
                expected: "BOOL".into(),
                found: other.data_type().map_or("NULL".into(), |t| t.to_string()),
            }),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(chunk, row, expr)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Between { expr, lo, hi } => {
            let v = eval_expr(chunk, row, expr)?;
            let l = eval_expr(chunk, row, lo)?;
            let h = eval_expr(chunk, row, hi)?;
            if v.is_null() || l.is_null() || h.is_null() {
                return Ok(Value::Null);
            }
            let ge = v.sql_cmp(&l).is_some_and(|o| o != std::cmp::Ordering::Less);
            let le = v.sql_cmp(&h).is_some_and(|o| o != std::cmp::Ordering::Greater);
            Ok(Value::Bool(ge && le))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_expr(chunk, row, expr)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut found = false;
            for item in list {
                let w = eval_expr(chunk, row, item)?;
                if !w.is_null() && v.sql_cmp(&w) == Some(std::cmp::Ordering::Equal) {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::Like { expr, pattern } => {
            let v = eval_expr(chunk, row, expr)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern))),
                other => Err(DbError::TypeMismatch {
                    expected: "STRING".into(),
                    found: other.data_type().map_or("NULL".into(), |t| t.to_string()),
                }),
            }
        }
        Expr::Func { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(chunk, row, a))
                .collect::<Result<_>>()?;
            eval_scalar_func(name, &vals)
        }
    }
}

fn sql_and(a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    }
}

fn sql_or(a: &Value, b: &Value) -> Value {
    match (a.as_bool(), b.as_bool()) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    }
}

/// Evaluate a non-logical binary operator on two values.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.sql_cmp(r).ok_or_else(|| DbError::TypeMismatch {
                expected: "comparable values".into(),
                found: format!("{:?} vs {:?}", l.data_type(), r.data_type()),
            })?;
            let cmp = match op {
                Eq => CmpOp::Eq,
                Ne => CmpOp::Ne,
                Lt => CmpOp::Lt,
                Le => CmpOp::Le,
                Gt => CmpOp::Gt,
                Ge => CmpOp::Ge,
                _ => unreachable!(),
            };
            Ok(Value::Bool(cmp.matches(ord)))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // String concatenation via '+'.
            if op == Add {
                if let (Value::Str(a), Value::Str(b)) = (l, r) {
                    return Ok(Value::Str(format!("{a}{b}")));
                }
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => Ok(match op {
                    Add => Value::Int(a.wrapping_add(*b)),
                    Sub => Value::Int(a.wrapping_sub(*b)),
                    Mul => Value::Int(a.wrapping_mul(*b)),
                    Div => {
                        if *b == 0 {
                            return Err(DbError::Execution("division by zero".into()));
                        }
                        Value::Int(a / b)
                    }
                    Mod => {
                        if *b == 0 {
                            return Err(DbError::Execution("division by zero".into()));
                        }
                        Value::Int(a % b)
                    }
                    _ => unreachable!(),
                }),
                _ => {
                    let a = l.as_f64().ok_or_else(|| DbError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{l}"),
                    })?;
                    let b = r.as_f64().ok_or_else(|| DbError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{r}"),
                    })?;
                    Ok(Value::Double(match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => a / b,
                        Mod => a % b,
                        _ => unreachable!(),
                    }))
                }
            }
        }
        And | Or => Ok(if op == And { sql_and(l, r) } else { sql_or(l, r) }),
    }
}

fn eval_scalar_func(name: &str, args: &[Value]) -> Result<Value> {
    let arity = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(DbError::Execution(format!("{name} expects {n} argument(s), got {}", args.len())))
        }
    };
    match name {
        "ABS" => {
            arity(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.abs()),
                Value::Double(d) => Value::Double(d.abs()),
                other => {
                    return Err(DbError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{other}"),
                    })
                }
            })
        }
        "SQRT" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => {
                    let x = v.as_f64().ok_or_else(|| DbError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{v}"),
                    })?;
                    Ok(Value::Double(x.sqrt()))
                }
            }
        }
        "FLOOR" | "CEIL" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                v => {
                    let x = v.as_f64().ok_or_else(|| DbError::TypeMismatch {
                        expected: "numeric".into(),
                        found: format!("{v}"),
                    })?;
                    Ok(Value::Double(if name == "FLOOR" { x.floor() } else { x.ceil() }))
                }
            }
        }
        "LOWER" | "UPPER" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(if name == "LOWER" {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                })),
                other => Err(DbError::TypeMismatch {
                    expected: "STRING".into(),
                    found: format!("{other}"),
                }),
            }
        }
        "LENGTH" => {
            arity(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DbError::TypeMismatch {
                    expected: "STRING".into(),
                    found: format!("{other}"),
                }),
            }
        }
        other => Err(DbError::Execution(format!("unknown function: {other}"))),
    }
}

/// SQL LIKE with `%` (any run) and `_` (single char), case-sensitive.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try consuming 0..=len(s) characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

// ---------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------

/// Try to compile a predicate into candidate-list passes.
///
/// Handles conjunctions of `col op literal` (either operand order); returns
/// `None` when any conjunct is more complex.
fn compile_conjuncts(expr: &Expr, out: &mut Vec<(String, CmpOp, Value)>) -> bool {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            compile_conjuncts(left, out) && compile_conjuncts(right, out)
        }
        Expr::Binary { op, left, right } => {
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Ne => CmpOp::Ne,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Le => CmpOp::Le,
                BinOp::Gt => CmpOp::Gt,
                BinOp::Ge => CmpOp::Ge,
                _ => return false,
            };
            match (&**left, &**right) {
                (Expr::Column(c), Expr::Literal(v)) => {
                    out.push((c.clone(), cmp, v.clone()));
                    true
                }
                (Expr::Literal(v), Expr::Column(c)) => {
                    // Flip the comparison: `5 < x` becomes `x > 5`.
                    let flipped = match cmp {
                        CmpOp::Lt => CmpOp::Gt,
                        CmpOp::Le => CmpOp::Ge,
                        CmpOp::Gt => CmpOp::Lt,
                        CmpOp::Ge => CmpOp::Le,
                        other => other,
                    };
                    out.push((c.clone(), flipped, v.clone()));
                    true
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Filter a chunk, using the columnar candidate-list fast path when the
/// predicate is a conjunction of simple comparisons. Selection passes
/// run on the default worker pool (`TELEIOS_THREADS` override, else
/// available parallelism); see [`filter_with`] for an explicit pool.
pub fn filter(chunk: &Chunk, predicate: &Expr) -> Result<Chunk> {
    filter_with(&WorkerPool::default(), chunk, predicate)
}

/// [`filter`] with an explicit worker pool. A one-thread pool is the
/// exact sequential code path; results are identical at every pool
/// size (each candidate-narrowing pass is a morsel-parallel
/// [`Column::par_select`], which is bit-identical to `select`).
pub fn filter_with(pool: &WorkerPool, chunk: &Chunk, predicate: &Expr) -> Result<Chunk> {
    let mut conjuncts = Vec::new();
    if compile_conjuncts(predicate, &mut conjuncts) && !conjuncts.is_empty() {
        // Columnar path: run each conjunct as a candidate-narrowing pass.
        let mut cands: Option<Vec<RowId>> = None;
        for (col_name, op, value) in &conjuncts {
            let idx = chunk.resolve(col_name)?;
            let selected =
                chunk.column(idx).par_select(*op, value, cands.as_deref(), pool)?;
            cands = Some(selected);
            if cands.as_ref().is_some_and(Vec::is_empty) {
                break;
            }
        }
        return Ok(chunk.take(&cands.unwrap_or_default()));
    }
    filter_rowwise(chunk, predicate)
}

/// Reference row-at-a-time filter (used as the E4/E6 ablation baseline and
/// as the general-predicate fallback).
pub fn filter_rowwise(chunk: &Chunk, predicate: &Expr) -> Result<Chunk> {
    let mut keep = Vec::new();
    for i in 0..chunk.num_rows() {
        if eval_expr(chunk, i, predicate)? == Value::Bool(true) {
            keep.push(i as RowId);
        }
    }
    Ok(chunk.take(&keep))
}

/// Project expressions into a new chunk.
pub fn project(chunk: &Chunk, exprs: &[(Expr, String)]) -> Result<Chunk> {
    let mut names = Vec::with_capacity(exprs.len());
    let mut cols: Vec<Column> = Vec::with_capacity(exprs.len());
    for (expr, name) in exprs {
        names.push(name.clone());
        // Fast path: direct column reference.
        if let Expr::Column(c) = expr {
            let idx = chunk.resolve(c)?;
            cols.push(chunk.column(idx).clone());
            continue;
        }
        // General path: evaluate per row; infer the type from the first
        // non-null result (default DOUBLE).
        let mut values = Vec::with_capacity(chunk.num_rows());
        for i in 0..chunk.num_rows() {
            values.push(eval_expr(chunk, i, expr)?);
        }
        let ty = values
            .iter()
            .find_map(Value::data_type)
            .unwrap_or(DataType::Double);
        let mut col = Column::new(ty);
        for v in values {
            let v = if v.is_null() { v } else { v.coerce(ty).unwrap_or(Value::Null) };
            col.push(v)?;
        }
        cols.push(col);
    }
    Ok(Chunk::new(names, cols))
}

/// Hash equi-join of two chunks on key expressions, on the default
/// worker pool. See [`hash_join_with`].
pub fn hash_join(
    left: &Chunk,
    right: &Chunk,
    left_key: &Expr,
    right_key: &Expr,
) -> Result<Chunk> {
    hash_join_with(&WorkerPool::default(), left, right, left_key, right_key)
}

/// Hash equi-join with an explicit worker pool.
///
/// Both phases are morsel-parallel yet bit-identical to the
/// sequential join: the build side is partitioned into ordered
/// morsels whose local hash tables hash-partition their keys, and the
/// per-partition maps merge in parallel on the work-stealing
/// scheduler — each partition merging its morsels in morsel order, so
/// every key's RowId list stays ascending, exactly as the sequential
/// build produces. Probe morsels emit `(build, probe)` row pairs that
/// concatenate in morsel order (the sequential probe order). The
/// partition count never changes which rows match, only which of the
/// disjoint maps holds a key.
pub fn hash_join_with(
    pool: &WorkerPool,
    left: &Chunk,
    right: &Chunk,
    left_key: &Expr,
    right_key: &Expr,
) -> Result<Chunk> {
    // Build on the smaller side.
    let (build, probe, build_key, probe_key, build_is_left) =
        if left.num_rows() <= right.num_rows() {
            (left, right, left_key, right_key, true)
        } else {
            (right, left, right_key, left_key, false)
        };

    let build_n = build.num_rows();
    let nparts =
        if pool.threads() <= 1 || build_n < PAR_ROW_THRESHOLD { 1 } else { pool.threads() };
    let mut ht: Vec<HashMap<HashableValue, Vec<RowId>>> =
        (0..nparts).map(|_| HashMap::new()).collect();
    if nparts == 1 {
        for i in 0..build_n {
            let k = eval_expr(build, i, build_key)?;
            if k.is_null() {
                continue;
            }
            ht[0].entry(HashableValue(k)).or_default().push(i as RowId);
        }
    } else {
        // Each morsel builds nparts disjoint key-partitioned maps.
        let partials: Vec<Result<Vec<HashMap<HashableValue, Vec<RowId>>>>> = pool.run(
            pool.morsels_for(build_n)
                .into_iter()
                .map(|r| {
                    move || {
                        let mut local: Vec<HashMap<HashableValue, Vec<RowId>>> =
                            (0..nparts).map(|_| HashMap::new()).collect();
                        for i in r {
                            let k = eval_expr(build, i, build_key)?;
                            if k.is_null() {
                                continue;
                            }
                            let hk = HashableValue(k);
                            let p = partition_of(&hk, nparts);
                            local[p].entry(hk).or_default().push(i as RowId);
                        }
                        Ok(local)
                    }
                })
                .collect(),
        );
        // Transpose [morsel][partition] -> per-partition morsel lists,
        // preserving morsel order within each partition.
        let mut by_part: Vec<Vec<HashMap<HashableValue, Vec<RowId>>>> =
            (0..nparts).map(|_| Vec::new()).collect();
        for partial in partials {
            for (p, map) in partial?.into_iter().enumerate() {
                by_part[p].push(map);
            }
        }
        // Merge each partition independently on the stealing scheduler:
        // skewed key distributions make partition costs uneven, which
        // is exactly where stealing beats a static split. Merging in
        // morsel order keeps per-key row ids ascending.
        ht = pool.run_stealing(
            by_part
                .into_iter()
                .map(|maps| {
                    move || {
                        let mut part: HashMap<HashableValue, Vec<RowId>> = HashMap::new();
                        for m in maps {
                            for (k, mut rids) in m {
                                part.entry(k).or_default().append(&mut rids);
                            }
                        }
                        part
                    }
                })
                .collect(),
        );
    }

    let probe_n = probe.num_rows();
    let mut build_rows: Vec<RowId> = Vec::new();
    let mut probe_rows: Vec<RowId> = Vec::new();
    if pool.threads() <= 1 || probe_n < PAR_ROW_THRESHOLD {
        for j in 0..probe_n {
            let k = eval_expr(probe, j, probe_key)?;
            if k.is_null() {
                continue;
            }
            let hk = HashableValue(k);
            if let Some(matches) = ht[partition_of(&hk, nparts)].get(&hk) {
                for &i in matches {
                    build_rows.push(i);
                    probe_rows.push(j as RowId);
                }
            }
        }
    } else {
        let ht_ref = &ht;
        let partials: Vec<Result<(Vec<RowId>, Vec<RowId>)>> = pool.run(
            pool.morsels_for(probe_n)
                .into_iter()
                .map(|r| {
                    move || {
                        let mut b: Vec<RowId> = Vec::new();
                        let mut p: Vec<RowId> = Vec::new();
                        for j in r {
                            let k = eval_expr(probe, j, probe_key)?;
                            if k.is_null() {
                                continue;
                            }
                            let hk = HashableValue(k);
                            if let Some(matches) = ht_ref[partition_of(&hk, nparts)].get(&hk) {
                                for &i in matches {
                                    b.push(i);
                                    p.push(j as RowId);
                                }
                            }
                        }
                        Ok((b, p))
                    }
                })
                .collect(),
        );
        for partial in partials {
            let (mut b, mut p) = partial?;
            build_rows.append(&mut b);
            probe_rows.append(&mut p);
        }
    }

    let build_chunk = build.take(&build_rows);
    let probe_chunk = probe.take(&probe_rows);
    Ok(if build_is_left {
        build_chunk.zip_concat(&probe_chunk)
    } else {
        probe_chunk.zip_concat(&build_chunk)
    })
}

/// Nested-loop join on an arbitrary predicate (baseline for E3/E4).
pub fn nested_loop_join(left: &Chunk, right: &Chunk, predicate: &Expr) -> Result<Chunk> {
    let mut combined_rows_l = Vec::new();
    let mut combined_rows_r = Vec::new();
    // Evaluate the predicate against a row-pair view.
    let pair = left_right_names(left, right);
    for i in 0..left.num_rows() {
        for j in 0..right.num_rows() {
            let mut vals = left.row(i);
            vals.extend(right.row(j));
            let row_chunk = singleton_chunk(&pair, vals)?;
            if eval_expr(&row_chunk, 0, predicate)? == Value::Bool(true) {
                combined_rows_l.push(i as RowId);
                combined_rows_r.push(j as RowId);
            }
        }
    }
    Ok(left.take(&combined_rows_l).zip_concat(&right.take(&combined_rows_r)))
}

fn left_right_names(left: &Chunk, right: &Chunk) -> Vec<String> {
    let mut names = left.names().to_vec();
    names.extend(right.names().iter().cloned());
    names
}

fn singleton_chunk(names: &[String], vals: Vec<Value>) -> Result<Chunk> {
    let cols: Vec<Column> = vals
        .into_iter()
        .map(|v| {
            let ty = v.data_type().unwrap_or(DataType::Int);
            let mut c = Column::new(ty);
            c.push(v)?;
            Ok(c)
        })
        .collect::<Result<_>>()?;
    Ok(Chunk::new(names.to_vec(), cols))
}

/// Wrapper making `Value` hashable for join/group keys. NULL never
/// reaches this (callers skip it); doubles hash by bit pattern.
#[derive(Debug, Clone, PartialEq)]
struct HashableValue(Value);

impl Eq for HashableValue {}

impl std::hash::Hash for HashableValue {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match &self.0 {
            Value::Null => state.write_u8(0),
            Value::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Value::Double(d) => {
                state.write_u8(2);
                state.write_u64(d.to_bits());
            }
            Value::Str(s) => {
                state.write_u8(3);
                state.write(s.as_bytes());
            }
            Value::Bool(b) => {
                state.write_u8(4);
                state.write_u8(*b as u8);
            }
        }
    }
}

/// Deterministic hash partition of a join key. Every builder and
/// prober must agree on this mapping, so it uses a fresh
/// `DefaultHasher` (fixed seed) rather than any per-map state.
fn partition_of(k: &HashableValue, nparts: usize) -> usize {
    if nparts <= 1 {
        return 0;
    }
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() as usize) % nparts
}

/// One aggregate to compute.
#[derive(Debug, Clone)]
pub struct AggSpec {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument (`None` = `COUNT(*)`).
    pub expr: Option<Expr>,
    /// Output column name.
    pub name: String,
}

/// Group-by aggregation on the default worker pool. With empty
/// `group_by` produces a single row. See [`aggregate_with`].
pub fn aggregate(chunk: &Chunk, group_by: &[Expr], aggs: &[AggSpec]) -> Result<Chunk> {
    aggregate_with(&WorkerPool::default(), chunk, group_by, aggs)
}

/// Group-by aggregation with an explicit worker pool.
///
/// Grouping runs as thread-local partial group maps over ordered
/// morsels; merging the partials in morsel order reproduces both the
/// sequential first-encounter group order and each group's ascending
/// row-id list, so the output chunk is bit-identical to the
/// sequential run. Per-group aggregate evaluation then fans out over
/// the pool, one task per group, collected in group order.
pub fn aggregate_with(
    pool: &WorkerPool,
    chunk: &Chunk,
    group_by: &[Expr],
    aggs: &[AggSpec],
) -> Result<Chunk> {
    // Group rows by key tuple.
    let n = chunk.num_rows();
    let mut groups: HashMap<Vec<HashableValue>, Vec<RowId>> = HashMap::new();
    let mut order: Vec<Vec<HashableValue>> = Vec::new();
    if pool.threads() <= 1 || n < PAR_ROW_THRESHOLD {
        for i in 0..n {
            let key: Vec<HashableValue> = group_by
                .iter()
                .map(|e| eval_expr(chunk, i, e).map(HashableValue))
                .collect::<Result<_>>()?;
            if !groups.contains_key(&key) {
                order.push(key.clone());
            }
            groups.entry(key).or_default().push(i as RowId);
        }
    } else {
        type Partial = (Vec<Vec<HashableValue>>, HashMap<Vec<HashableValue>, Vec<RowId>>);
        let partials: Vec<Result<Partial>> = pool.run(
            pool.morsels_for(n)
                .into_iter()
                .map(|r| {
                    move || {
                        let mut local_groups: HashMap<Vec<HashableValue>, Vec<RowId>> =
                            HashMap::new();
                        let mut local_order: Vec<Vec<HashableValue>> = Vec::new();
                        for i in r {
                            let key: Vec<HashableValue> = group_by
                                .iter()
                                .map(|e| eval_expr(chunk, i, e).map(HashableValue))
                                .collect::<Result<_>>()?;
                            if !local_groups.contains_key(&key) {
                                local_order.push(key.clone());
                            }
                            local_groups.entry(key).or_default().push(i as RowId);
                        }
                        Ok((local_order, local_groups))
                    }
                })
                .collect(),
        );
        // Merge partials in morsel order: global first-encounter order
        // and ascending per-group row ids, exactly as sequential.
        for partial in partials {
            let (local_order, mut local_groups) = partial?;
            for key in local_order {
                let Some(mut rids) = local_groups.remove(&key) else {
                    continue;
                };
                match groups.entry(key) {
                    Entry::Occupied(mut e) => {
                        e.get_mut().append(&mut rids);
                    }
                    Entry::Vacant(e) => {
                        order.push(e.key().clone());
                        e.insert(rids);
                    }
                }
            }
        }
    }
    if group_by.is_empty() && groups.is_empty() {
        // Global aggregate over zero rows still yields one row.
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut names: Vec<String> = Vec::new();
    for (k, e) in group_by.iter().enumerate() {
        names.push(match e {
            Expr::Column(c) => c.clone(),
            _ => format!("group_{k}"),
        });
    }
    names.extend(aggs.iter().map(|a| a.name.clone()));

    // Compute output rows, one task per group when it pays off.
    let out_rows: Vec<Vec<Value>> =
        if pool.threads() <= 1 || order.len() <= 1 || n < PAR_ROW_THRESHOLD {
            let mut rows = Vec::with_capacity(order.len());
            for key in &order {
                let rids = &groups[key];
                let mut row: Vec<Value> = key.iter().map(|h| h.0.clone()).collect();
                for agg in aggs {
                    row.push(eval_aggregate(chunk, rids, agg)?);
                }
                rows.push(row);
            }
            rows
        } else {
            let groups_ref = &groups;
            let results: Vec<Result<Vec<Value>>> = pool.run(
                order
                    .iter()
                    .map(|key| {
                        move || {
                            let rids = groups_ref
                                .get(key)
                                .map(|v| v.as_slice())
                                .unwrap_or(&[]);
                            let mut row: Vec<Value> =
                                key.iter().map(|h| h.0.clone()).collect();
                            for agg in aggs {
                                row.push(eval_aggregate(chunk, rids, agg)?);
                            }
                            Ok(row)
                        }
                    })
                    .collect(),
            );
            results.into_iter().collect::<Result<Vec<_>>>()?
        };

    rows_to_chunk(names, out_rows)
}

fn eval_aggregate(chunk: &Chunk, rids: &[RowId], agg: &AggSpec) -> Result<Value> {
    // Evaluate the argument per row (or count rows for COUNT(*)).
    match (&agg.expr, agg.func) {
        (None, AggFunc::Count) => Ok(Value::Int(rids.len() as i64)),
        (None, _) => Err(DbError::Execution("only COUNT may take *".into())),
        (Some(e), func) => {
            let mut vals: Vec<Value> = Vec::with_capacity(rids.len());
            for &r in rids {
                vals.push(eval_expr(chunk, r as usize, e)?);
            }
            let non_null: Vec<&Value> = vals.iter().filter(|v| !v.is_null()).collect();
            Ok(match func {
                AggFunc::Count => Value::Int(non_null.len() as i64),
                AggFunc::Min => non_null
                    .iter()
                    .fold(Value::Null, |acc, v| {
                        if acc.is_null() || v.sql_cmp(&acc) == Some(std::cmp::Ordering::Less) {
                            (*v).clone()
                        } else {
                            acc
                        }
                    }),
                AggFunc::Max => non_null
                    .iter()
                    .fold(Value::Null, |acc, v| {
                        if acc.is_null() || v.sql_cmp(&acc) == Some(std::cmp::Ordering::Greater) {
                            (*v).clone()
                        } else {
                            acc
                        }
                    }),
                AggFunc::Sum | AggFunc::Avg => {
                    if non_null.is_empty() {
                        Value::Null
                    } else {
                        let all_int = non_null.iter().all(|v| matches!(v, Value::Int(_)));
                        let sum: f64 = non_null.iter().filter_map(|v| v.as_f64()).sum();
                        if func == AggFunc::Avg {
                            Value::Double(sum / non_null.len() as f64)
                        } else if all_int {
                            Value::Int(sum as i64)
                        } else {
                            Value::Double(sum)
                        }
                    }
                }
            })
        }
    }
}

/// Sort a chunk by key expressions.
pub fn sort(chunk: &Chunk, keys: &[(Expr, bool)]) -> Result<Chunk> {
    let n = chunk.num_rows();
    let mut key_vals: Vec<Vec<Value>> = Vec::with_capacity(n);
    for i in 0..n {
        let row_keys: Vec<Value> = keys
            .iter()
            .map(|(e, _)| eval_expr(chunk, i, e))
            .collect::<Result<_>>()?;
        key_vals.push(row_keys);
    }
    let mut order: Vec<RowId> = (0..n as RowId).collect();
    order.sort_by(|&a, &b| {
        for (k, (_, desc)) in keys.iter().enumerate() {
            let ord = key_vals[a as usize][k].order_cmp(&key_vals[b as usize][k]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(chunk.take(&order))
}

/// Keep the first `n` rows.
pub fn limit(chunk: &Chunk, n: usize) -> Chunk {
    let keep: Vec<RowId> = (0..chunk.num_rows().min(n) as RowId).collect();
    chunk.take(&keep)
}

/// Remove duplicate rows (first occurrence wins).
pub fn distinct(chunk: &Chunk) -> Chunk {
    let mut seen: std::collections::HashSet<Vec<HashableValue>> = std::collections::HashSet::new();
    let mut keep = Vec::new();
    for i in 0..chunk.num_rows() {
        let key: Vec<HashableValue> = chunk.row(i).into_iter().map(HashableValue).collect();
        if seen.insert(key) {
            keep.push(i as RowId);
        }
    }
    chunk.take(&keep)
}

/// Build a chunk from value rows, inferring column types.
pub fn rows_to_chunk(names: Vec<String>, rows: Vec<Vec<Value>>) -> Result<Chunk> {
    let ncols = names.len();
    let mut cols: Vec<Column> = (0..ncols)
        .map(|c| {
            let ty = rows
                .iter()
                .find_map(|r| r[c].data_type())
                .unwrap_or(DataType::Int);
            Column::new(ty)
        })
        .collect();
    for row in &rows {
        if row.len() != ncols {
            return Err(DbError::ArityMismatch { expected: ncols, found: row.len() });
        }
        for (c, v) in row.iter().enumerate() {
            let v = if v.is_null() {
                Value::Null
            } else {
                v.clone()
                    .coerce(cols[c].data_type())
                    .ok_or_else(|| DbError::TypeMismatch {
                        expected: cols[c].data_type().to_string(),
                        found: format!("{v}"),
                    })?
            };
            cols[c].push(v)?;
        }
    }
    Ok(Chunk::new(names, cols))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{ColumnDef, Table};

    fn chunk() -> Chunk {
        let mut t = Table::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("score", DataType::Double),
                ColumnDef::new("tag", DataType::Str),
            ],
        );
        t.insert_rows(vec![
            vec![1.into(), 0.5.into(), "alpha".into()],
            vec![2.into(), 0.9.into(), "beta".into()],
            vec![3.into(), 0.2.into(), "alpha".into()],
            vec![4.into(), Value::Null, "gamma".into()],
        ])
        .unwrap();
        Chunk::from_table(&t, "t")
    }

    fn col(name: &str) -> Expr {
        Expr::Column(name.into())
    }

    fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    #[test]
    fn resolve_qualified_and_bare() {
        let c = chunk();
        assert_eq!(c.resolve("t.id").unwrap(), 0);
        assert_eq!(c.resolve("score").unwrap(), 1);
        assert!(c.resolve("nope").is_err());
    }

    #[test]
    fn filter_columnar_path() {
        let c = chunk();
        let pred = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Gt, col("score"), lit(0.3)),
            Expr::binary(BinOp::Lt, col("id"), lit(2i64)),
        );
        let out = filter(&c, &pred).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(1));
    }

    #[test]
    fn filter_matches_rowwise_reference() {
        let c = chunk();
        let pred = Expr::binary(BinOp::Ge, col("score"), lit(0.5));
        let a = filter(&c, &pred).unwrap();
        let b = filter_rowwise(&c, &pred).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
        for i in 0..a.num_rows() {
            assert_eq!(a.row(i), b.row(i));
        }
    }

    #[test]
    fn filter_flipped_literal() {
        let c = chunk();
        // 0.3 < score  ≡  score > 0.3
        let pred = Expr::binary(BinOp::Lt, lit(0.3), col("score"));
        let out = filter(&c, &pred).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn filter_null_never_matches() {
        let c = chunk();
        let pred = Expr::binary(BinOp::Ge, col("score"), lit(0.0));
        let out = filter(&c, &pred).unwrap();
        assert_eq!(out.num_rows(), 3); // row 4 has NULL score
    }

    #[test]
    fn filter_complex_falls_back() {
        let c = chunk();
        // OR forces the row-wise path.
        let pred = Expr::binary(
            BinOp::Or,
            Expr::binary(BinOp::Eq, col("tag"), lit("gamma")),
            Expr::binary(BinOp::Gt, col("score"), lit(0.8)),
        );
        let out = filter(&c, &pred).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn project_expressions() {
        let c = chunk();
        let out = project(
            &c,
            &[
                (col("id"), "id".into()),
                (
                    Expr::binary(BinOp::Mul, col("score"), lit(100.0)),
                    "pct".into(),
                ),
            ],
        )
        .unwrap();
        assert_eq!(out.names(), &["id".to_string(), "pct".to_string()]);
        assert_eq!(out.row(1)[1], Value::Double(90.0));
        assert_eq!(out.row(3)[1], Value::Null);
    }

    #[test]
    fn hash_join_basic() {
        let left = chunk();
        let right = rows_to_chunk(
            vec!["r.id".into(), "r.label".into()],
            vec![
                vec![1.into(), "one".into()],
                vec![3.into(), "three".into()],
                vec![3.into(), "drei".into()],
                vec![9.into(), "nine".into()],
            ],
        )
        .unwrap();
        let out = hash_join(&left, &right, &col("t.id"), &col("r.id")).unwrap();
        assert_eq!(out.num_rows(), 3); // id=1 once, id=3 twice
        // Every output row satisfies the key equality.
        for i in 0..out.num_rows() {
            let row = out.row(i);
            assert_eq!(row[0], row[3]);
        }
    }

    #[test]
    fn hash_join_skips_nulls() {
        let left = rows_to_chunk(vec!["l.k".into()], vec![vec![Value::Null], vec![1.into()]]).unwrap();
        let right = rows_to_chunk(vec!["r.k".into()], vec![vec![Value::Null], vec![1.into()]]).unwrap();
        let out = hash_join(&left, &right, &col("l.k"), &col("r.k")).unwrap();
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn nested_loop_matches_hash_on_equi() {
        let left = chunk();
        let right = rows_to_chunk(
            vec!["r.id".into()],
            vec![vec![1.into()], vec![2.into()], vec![3.into()]],
        )
        .unwrap();
        let pred = Expr::binary(BinOp::Eq, col("t.id"), col("r.id"));
        let a = hash_join(&left, &right, &col("t.id"), &col("r.id")).unwrap();
        let b = nested_loop_join(&left, &right, &pred).unwrap();
        assert_eq!(a.num_rows(), b.num_rows());
    }

    #[test]
    fn aggregate_global() {
        let c = chunk();
        let out = aggregate(
            &c,
            &[],
            &[
                AggSpec { func: AggFunc::Count, expr: None, name: "n".into() },
                AggSpec { func: AggFunc::Sum, expr: Some(col("score")), name: "s".into() },
                AggSpec { func: AggFunc::Min, expr: Some(col("id")), name: "lo".into() },
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(4));
        let Value::Double(s) = out.row(0)[1] else { panic!() };
        assert!((s - 1.6).abs() < 1e-12);
        assert_eq!(out.row(0)[2], Value::Int(1));
    }

    #[test]
    fn aggregate_group_by() {
        let c = chunk();
        let out = aggregate(
            &c,
            &[col("tag")],
            &[
                AggSpec { func: AggFunc::Count, expr: None, name: "n".into() },
                AggSpec { func: AggFunc::Avg, expr: Some(col("score")), name: "avg".into() },
            ],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        // First group in input order is "alpha" with ids 1 and 3.
        assert_eq!(out.row(0)[0], Value::Str("alpha".into()));
        assert_eq!(out.row(0)[1], Value::Int(2));
        assert_eq!(out.row(0)[2], Value::Double((0.5 + 0.2) / 2.0));
        // gamma's AVG over only-NULL input is NULL, COUNT(*) still 1.
        assert_eq!(out.row(2)[0], Value::Str("gamma".into()));
        assert_eq!(out.row(2)[1], Value::Int(1));
        assert_eq!(out.row(2)[2], Value::Null);
    }

    #[test]
    fn aggregate_count_expr_skips_nulls() {
        let c = chunk();
        let out = aggregate(
            &c,
            &[],
            &[AggSpec { func: AggFunc::Count, expr: Some(col("score")), name: "n".into() }],
        )
        .unwrap();
        assert_eq!(out.row(0)[0], Value::Int(3));
    }

    #[test]
    fn aggregate_empty_input_one_row() {
        let c = chunk();
        let empty = filter(&c, &Expr::binary(BinOp::Gt, col("id"), lit(100i64))).unwrap();
        let out = aggregate(
            &empty,
            &[],
            &[AggSpec { func: AggFunc::Count, expr: None, name: "n".into() }],
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0)[0], Value::Int(0));
    }

    #[test]
    fn sort_asc_desc_and_nulls_first() {
        let c = chunk();
        let out = sort(&c, &[(col("score"), false)]).unwrap();
        assert_eq!(out.row(0)[1], Value::Null);
        assert_eq!(out.row(1)[1], Value::Double(0.2));
        assert_eq!(out.row(3)[1], Value::Double(0.9));
        let desc = sort(&c, &[(col("score"), true)]).unwrap();
        assert_eq!(desc.row(0)[1], Value::Double(0.9));
    }

    #[test]
    fn sort_multi_key() {
        let c = chunk();
        let out = sort(&c, &[(col("tag"), false), (col("id"), true)]).unwrap();
        assert_eq!(out.row(0)[0], Value::Int(3)); // alpha, id desc
        assert_eq!(out.row(1)[0], Value::Int(1));
    }

    #[test]
    fn limit_and_distinct() {
        let c = chunk();
        assert_eq!(limit(&c, 2).num_rows(), 2);
        assert_eq!(limit(&c, 100).num_rows(), 4);
        let tags = project(&c, &[(col("tag"), "tag".into())]).unwrap();
        assert_eq!(distinct(&tags).num_rows(), 3);
    }

    #[test]
    fn like_matching() {
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_go"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "a"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn three_valued_logic() {
        let c = chunk();
        // NULL > 0.5 OR TRUE => TRUE; row 4 must match.
        let pred = Expr::binary(
            BinOp::Or,
            Expr::binary(BinOp::Gt, col("score"), lit(0.5)),
            Expr::binary(BinOp::Eq, col("tag"), lit("gamma")),
        );
        let out = filter(&c, &pred).unwrap();
        assert_eq!(out.num_rows(), 2);
        // NULL AND FALSE => FALSE (not an error), nothing extra matches.
        let pred2 = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Gt, col("score"), lit(0.5)),
            Expr::binary(BinOp::Eq, col("tag"), lit("nope")),
        );
        assert_eq!(filter(&c, &pred2).unwrap().num_rows(), 0);
    }

    #[test]
    fn between_and_in() {
        let c = chunk();
        let pred = Expr::Between {
            expr: Box::new(col("id")),
            lo: Box::new(lit(2i64)),
            hi: Box::new(lit(3i64)),
        };
        assert_eq!(filter(&c, &pred).unwrap().num_rows(), 2);
        let pred2 = Expr::InList {
            expr: Box::new(col("tag")),
            list: vec![lit("alpha"), lit("gamma")],
            negated: false,
        };
        assert_eq!(filter(&c, &pred2).unwrap().num_rows(), 3);
        let pred3 = Expr::InList {
            expr: Box::new(col("tag")),
            list: vec![lit("alpha")],
            negated: true,
        };
        assert_eq!(filter(&c, &pred3).unwrap().num_rows(), 2);
    }

    #[test]
    fn scalar_functions() {
        let c = chunk();
        let out = project(
            &c,
            &[(
                Expr::Func { name: "UPPER".into(), args: vec![col("tag")] },
                "u".into(),
            )],
        )
        .unwrap();
        assert_eq!(out.row(0)[0], Value::Str("ALPHA".into()));
        assert!(eval_scalar_func("NOPE", &[]).is_err());
        assert_eq!(eval_scalar_func("ABS", &[Value::Int(-3)]).unwrap(), Value::Int(3));
        assert_eq!(
            eval_scalar_func("SQRT", &[Value::Double(9.0)]).unwrap(),
            Value::Double(3.0)
        );
        assert_eq!(eval_scalar_func("LENGTH", &[Value::Str("abc".into())]).unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(eval_binary(BinOp::Div, &Value::Int(1), &Value::Int(0)).is_err());
        // Float division yields infinity, not an error (IEEE semantics).
        assert_eq!(
            eval_binary(BinOp::Div, &Value::Double(1.0), &Value::Double(0.0)).unwrap(),
            Value::Double(f64::INFINITY)
        );
    }

    #[test]
    fn string_concat_with_plus() {
        assert_eq!(
            eval_binary(BinOp::Add, &Value::Str("a".into()), &Value::Str("b".into())).unwrap(),
            Value::Str("ab".into())
        );
    }
}
