//! BAT-style typed columns with candidate-list selection.
//!
//! Following MonetDB's execution model, relational operators work
//! *column-at-a-time*: a selection produces a **candidate list** — a
//! sorted vector of row ids — that downstream operators use to gather
//! values. This keeps inner loops tight, type-specialized and free of
//! per-row interpretation overhead.

use crate::error::DbError;
use crate::value::{DataType, Value};
use crate::Result;
use std::cmp::Ordering;
use teleios_exec::WorkerPool;

/// Row identifier within a column/table.
pub type RowId = u32;

/// Minimum input size (rows) before the parallel kernels split work
/// across the pool; below this the sequential kernels win outright.
pub const PAR_ROW_THRESHOLD: usize = 4096;

/// Comparison operator for vectorized selections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Apply to an `Ordering`.
    #[inline]
    pub fn matches(&self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A typed column. Nulls are tracked in a parallel validity vector
/// (`true` = present), kept only when at least one null exists.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    /// `None` means "no nulls"; otherwise `validity[i]` is false for NULL.
    validity: Option<Vec<bool>>,
}

#[derive(Debug, Clone)]
enum ColumnData {
    Int(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<String>),
    Bool(Vec<bool>),
}

impl Column {
    /// Empty column of the given type.
    pub fn new(ty: DataType) -> Column {
        let data = match ty {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Double => ColumnData::Double(Vec::new()),
            DataType::Str => ColumnData::Str(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        };
        Column { data, validity: None }
    }

    /// Column from integer data (no nulls).
    pub fn from_ints(v: Vec<i64>) -> Column {
        Column { data: ColumnData::Int(v), validity: None }
    }

    /// Column from double data (no nulls).
    pub fn from_doubles(v: Vec<f64>) -> Column {
        Column { data: ColumnData::Double(v), validity: None }
    }

    /// Column from string data (no nulls).
    pub fn from_strs(v: Vec<String>) -> Column {
        Column { data: ColumnData::Str(v), validity: None }
    }

    /// Column from bool data (no nulls).
    pub fn from_bools(v: Vec<bool>) -> Column {
        Column { data: ColumnData::Bool(v), validity: None }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Double(_) => DataType::Double,
            ColumnData::Str(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.data {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when row `i` holds NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[i])
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |v| v.iter().filter(|&&ok| !ok).count())
    }

    /// Append a value, coercing ints to double where needed.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let value = match value {
            Value::Null => {
                let n = self.len();
                self.validity
                    .get_or_insert_with(|| vec![true; n])
                    .push(false);
                // Push a type-appropriate placeholder.
                match &mut self.data {
                    ColumnData::Int(v) => v.push(0),
                    ColumnData::Double(v) => v.push(0.0),
                    ColumnData::Str(v) => v.push(String::new()),
                    ColumnData::Bool(v) => v.push(false),
                }
                return Ok(());
            }
            other => other.coerce(self.data_type()).ok_or_else(|| DbError::TypeMismatch {
                expected: self.data_type().to_string(),
                found: "incompatible value".into(),
            })?,
        };
        if let Some(v) = &mut self.validity {
            v.push(true);
        }
        match (&mut self.data, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(x),
            (ColumnData::Double(v), Value::Double(x)) => v.push(x),
            (ColumnData::Str(v), Value::Str(x)) => v.push(x),
            (ColumnData::Bool(v), Value::Bool(x)) => v.push(x),
            _ => unreachable!("coercion guarantees matching types"),
        }
        Ok(())
    }

    /// Value at row `i` (NULL-aware). Panics when out of bounds.
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Double(v) => Value::Double(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Vectorized selection against a constant: returns the sorted row ids
    /// (from `cands` if given, else the whole column) whose value matches.
    /// NULL rows never match.
    pub fn select(&self, op: CmpOp, value: &Value, cands: Option<&[RowId]>) -> Result<Vec<RowId>> {
        let mut out = Vec::new();
        macro_rules! run {
            ($data:expr, $conv:expr) => {{
                let needle = $conv(value).ok_or_else(|| DbError::TypeMismatch {
                    expected: self.data_type().to_string(),
                    found: value
                        .data_type()
                        .map_or("NULL".to_string(), |t| t.to_string()),
                })?;
                match cands {
                    Some(list) => {
                        for &rid in list {
                            let i = rid as usize;
                            if !self.is_null(i) {
                                if let Some(ord) = partial_cmp_total(&$data[i], &needle) {
                                    if op.matches(ord) {
                                        out.push(rid);
                                    }
                                }
                            }
                        }
                    }
                    None => {
                        for (i, v) in $data.iter().enumerate() {
                            if !self.is_null(i) {
                                if let Some(ord) = partial_cmp_total(v, &needle) {
                                    if op.matches(ord) {
                                        out.push(i as RowId);
                                    }
                                }
                            }
                        }
                    }
                }
            }};
        }
        match &self.data {
            ColumnData::Int(data) => {
                // Allow comparing an INT column against a DOUBLE constant.
                if let Value::Double(needle) = *value {
                    let sel = |i: usize| -> bool {
                        (data[i] as f64)
                            .partial_cmp(&needle)
                            .is_some_and(|o| op.matches(o))
                    };
                    match cands {
                        Some(list) => {
                            for &rid in list {
                                if !self.is_null(rid as usize) && sel(rid as usize) {
                                    out.push(rid);
                                }
                            }
                        }
                        None => {
                            for i in 0..data.len() {
                                if !self.is_null(i) && sel(i) {
                                    out.push(i as RowId);
                                }
                            }
                        }
                    }
                } else {
                    run!(data, Value::as_i64)
                }
            }
            ColumnData::Double(data) => {
                let needle = value.as_f64().ok_or_else(|| DbError::TypeMismatch {
                    expected: "DOUBLE".into(),
                    found: value.data_type().map_or("NULL".to_string(), |t| t.to_string()),
                })?;
                match cands {
                    Some(list) => {
                        for &rid in list {
                            let i = rid as usize;
                            if !self.is_null(i)
                                && data[i].partial_cmp(&needle).is_some_and(|o| op.matches(o))
                            {
                                out.push(rid);
                            }
                        }
                    }
                    None => {
                        for (i, v) in data.iter().enumerate() {
                            if !self.is_null(i)
                                && v.partial_cmp(&needle).is_some_and(|o| op.matches(o))
                            {
                                out.push(i as RowId);
                            }
                        }
                    }
                }
            }
            ColumnData::Str(data) => run!(data, |v: &Value| v.as_str().map(str::to_string)),
            ColumnData::Bool(data) => run!(data, Value::as_bool),
        }
        Ok(out)
    }

    /// Parallel [`Self::select`]: the row space (or candidate list) is
    /// partitioned into contiguous, ordered morsels, each worker runs
    /// the sequential kernel over its morsel, and the per-worker
    /// sorted RowId runs are concatenated in morsel order. Because
    /// morsels are disjoint ascending ranges, that concatenation *is*
    /// the k-way merge — the output is bit-identical to `select`.
    ///
    /// Inputs below [`PAR_ROW_THRESHOLD`] rows, or a pool with one
    /// thread, fall through to the sequential kernel directly.
    pub fn par_select(
        &self,
        op: CmpOp,
        value: &Value,
        cands: Option<&[RowId]>,
        pool: &WorkerPool,
    ) -> Result<Vec<RowId>> {
        let n = cands.map_or(self.len(), <[RowId]>::len);
        if pool.threads() <= 1 || n < PAR_ROW_THRESHOLD {
            return self.select(op, value, cands);
        }
        let parts = pool.morsels_for(n);
        let runs: Vec<Result<Vec<RowId>>> = match cands {
            Some(list) => pool.run(
                parts
                    .into_iter()
                    .map(|r| {
                        let sub = &list[r.start..r.end];
                        move || self.select(op, value, Some(sub))
                    })
                    .collect(),
            ),
            None => pool.run(
                parts
                    .into_iter()
                    .map(|r| {
                        move || {
                            let ids: Vec<RowId> =
                                (r.start as RowId..r.end as RowId).collect();
                            self.select(op, value, Some(&ids))
                        }
                    })
                    .collect(),
            ),
        };
        let mut out = Vec::new();
        for run in runs {
            out.extend(run?);
        }
        Ok(out)
    }

    /// Range selection `lo <= x <= hi` (both optional); NULLs excluded.
    pub fn select_range(
        &self,
        lo: Option<&Value>,
        hi: Option<&Value>,
        cands: Option<&[RowId]>,
    ) -> Result<Vec<RowId>> {
        let mut result = match lo {
            Some(v) => self.select(CmpOp::Ge, v, cands)?,
            None => match cands {
                Some(c) => c.to_vec(),
                None => (0..self.len() as RowId).collect(),
            },
        };
        if let Some(v) = hi {
            result = self.select(CmpOp::Le, v, Some(&result))?;
        }
        Ok(result)
    }

    /// Gather the values at `rows` into a new column (positional join).
    pub fn gather(&self, rows: &[RowId]) -> Column {
        // Keep the validity vector only when a NULL is actually
        // gathered, matching `push`-based construction.
        let validity = self.validity.as_ref().and_then(|v| {
            let gathered: Vec<bool> =
                rows.iter().map(|&rid| v[rid as usize]).collect();
            if gathered.iter().all(|&ok| ok) {
                None
            } else {
                Some(gathered)
            }
        });
        let data = match &self.data {
            ColumnData::Int(v) => {
                ColumnData::Int(rows.iter().map(|&rid| v[rid as usize]).collect())
            }
            ColumnData::Double(v) => {
                ColumnData::Double(rows.iter().map(|&rid| v[rid as usize]).collect())
            }
            ColumnData::Str(v) => {
                ColumnData::Str(rows.iter().map(|&rid| v[rid as usize].clone()).collect())
            }
            ColumnData::Bool(v) => {
                ColumnData::Bool(rows.iter().map(|&rid| v[rid as usize]).collect())
            }
        };
        Column { data, validity }
    }

    /// Iterate values (NULL-aware).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }

    /// Direct access to integer data for hot loops; `None` when the column
    /// is not an INT column or contains NULLs.
    pub fn as_int_slice(&self) -> Option<&[i64]> {
        match (&self.data, &self.validity) {
            (ColumnData::Int(v), None) => Some(v),
            _ => None,
        }
    }

    /// Direct access to double data; `None` for non-DOUBLE or nullable.
    pub fn as_double_slice(&self) -> Option<&[f64]> {
        match (&self.data, &self.validity) {
            (ColumnData::Double(v), None) => Some(v),
            _ => None,
        }
    }

    /// Minimum over candidates, SQL semantics (NULLs skipped).
    pub fn min(&self, cands: Option<&[RowId]>) -> Value {
        self.fold_cmp(cands, Ordering::Less)
    }

    /// Maximum over candidates, SQL semantics (NULLs skipped).
    pub fn max(&self, cands: Option<&[RowId]>) -> Value {
        self.fold_cmp(cands, Ordering::Greater)
    }

    fn fold_cmp(&self, cands: Option<&[RowId]>, want: Ordering) -> Value {
        let mut best = Value::Null;
        let mut consider = |v: Value| {
            if v.is_null() {
                return;
            }
            if best.is_null() || v.sql_cmp(&best) == Some(want) {
                best = v;
            }
        };
        match cands {
            Some(list) => {
                for &rid in list {
                    consider(self.get(rid as usize));
                }
            }
            None => {
                for i in 0..self.len() {
                    consider(self.get(i));
                }
            }
        }
        best
    }

    /// Sum over candidates (numeric columns; NULLs skipped). Integer
    /// columns sum to `Int`, doubles to `Double`; empty input sums to NULL.
    pub fn sum(&self, cands: Option<&[RowId]>) -> Result<Value> {
        match &self.data {
            ColumnData::Int(data) => {
                let mut acc: i64 = 0;
                let mut any = false;
                let mut add = |i: usize| {
                    if !self.is_null(i) {
                        acc = acc.wrapping_add(data[i]);
                        any = true;
                    }
                };
                match cands {
                    Some(list) => list.iter().for_each(|&r| add(r as usize)),
                    None => (0..data.len()).for_each(&mut add),
                }
                Ok(if any { Value::Int(acc) } else { Value::Null })
            }
            ColumnData::Double(data) => {
                let mut acc = 0.0;
                let mut any = false;
                let mut add = |i: usize| {
                    if !self.is_null(i) {
                        acc += data[i];
                        any = true;
                    }
                };
                match cands {
                    Some(list) => list.iter().for_each(|&r| add(r as usize)),
                    None => (0..data.len()).for_each(&mut add),
                }
                Ok(if any { Value::Double(acc) } else { Value::Null })
            }
            _ => Err(DbError::TypeMismatch {
                expected: "numeric column".into(),
                found: self.data_type().to_string(),
            }),
        }
    }

    /// Count of non-NULL values over candidates.
    pub fn count(&self, cands: Option<&[RowId]>) -> i64 {
        match cands {
            Some(list) => list
                .iter()
                .filter(|&&r| !self.is_null(r as usize))
                .count() as i64,
            None => (self.len() - self.null_count()) as i64,
        }
    }
}

#[inline]
fn partial_cmp_total<T: PartialOrd>(a: &T, b: &T) -> Option<Ordering> {
    a.partial_cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col() -> Column {
        Column::from_ints(vec![5, 3, 8, 3, 9, 1])
    }

    #[test]
    fn push_and_get() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Value::Int(1));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.get(2), Value::Int(3));
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = Column::new(DataType::Int);
        assert!(c.push(Value::Str("x".into())).is_err());
    }

    #[test]
    fn push_int_into_double_coerces() {
        let mut c = Column::new(DataType::Double);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Double(3.0));
    }

    #[test]
    fn select_eq() {
        let c = int_col();
        assert_eq!(c.select(CmpOp::Eq, &Value::Int(3), None).unwrap(), vec![1, 3]);
    }

    #[test]
    fn select_ops() {
        let c = int_col();
        assert_eq!(c.select(CmpOp::Lt, &Value::Int(4), None).unwrap(), vec![1, 3, 5]);
        assert_eq!(c.select(CmpOp::Ge, &Value::Int(8), None).unwrap(), vec![2, 4]);
        assert_eq!(c.select(CmpOp::Ne, &Value::Int(3), None).unwrap(), vec![0, 2, 4, 5]);
    }

    #[test]
    fn select_with_candidates_narrows() {
        let c = int_col();
        let first = c.select(CmpOp::Gt, &Value::Int(2), None).unwrap(); // 0,1,2,3,4
        let second = c.select(CmpOp::Lt, &Value::Int(6), Some(&first)).unwrap();
        assert_eq!(second, vec![0, 1, 3]);
    }

    #[test]
    fn select_nulls_never_match() {
        let mut c = Column::new(DataType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Int(1)).unwrap();
        assert_eq!(c.select(CmpOp::Eq, &Value::Int(1), None).unwrap(), vec![0, 2]);
        assert_eq!(c.select(CmpOp::Ne, &Value::Int(0), None).unwrap(), vec![0, 2]);
    }

    #[test]
    fn select_int_column_against_double_constant() {
        let c = int_col();
        assert_eq!(c.select(CmpOp::Gt, &Value::Double(7.5), None).unwrap(), vec![2, 4]);
    }

    #[test]
    fn select_range_inclusive() {
        let c = int_col();
        let r = c
            .select_range(Some(&Value::Int(3)), Some(&Value::Int(8)), None)
            .unwrap();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_type_error() {
        let c = int_col();
        assert!(c.select(CmpOp::Eq, &Value::Str("x".into()), None).is_err());
    }

    #[test]
    fn gather_reorders() {
        let c = int_col();
        let g = c.gather(&[4, 0, 0]);
        assert_eq!(g.get(0), Value::Int(9));
        assert_eq!(g.get(1), Value::Int(5));
        assert_eq!(g.get(2), Value::Int(5));
    }

    #[test]
    fn aggregates() {
        let c = int_col();
        assert_eq!(c.sum(None).unwrap(), Value::Int(29));
        assert_eq!(c.min(None), Value::Int(1));
        assert_eq!(c.max(None), Value::Int(9));
        assert_eq!(c.count(None), 6);
        let cands = vec![0u32, 2];
        assert_eq!(c.sum(Some(&cands)).unwrap(), Value::Int(13));
        assert_eq!(c.count(Some(&cands)), 2);
    }

    #[test]
    fn aggregates_with_nulls() {
        let mut c = Column::new(DataType::Double);
        c.push(Value::Double(1.0)).unwrap();
        c.push(Value::Null).unwrap();
        c.push(Value::Double(2.0)).unwrap();
        assert_eq!(c.sum(None).unwrap(), Value::Double(3.0));
        assert_eq!(c.count(None), 2);
        assert_eq!(c.min(None), Value::Double(1.0));
    }

    #[test]
    fn sum_of_empty_is_null() {
        let c = Column::new(DataType::Int);
        assert_eq!(c.sum(None).unwrap(), Value::Null);
        assert_eq!(c.min(None), Value::Null);
    }

    #[test]
    fn sum_of_string_errors() {
        let c = Column::from_strs(vec!["a".into()]);
        assert!(c.sum(None).is_err());
    }

    #[test]
    fn fast_slices_only_when_clean() {
        let c = int_col();
        assert!(c.as_int_slice().is_some());
        let mut n = Column::new(DataType::Int);
        n.push(Value::Null).unwrap();
        assert!(n.as_int_slice().is_none());
        assert!(c.as_double_slice().is_none());
    }

    #[test]
    fn string_selection() {
        let c = Column::from_strs(vec!["b".into(), "a".into(), "c".into(), "a".into()]);
        assert_eq!(c.select(CmpOp::Eq, &Value::Str("a".into()), None).unwrap(), vec![1, 3]);
        assert_eq!(c.select(CmpOp::Gt, &Value::Str("a".into()), None).unwrap(), vec![0, 2]);
    }

    #[test]
    fn bool_selection() {
        let c = Column::from_bools(vec![true, false, true]);
        assert_eq!(c.select(CmpOp::Eq, &Value::Bool(true), None).unwrap(), vec![0, 2]);
    }
}
