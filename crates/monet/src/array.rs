//! First-class n-dimensional arrays.
//!
//! SciQL's central idea is that arrays live *inside* the database next to
//! tables, sharing the execution engine. `NdArray` is that object: a
//! dense, row-major `f64` array with named dimensions, supporting the
//! structural operations SciQL queries compile to — slicing, element-wise
//! maps, zips, reductions, and **tiling** (the structural group-by of
//! SciQL, used for patch-based feature extraction).

use crate::error::DbError;
use crate::Result;
use teleios_exec::{fixed_morsels, WorkerPool, DEFAULT_MORSEL_CELLS};

/// Minimum cell count before element-wise array operators split work
/// across the worker pool; below this the plain loops win outright.
pub const PAR_CELL_THRESHOLD: usize = 16_384;

/// A named array dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    /// Dimension name (e.g. `x`, `y`, `band`).
    pub name: String,
    /// Extent.
    pub size: usize,
}

impl Dim {
    /// New dimension.
    pub fn new(name: impl Into<String>, size: usize) -> Dim {
        Dim { name: name.into(), size }
    }
}

/// A dense row-major n-dimensional array of `f64` cells.
#[derive(Debug, Clone, PartialEq)]
pub struct NdArray {
    dims: Vec<Dim>,
    data: Vec<f64>,
}

impl NdArray {
    /// Array filled with `fill`.
    pub fn filled(dims: Vec<Dim>, fill: f64) -> NdArray {
        let n = dims.iter().map(|d| d.size).product();
        NdArray { dims, data: vec![fill; n] }
    }

    /// Zero-filled array.
    pub fn zeros(dims: Vec<Dim>) -> NdArray {
        Self::filled(dims, 0.0)
    }

    /// Array from raw row-major data; the length must match the shape.
    pub fn from_vec(dims: Vec<Dim>, data: Vec<f64>) -> Result<NdArray> {
        let n: usize = dims.iter().map(|d| d.size).product();
        if n != data.len() {
            return Err(DbError::ShapeMismatch(format!(
                "shape holds {n} cells but {} values were given",
                data.len()
            )));
        }
        Ok(NdArray { dims, data })
    }

    /// Convenience: 2-D array with dims `y` (rows) then `x` (columns).
    pub fn matrix(rows: usize, cols: usize, data: Vec<f64>) -> Result<NdArray> {
        Self::from_vec(vec![Dim::new("y", rows), Dim::new("x", cols)], data)
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Extent per dimension.
    pub fn shape(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.size).collect()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Index of a dimension by name.
    pub fn dim_index(&self, name: &str) -> Result<usize> {
        self.dims
            .iter()
            .position(|d| d.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::ShapeMismatch(format!("unknown dimension: {name}")))
    }

    /// Linearize a multi-index.
    pub fn linear_index(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.dims.len() {
            return Err(DbError::ShapeMismatch(format!(
                "index rank {} != array rank {}",
                idx.len(),
                self.dims.len()
            )));
        }
        let mut lin = 0usize;
        for (i, (&ix, d)) in idx.iter().zip(&self.dims).enumerate() {
            if ix >= d.size {
                return Err(DbError::ShapeMismatch(format!(
                    "index {ix} out of bounds for dimension {i} (size {})",
                    d.size
                )));
            }
            lin = lin * d.size + ix;
        }
        Ok(lin)
    }

    /// Cell value at a multi-index.
    pub fn get(&self, idx: &[usize]) -> Result<f64> {
        Ok(self.data[self.linear_index(idx)?])
    }

    /// Set a cell.
    pub fn set(&mut self, idx: &[usize], v: f64) -> Result<()> {
        let lin = self.linear_index(idx)?;
        self.data[lin] = v;
        Ok(())
    }

    /// Rectangular slice: `ranges[i]` is the half-open `(start, end)` per
    /// dimension. Returns a new array with the same dimension names.
    pub fn slice(&self, ranges: &[(usize, usize)]) -> Result<NdArray> {
        if ranges.len() != self.dims.len() {
            return Err(DbError::ShapeMismatch(format!(
                "slice rank {} != array rank {}",
                ranges.len(),
                self.dims.len()
            )));
        }
        for ((start, end), d) in ranges.iter().zip(&self.dims) {
            if start > end || *end > d.size {
                return Err(DbError::ShapeMismatch(format!(
                    "slice {start}..{end} out of bounds for dimension '{}' (size {})",
                    d.name, d.size
                )));
            }
        }
        let out_dims: Vec<Dim> = self
            .dims
            .iter()
            .zip(ranges)
            .map(|(d, (s, e))| Dim::new(d.name.clone(), e - s))
            .collect();
        let mut out = NdArray::zeros(out_dims);
        let mut idx: Vec<usize> = ranges.iter().map(|(s, _)| *s).collect();
        let mut out_idx = vec![0usize; idx.len()];
        if out.is_empty() {
            return Ok(out);
        }
        loop {
            let v = self.get(&idx)?; // in range: bounds checked above
            out.set(&out_idx, v)?;
            // Odometer increment.
            let mut k = idx.len();
            loop {
                if k == 0 {
                    return Ok(out);
                }
                k -= 1;
                idx[k] += 1;
                out_idx[k] += 1;
                if idx[k] < ranges[k].1 {
                    break;
                }
                idx[k] = ranges[k].0;
                out_idx[k] = 0;
            }
        }
    }

    /// Element-wise map into a new array, on the default worker pool
    /// (`TELEIOS_THREADS` override, else available parallelism). Maps
    /// are order-independent per cell, so the result is bit-identical
    /// at every thread count. See [`Self::map_with`].
    pub fn map<F: Fn(f64) -> f64 + Sync>(&self, f: F) -> NdArray {
        self.map_with(&WorkerPool::default(), f)
    }

    /// [`Self::map`] with an explicit worker pool. Row-major chunks of
    /// the output are filled by independent workers; a one-thread pool
    /// (or a small array) runs the plain sequential loop.
    pub fn map_with<F: Fn(f64) -> f64 + Sync>(&self, pool: &WorkerPool, f: F) -> NdArray {
        let n = self.data.len();
        if pool.threads() <= 1 || n < PAR_CELL_THRESHOLD {
            return NdArray {
                dims: self.dims.clone(),
                data: self.data.iter().map(|&v| f(v)).collect(),
            };
        }
        let mut out = vec![0.0f64; n];
        let size = n.div_ceil(pool.threads());
        let f = &f;
        pool.run(
            out.chunks_mut(size)
                .zip(self.data.chunks(size))
                .map(|(dst, src)| {
                    move || {
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o = f(v);
                        }
                    }
                })
                .collect::<Vec<_>>(),
        );
        NdArray { dims: self.dims.clone(), data: out }
    }

    /// Fallible element-wise map (parallel like [`Self::map`]); the
    /// first error in row-major cell order is returned.
    pub fn try_map<E, F>(&self, f: F) -> std::result::Result<NdArray, E>
    where
        E: Send,
        F: Fn(f64) -> std::result::Result<f64, E> + Sync,
    {
        self.try_map_with(&WorkerPool::default(), f)
    }

    /// [`Self::try_map`] with an explicit worker pool. Each worker
    /// stops at its chunk's first error; collecting chunk results in
    /// row-major order returns the same error the sequential loop hits
    /// first.
    pub fn try_map_with<E, F>(
        &self,
        pool: &WorkerPool,
        f: F,
    ) -> std::result::Result<NdArray, E>
    where
        E: Send,
        F: Fn(f64) -> std::result::Result<f64, E> + Sync,
    {
        let n = self.data.len();
        if pool.threads() <= 1 || n < PAR_CELL_THRESHOLD {
            let mut data = Vec::with_capacity(n);
            for &v in &self.data {
                data.push(f(v)?);
            }
            return Ok(NdArray { dims: self.dims.clone(), data });
        }
        let mut out = vec![0.0f64; n];
        let size = n.div_ceil(pool.threads());
        let f = &f;
        let results: Vec<std::result::Result<(), E>> = pool.run(
            out.chunks_mut(size)
                .zip(self.data.chunks(size))
                .map(|(dst, src)| {
                    move || {
                        for (o, &v) in dst.iter_mut().zip(src) {
                            *o = f(v)?;
                        }
                        Ok(())
                    }
                })
                .collect::<Vec<_>>(),
        );
        for res in results {
            res?;
        }
        Ok(NdArray { dims: self.dims.clone(), data: out })
    }

    /// Element-wise combination of two same-shape arrays, on the
    /// default worker pool. See [`Self::zip_map_with`].
    pub fn zip_map<F: Fn(f64, f64) -> f64 + Sync>(
        &self,
        other: &NdArray,
        f: F,
    ) -> Result<NdArray> {
        self.zip_map_with(&WorkerPool::default(), other, f)
    }

    /// [`Self::zip_map`] with an explicit worker pool; bit-identical
    /// at every thread count.
    pub fn zip_map_with<F: Fn(f64, f64) -> f64 + Sync>(
        &self,
        pool: &WorkerPool,
        other: &NdArray,
        f: F,
    ) -> Result<NdArray> {
        if self.shape() != other.shape() {
            return Err(DbError::ShapeMismatch(format!(
                "zip of shapes {:?} and {:?}",
                self.shape(),
                other.shape()
            )));
        }
        let n = self.data.len();
        if pool.threads() <= 1 || n < PAR_CELL_THRESHOLD {
            return Ok(NdArray {
                dims: self.dims.clone(),
                data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
            });
        }
        let mut out = vec![0.0f64; n];
        let size = n.div_ceil(pool.threads());
        let f = &f;
        pool.run(
            out.chunks_mut(size)
                .zip(self.data.chunks(size).zip(other.data.chunks(size)))
                .map(|(dst, (a, b))| {
                    move || {
                        for ((o, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                            *o = f(x, y);
                        }
                    }
                })
                .collect::<Vec<_>>(),
        );
        Ok(NdArray { dims: self.dims.clone(), data: out })
    }

    /// Fold over all cells. Inherently sequential (arbitrary
    /// accumulator); reductions with parallel kernels are
    /// [`Self::sum`], [`Self::min`], [`Self::max`].
    pub fn fold<A, F: FnMut(A, f64) -> A>(&self, init: A, f: F) -> A {
        self.data.iter().copied().fold(init, f)
    }

    /// Sum of all cells, on the default worker pool. See
    /// [`Self::sum_with`].
    pub fn sum(&self) -> f64 {
        self.sum_with(&WorkerPool::default())
    }

    /// Sum with an explicit worker pool.
    ///
    /// Arrays of at most [`DEFAULT_MORSEL_CELLS`] cells use the plain
    /// left fold (the seed behavior, bit-for-bit). Larger arrays sum
    /// per fixed-size chunk and combine the partials left-to-right;
    /// the chunk boundaries depend only on the array length, never on
    /// the thread count, so the floating-point rounding — and hence
    /// the result — is identical at every pool size.
    pub fn sum_with(&self, pool: &WorkerPool) -> f64 {
        self.chunked_sum(pool, |v| v)
    }

    /// Chunked, deterministic `Σ f(v)` shared by sum and std_dev.
    fn chunked_sum<F: Fn(f64) -> f64 + Sync>(&self, pool: &WorkerPool, f: F) -> f64 {
        let n = self.data.len();
        if n <= DEFAULT_MORSEL_CELLS {
            return self.data.iter().map(|&v| f(v)).sum();
        }
        let data = &self.data;
        let f = &f;
        let chunks = fixed_morsels(n, DEFAULT_MORSEL_CELLS);
        let partials: Vec<f64> = if pool.threads() <= 1 {
            chunks
                .into_iter()
                .map(|r| data[r].iter().map(|&v| f(v)).sum())
                .collect()
        } else {
            pool.run(
                chunks
                    .into_iter()
                    .map(|r| move || data[r].iter().map(|&v| f(v)).sum::<f64>())
                    .collect(),
            )
        };
        partials.into_iter().sum()
    }

    /// Minimum cell (NaN-resistant); `None` when empty. `f64::min` is
    /// associative and commutative over non-NaN values, so the
    /// chunk-parallel reduction is identical to the sequential one.
    pub fn min(&self) -> Option<f64> {
        self.min_with(&WorkerPool::default())
    }

    /// [`Self::min`] with an explicit worker pool.
    pub fn min_with(&self, pool: &WorkerPool) -> Option<f64> {
        self.chunked_reduce(pool, f64::min)
    }

    /// Maximum cell (NaN-resistant); `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.max_with(&WorkerPool::default())
    }

    /// [`Self::max`] with an explicit worker pool.
    pub fn max_with(&self, pool: &WorkerPool) -> Option<f64> {
        self.chunked_reduce(pool, f64::max)
    }

    /// NaN-filtered reduction with an associative, commutative
    /// combiner (min/max), parallel over fixed-size chunks.
    fn chunked_reduce(
        &self,
        pool: &WorkerPool,
        combine: fn(f64, f64) -> f64,
    ) -> Option<f64> {
        let n = self.data.len();
        if pool.threads() <= 1 || n <= DEFAULT_MORSEL_CELLS {
            return self.data.iter().copied().filter(|v| !v.is_nan()).reduce(combine);
        }
        let data = &self.data;
        let partials: Vec<Option<f64>> = pool.run(
            fixed_morsels(n, DEFAULT_MORSEL_CELLS)
                .into_iter()
                .map(|r| {
                    move || data[r].iter().copied().filter(|v| !v.is_nan()).reduce(combine)
                })
                .collect(),
        );
        partials.into_iter().flatten().reduce(combine)
    }

    /// Mean of all cells; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum() / self.len() as f64)
        }
    }

    /// Population standard deviation; `None` when empty. The
    /// sum-of-squares pass uses the same deterministic chunked
    /// reduction as [`Self::sum`].
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.chunked_sum(&WorkerPool::default(), |v| (v - mean) * (v - mean))
            / self.len() as f64;
        Some(var.sqrt())
    }

    /// Iterate non-overlapping tiles of `tile_shape`, yielding the tile
    /// origin and the tile as a new array. Partial edge tiles are skipped,
    /// matching SciQL's structured group-by semantics.
    pub fn tiles(&self, tile_shape: &[usize]) -> Result<Vec<(Vec<usize>, NdArray)>> {
        if tile_shape.len() != self.dims.len() {
            return Err(DbError::ShapeMismatch(format!(
                "tile rank {} != array rank {}",
                tile_shape.len(),
                self.dims.len()
            )));
        }
        if tile_shape.contains(&0) {
            return Err(DbError::ShapeMismatch("zero-size tile".into()));
        }
        let counts: Vec<usize> = self
            .dims
            .iter()
            .zip(tile_shape)
            .map(|(d, &t)| d.size / t)
            .collect();
        let total: usize = counts.iter().product();
        let mut out = Vec::with_capacity(total);
        let mut tile_idx = vec![0usize; counts.len()];
        for _ in 0..total {
            let origin: Vec<usize> = tile_idx
                .iter()
                .zip(tile_shape)
                .map(|(&i, &t)| i * t)
                .collect();
            let ranges: Vec<(usize, usize)> = origin
                .iter()
                .zip(tile_shape)
                .map(|(&o, &t)| (o, o + t))
                .collect();
            out.push((origin, self.slice(&ranges)?));
            // Odometer over tile counts.
            let mut k = tile_idx.len();
            while k > 0 {
                k -= 1;
                tile_idx[k] += 1;
                if tile_idx[k] < counts[k] {
                    break;
                }
                tile_idx[k] = 0;
            }
        }
        Ok(out)
    }

    /// 2-D convolution with a centred kernel (odd-sized), zero padding.
    /// Only valid for 2-D arrays.
    pub fn convolve2d(&self, kernel: &NdArray) -> Result<NdArray> {
        if self.ndim() != 2 || kernel.ndim() != 2 {
            return Err(DbError::ShapeMismatch("convolve2d needs 2-D arrays".into()));
        }
        let (rows, cols) = (self.dims[0].size, self.dims[1].size);
        let (kr, kc) = (kernel.dims[0].size, kernel.dims[1].size);
        if kr % 2 == 0 || kc % 2 == 0 {
            return Err(DbError::ShapeMismatch("kernel sides must be odd".into()));
        }
        let (hr, hc) = (kr as isize / 2, kc as isize / 2);
        let mut out = NdArray::zeros(self.dims.clone());
        for r in 0..rows as isize {
            for c in 0..cols as isize {
                let mut acc = 0.0;
                for dr in -hr..=hr {
                    for dc in -hc..=hc {
                        let (rr, cc) = (r + dr, c + dc);
                        if rr >= 0 && rr < rows as isize && cc >= 0 && cc < cols as isize {
                            let kv = kernel.data[((dr + hr) * kc as isize + (dc + hc)) as usize];
                            acc += kv * self.data[(rr * cols as isize + cc) as usize];
                        }
                    }
                }
                out.data[(r * cols as isize + c) as usize] = acc;
            }
        }
        Ok(out)
    }

    /// Histogram of cell values into `bins` equal-width buckets over
    /// `[lo, hi)`; out-of-range values clamp into the edge buckets.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> Vec<usize> {
        let mut h = vec![0usize; bins.max(1)];
        if bins == 0 || hi <= lo {
            return h;
        }
        let w = (hi - lo) / bins as f64;
        for &v in &self.data {
            let b = (((v - lo) / w).floor() as isize).clamp(0, bins as isize - 1) as usize;
            h[b] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a2x3() -> NdArray {
        NdArray::matrix(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn shape_and_indexing() {
        let a = a2x3();
        assert_eq!(a.shape(), vec![2, 3]);
        assert_eq!(a.get(&[0, 0]).unwrap(), 1.0);
        assert_eq!(a.get(&[1, 2]).unwrap(), 6.0);
        assert!(a.get(&[2, 0]).is_err());
        assert!(a.get(&[0]).is_err());
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(NdArray::matrix(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn set_updates() {
        let mut a = a2x3();
        a.set(&[1, 1], 50.0).unwrap();
        assert_eq!(a.get(&[1, 1]).unwrap(), 50.0);
    }

    #[test]
    fn slice_middle() {
        let a = NdArray::matrix(4, 4, (0..16).map(|v| v as f64).collect()).unwrap();
        let s = a.slice(&[(1, 3), (1, 3)]).unwrap();
        assert_eq!(s.shape(), vec![2, 2]);
        assert_eq!(s.data(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn slice_full_is_copy() {
        let a = a2x3();
        let s = a.slice(&[(0, 2), (0, 3)]).unwrap();
        assert_eq!(s, a);
    }

    #[test]
    fn slice_empty() {
        let a = a2x3();
        let s = a.slice(&[(1, 1), (0, 3)]).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn slice_out_of_bounds() {
        let a = a2x3();
        assert!(a.slice(&[(0, 3), (0, 3)]).is_err());
        assert!(a.slice(&[(2, 1), (0, 3)]).is_err());
    }

    #[test]
    fn map_and_zip() {
        let a = a2x3();
        let b = a.map(|v| v * 2.0);
        assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0]);
        let c = a.zip_map(&b, |x, y| y - x).unwrap();
        assert_eq!(c.data(), a.data());
        let bad = NdArray::matrix(3, 2, vec![0.0; 6]).unwrap();
        assert!(a.zip_map(&bad, |x, _| x).is_err());
    }

    #[test]
    fn reductions() {
        let a = a2x3();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(6.0));
        assert_eq!(a.mean(), Some(3.5));
        let sd = a.std_dev().unwrap();
        assert!((sd - 1.7078).abs() < 1e-3);
    }

    #[test]
    fn reductions_empty() {
        let e = NdArray::zeros(vec![Dim::new("x", 0)]);
        assert_eq!(e.min(), None);
        assert_eq!(e.mean(), None);
    }

    #[test]
    fn tiles_cover_divisible_array() {
        let a = NdArray::matrix(4, 4, (0..16).map(|v| v as f64).collect()).unwrap();
        let tiles = a.tiles(&[2, 2]).unwrap();
        assert_eq!(tiles.len(), 4);
        assert_eq!(tiles[0].0, vec![0, 0]);
        assert_eq!(tiles[0].1.data(), &[0.0, 1.0, 4.0, 5.0]);
        assert_eq!(tiles[3].0, vec![2, 2]);
        assert_eq!(tiles[3].1.data(), &[10.0, 11.0, 14.0, 15.0]);
        // Tiles partition the array: sums agree.
        let total: f64 = tiles.iter().map(|(_, t)| t.sum()).sum();
        assert_eq!(total, a.sum());
    }

    #[test]
    fn tiles_skip_partial_edges() {
        let a = NdArray::matrix(5, 5, vec![1.0; 25]).unwrap();
        let tiles = a.tiles(&[2, 2]).unwrap();
        assert_eq!(tiles.len(), 4); // 2x2 full tiles only
    }

    #[test]
    fn tiles_errors() {
        let a = a2x3();
        assert!(a.tiles(&[2]).is_err());
        assert!(a.tiles(&[0, 1]).is_err());
    }

    #[test]
    fn convolve_identity() {
        let a = a2x3();
        let id = NdArray::matrix(1, 1, vec![1.0]).unwrap();
        assert_eq!(a.convolve2d(&id).unwrap(), a);
    }

    #[test]
    fn convolve_box_blur_center() {
        let mut a = NdArray::matrix(3, 3, vec![0.0; 9]).unwrap();
        a.set(&[1, 1], 9.0).unwrap();
        let k = NdArray::matrix(3, 3, vec![1.0 / 9.0; 9]).unwrap();
        let b = a.convolve2d(&k).unwrap();
        // Every cell sees the centre impulse once.
        for &v in b.data() {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn convolve_requires_odd_kernel() {
        let a = a2x3();
        let k = NdArray::matrix(2, 2, vec![1.0; 4]).unwrap();
        assert!(a.convolve2d(&k).is_err());
    }

    #[test]
    fn histogram_buckets() {
        let a = NdArray::matrix(1, 6, vec![0.0, 0.5, 1.0, 5.0, 9.9, 12.0]).unwrap();
        let h = a.histogram(0.0, 10.0, 10);
        assert_eq!(h[0], 2); // 0.0, 0.5
        assert_eq!(h[1], 1); // 1.0
        assert_eq!(h[5], 1); // 5.0
        assert_eq!(h[9], 2); // 9.9 plus clamped 12.0
        assert_eq!(h.iter().sum::<usize>(), 6);
    }

    #[test]
    fn dim_lookup() {
        let a = a2x3();
        assert_eq!(a.dim_index("x").unwrap(), 1);
        assert_eq!(a.dim_index("Y").unwrap(), 0);
        assert!(a.dim_index("z").is_err());
    }

    #[test]
    fn three_dimensional_roundtrip() {
        let dims = vec![Dim::new("band", 2), Dim::new("y", 3), Dim::new("x", 4)];
        let mut a = NdArray::zeros(dims);
        a.set(&[1, 2, 3], 42.0).unwrap();
        assert_eq!(a.get(&[1, 2, 3]).unwrap(), 42.0);
        assert_eq!(a.get(&[0, 0, 0]).unwrap(), 0.0);
        let s = a.slice(&[(1, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(s.shape(), vec![1, 3, 4]);
        assert_eq!(s.get(&[0, 2, 3]).unwrap(), 42.0);
    }
}
