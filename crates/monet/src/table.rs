//! Tables: named, typed column collections.

use crate::column::{Column, RowId};
use crate::error::DbError;
use crate::value::{DataType, Value};
use crate::Result;

/// A column definition in a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-preserving; lookups are case-insensitive).
    pub name: String,
    /// Column type.
    pub ty: DataType,
}

impl ColumnDef {
    /// New column definition.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef { name: name.into(), ty }
    }
}

/// A table: a schema plus one [`Column`] per definition, all equal length.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Vec<ColumnDef>,
    columns: Vec<Column>,
}

impl Table {
    /// Empty table with the given schema.
    pub fn new(name: impl Into<String>, schema: Vec<ColumnDef>) -> Table {
        let columns = schema.iter().map(|d| Column::new(d.ty)).collect();
        Table { name: name.into(), schema, columns }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &[ColumnDef] {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.schema
            .iter()
            .position(|d| d.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Append one row.
    pub fn insert_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(DbError::ArityMismatch { expected: self.schema.len(), found: values.len() });
        }
        // Validate all values first so a failed row is not half-applied.
        let coerced: Vec<Value> = values
            .into_iter()
            .zip(&self.schema)
            .map(|(v, d)| {
                if v.is_null() {
                    Ok(Value::Null)
                } else {
                    v.clone().coerce(d.ty).ok_or_else(|| DbError::TypeMismatch {
                        expected: d.ty.to_string(),
                        found: v.data_type().map_or("NULL".to_string(), |t| t.to_string()),
                    })
                }
            })
            .collect::<Result<_>>()?;
        for (col, v) in self.columns.iter_mut().zip(coerced) {
            col.push(v)?; // cannot fail: validated above
        }
        Ok(())
    }

    /// Append many rows.
    pub fn insert_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<usize> {
        let n = rows.len();
        for row in rows {
            self.insert_row(row)?;
        }
        Ok(n)
    }

    /// Read one full row.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Delete the rows in `rids` (must be sorted ascending). Rebuilds the
    /// columns; row ids of surviving rows shift down.
    pub fn delete_rows(&mut self, rids: &[RowId]) {
        if rids.is_empty() {
            return;
        }
        let keep: Vec<RowId> = {
            let mut del = rids.iter().copied().peekable();
            (0..self.num_rows() as RowId)
                .filter(|i| {
                    if del.peek() == Some(i) {
                        del.next();
                        false
                    } else {
                        true
                    }
                })
                .collect()
        };
        for col in &mut self.columns {
            *col = col.gather(&keep);
        }
    }

    /// All row ids.
    pub fn all_rows(&self) -> Vec<RowId> {
        (0..self.num_rows() as RowId).collect()
    }

    /// Overwrite one cell (type-checked; NULL always allowed).
    pub fn set_value(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        let d = &self.schema[col];
        let value = if value.is_null() {
            Value::Null
        } else {
            value.clone().coerce(d.ty).ok_or_else(|| DbError::TypeMismatch {
                expected: d.ty.to_string(),
                found: value.data_type().map_or("NULL".to_string(), |t| t.to_string()),
            })?
        };
        // Columns have no in-place setter; rebuild the column cell-wise.
        // Updates rewrite whole columns in a column store anyway.
        let mut rebuilt = Column::new(d.ty);
        for i in 0..self.num_rows() {
            let v = if i == row { value.clone() } else { self.columns[col].get(i) };
            rebuilt.push(v)?; // cannot fail: validated above
        }
        self.columns[col] = rebuilt;
        Ok(())
    }

    /// Apply per-row assignments: for every row id in `rows`, set the
    /// given columns to the supplied values (one value vector per row,
    /// parallel to `rows`). All values are validated before any write.
    pub fn update_rows(
        &mut self,
        rows: &[RowId],
        cols: &[usize],
        values: &[Vec<Value>],
    ) -> Result<()> {
        debug_assert_eq!(rows.len(), values.len());
        // Validate everything first so the update is atomic.
        let mut coerced: Vec<Vec<Value>> = Vec::with_capacity(values.len());
        for vals in values {
            let mut row_out = Vec::with_capacity(vals.len());
            for (&c, v) in cols.iter().zip(vals) {
                let d = &self.schema[c];
                let v = if v.is_null() {
                    Value::Null
                } else {
                    v.clone().coerce(d.ty).ok_or_else(|| DbError::TypeMismatch {
                        expected: d.ty.to_string(),
                        found: v.data_type().map_or("NULL".to_string(), |t| t.to_string()),
                    })?
                };
                row_out.push(v);
            }
            coerced.push(row_out);
        }
        // Rebuild each touched column once (column-store style).
        for (ci, &c) in cols.iter().enumerate() {
            let ty = self.schema[c].ty;
            let mut rebuilt = Column::new(ty);
            let mut patch: std::collections::HashMap<RowId, &Value> = std::collections::HashMap::new();
            for (ri, &rid) in rows.iter().enumerate() {
                patch.insert(rid, &coerced[ri][ci]);
            }
            for i in 0..self.num_rows() {
                let v = match patch.get(&(i as RowId)) {
                    Some(v) => (*v).clone(),
                    None => self.columns[c].get(i),
                };
                rebuilt.push(v)?; // cannot fail: validated above
            }
            self.columns[c] = rebuilt;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "products",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("level", DataType::Str),
                ColumnDef::new("cloud", DataType::Double),
            ],
        );
        t.insert_rows(vec![
            vec![1.into(), "L0".into(), 0.1.into()],
            vec![2.into(), "L1".into(), 0.5.into()],
            vec![3.into(), "L1".into(), Value::Null],
        ])
        .unwrap();
        t
    }

    #[test]
    fn schema_and_shape() {
        let t = sample();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.schema()[1].name, "level");
    }

    #[test]
    fn column_lookup_case_insensitive() {
        let t = sample();
        assert_eq!(t.column_index("CLOUD").unwrap(), 2);
        assert!(t.column_index("nope").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = sample();
        assert!(matches!(
            t.insert_row(vec![4.into()]),
            Err(DbError::ArityMismatch { expected: 3, found: 1 })
        ));
        assert_eq!(t.num_rows(), 3);
    }

    #[test]
    fn type_mismatch_rejected_atomically() {
        let mut t = sample();
        // Third value has the wrong type; nothing must be appended.
        let r = t.insert_row(vec![4.into(), "L2".into(), "oops".into()]);
        assert!(r.is_err());
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column(0).len(), 3);
    }

    #[test]
    fn nulls_accepted() {
        let t = sample();
        assert_eq!(t.row(2)[2], Value::Null);
    }

    #[test]
    fn int_coerces_to_double_column() {
        let mut t = sample();
        t.insert_row(vec![4.into(), "L2".into(), Value::Int(1)]).unwrap();
        assert_eq!(t.row(3)[2], Value::Double(1.0));
    }

    #[test]
    fn delete_rows_shifts() {
        let mut t = sample();
        t.delete_rows(&[1]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0)[0], Value::Int(1));
        assert_eq!(t.row(1)[0], Value::Int(3));
    }

    #[test]
    fn delete_all() {
        let mut t = sample();
        t.delete_rows(&[0, 1, 2]);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn delete_empty_noop() {
        let mut t = sample();
        t.delete_rows(&[]);
        assert_eq!(t.num_rows(), 3);
    }
}
