//! SQL abstract syntax tree.

use crate::value::{DataType, Value};

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Literal(Value),
    /// A (possibly `table.`-qualified) column reference.
    Column(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr BETWEEN lo AND hi`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        lo: Box<Expr>,
        /// Upper bound (inclusive).
        hi: Box<Expr>,
    },
    /// `expr IN (v1, v2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern literal.
        pattern: String,
    },
    /// Scalar function call (`ABS`, `SQRT`, `LOWER`, `UPPER`, `LENGTH`).
    Func {
        /// Upper-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Shorthand for a binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// Collect referenced column names into `out`.
    pub fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Literal(_) => {}
            Expr::Column(c) => out.push(c.clone()),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Neg(e) | Expr::Not(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Between { expr, lo, hi } => {
                expr.collect_columns(out);
                lo.collect_columns(out);
                hi.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }
}

/// Aggregate function in a SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` or `COUNT(*)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parse a function name as an aggregate.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// One item in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call with an optional alias. `expr` is `None` for
    /// `COUNT(*)`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` = `*`).
        expr: Option<Expr>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table reference in FROM, with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// An ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// True for DESC.
    pub desc: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// True for SELECT DISTINCT.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM tables (comma join when more than one).
    pub from: Vec<TableRef>,
    /// Explicit `JOIN ... ON` clauses, applied left-to-right after `from[0]`.
    pub joins: Vec<(TableRef, Expr)>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate (evaluated over aggregate output).
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT.
    pub limit: Option<usize>,
}

/// Any SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT query.
    Select(Select),
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
    },
    /// INSERT INTO ... VALUES.
    Insert {
        /// Target table.
        table: String,
        /// Optional column list.
        columns: Option<Vec<String>>,
        /// Row tuples.
        rows: Vec<Vec<Expr>>,
    },
    /// DELETE FROM ... \[WHERE\].
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// UPDATE ... SET ... \[WHERE\].
    Update {
        /// Target table.
        table: String,
        /// (column, new value expression) assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional predicate.
        where_clause: Option<Expr>,
    },
    /// `SET THREADS n` / `SET THREADS DEFAULT` — session worker-pool
    /// override for subsequent queries on the same catalog handle.
    SetThreads {
        /// `Some(n)` pins query execution at `n` worker threads;
        /// `None` (the `DEFAULT` form) restores the environment-driven
        /// default pool size.
        threads: Option<usize>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_columns_walks_tree() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::Gt, Expr::Column("a".into()), Expr::Literal(Value::Int(1))),
            Expr::IsNull { expr: Box::new(Expr::Column("b".into())), negated: true },
        );
        let mut cols = Vec::new();
        e.collect_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn aggfunc_parse() {
        assert_eq!(AggFunc::parse("count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("AVG"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::parse("CONCAT"), None);
    }
}
