//! Query planner: compiles a parsed [`Select`] onto the executor.
//!
//! The planner performs the optimizations the paper attributes to the
//! DBMS: WHERE conjuncts that equate columns of two tables become hash
//! joins (greedy join-graph traversal), remaining conjuncts become
//! candidate-list selections, and everything else lowers to the generic
//! operators in [`crate::exec`].

use crate::error::DbError;
use crate::exec::{self, AggSpec, Chunk};
use crate::sql::ast::*;
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use teleios_exec::WorkerPool;

/// Provides table lookup to the planner.
pub trait TableProvider {
    /// Fetch a table snapshot by (case-insensitive) name.
    fn table(&self, name: &str) -> Result<Table>;
}

/// Execute a SELECT against a table provider on the default worker
/// pool. See [`execute_select_with`] for an explicit pool (what
/// `SET THREADS` routes through).
pub fn execute_select(provider: &dyn TableProvider, select: &Select) -> Result<Chunk> {
    execute_select_with(&WorkerPool::default(), provider, select)
}

/// Execute a SELECT against a table provider with an explicit worker
/// pool. The pool reaches every parallel operator the plan lowers to
/// (selection, hash join, aggregation); a one-thread pool is the exact
/// sequential code path.
pub fn execute_select_with(
    pool: &WorkerPool,
    provider: &dyn TableProvider,
    select: &Select,
) -> Result<Chunk> {
    // 1. Load base tables (FROM list plus explicit JOINs).
    struct Source {
        chunk: Chunk,
        /// ON condition for explicit joins.
        on: Option<Expr>,
    }
    let mut sources: Vec<Source> = Vec::new();
    for tr in &select.from {
        let table = provider.table(&tr.name)?;
        let alias = tr.alias.clone().unwrap_or_else(|| tr.name.clone());
        sources.push(Source { chunk: Chunk::from_table(&table, &alias), on: None });
    }
    for (tr, on) in &select.joins {
        let table = provider.table(&tr.name)?;
        let alias = tr.alias.clone().unwrap_or_else(|| tr.name.clone());
        sources.push(Source {
            chunk: Chunk::from_table(&table, &alias),
            on: Some(on.clone()),
        });
    }

    // 2. Split the WHERE clause into conjuncts; fold in JOIN ON conditions.
    let mut conjuncts: Vec<Expr> = Vec::new();
    if let Some(w) = &select.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }
    for s in &sources {
        if let Some(on) = &s.on {
            split_conjuncts(on, &mut conjuncts);
        }
    }

    // 3. Greedy join order: start from the first source, repeatedly attach
    //    a source connected through an equi-conjunct via hash join; fall
    //    back to a cartesian product when the join graph is disconnected.
    let mut remaining: Vec<Source> = sources;
    let mut current = remaining.remove(0).chunk;
    while !remaining.is_empty() {
        let mut attached = false;
        'outer: for idx in 0..remaining.len() {
            for (ci, c) in conjuncts.iter().enumerate() {
                if let Some((lk, rk)) = as_equi_join_keys(c, &current, &remaining[idx].chunk) {
                    let rhs = remaining.remove(idx);
                    current = exec::hash_join_with(pool, &current, &rhs.chunk, &lk, &rk)?;
                    conjuncts.remove(ci);
                    attached = true;
                    break 'outer;
                }
            }
        }
        if !attached {
            // Cartesian product with the next source.
            let rhs = remaining.remove(0);
            current = cartesian(&current, &rhs.chunk);
        }
    }

    // 4. Apply remaining conjuncts as a filter.
    if let Some(pred) = conjuncts
        .into_iter()
        .reduce(|a, b| Expr::binary(BinOp::And, a, b))
    {
        current = exec::filter_with(pool, &current, &pred)?;
    }

    // 5. Aggregate or plain projection.
    let has_aggregates = select
        .items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }))
        || !select.group_by.is_empty()
        || select.having.is_some();

    let mut out = if has_aggregates {
        plan_aggregate(pool, select, &current)?
    } else {
        plan_projection(select, &current)?
    };

    if select.distinct {
        out = exec::distinct(&out);
    }
    if let Some(n) = select.limit {
        out = exec::limit(&out, n);
    }
    Ok(out)
}

fn plan_projection(select: &Select, input: &Chunk) -> Result<Chunk> {
    // Expand the projection list.
    let mut exprs: Vec<(Expr, String)> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for name in input.names() {
                    exprs.push((Expr::Column(name.clone()), display_name(input, name)));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => display_name(input, c),
                    other => expr_label(other),
                });
                exprs.push((expr.clone(), name));
            }
            SelectItem::Aggregate { .. } => unreachable!("handled by plan_aggregate"),
        }
    }

    if select.order_by.is_empty() {
        return exec::project(input, &exprs);
    }

    // Sort over an extended chunk so ORDER BY can reference both original
    // columns and projection aliases.
    let projected = exec::project(input, &exprs)?;
    let mut ext_names = input.names().to_vec();
    let mut ext_cols: Vec<crate::column::Column> =
        (0..input.num_cols()).map(|i| input.column(i).clone()).collect();
    for (i, (_, name)) in exprs.iter().enumerate() {
        ext_names.push(format!("__proj.{name}"));
        ext_cols.push(projected.column(i).clone());
    }
    let extended = Chunk::new(ext_names, ext_cols);
    let keys: Vec<(Expr, bool)> = select
        .order_by
        .iter()
        .map(|k| {
            // Prefer a projection alias match.
            let expr = match &k.expr {
                Expr::Column(c) => {
                    if exprs.iter().any(|(_, n)| n.eq_ignore_ascii_case(c)) {
                        Expr::Column(format!("__proj.{c}"))
                    } else {
                        k.expr.clone()
                    }
                }
                other => other.clone(),
            };
            (expr, k.desc)
        })
        .collect();
    let sorted = exec::sort(&extended, &keys)?;
    // Cut back to the projected columns.
    let proj_exprs: Vec<(Expr, String)> = exprs
        .iter()
        .map(|(_, n)| (Expr::Column(format!("__proj.{n}")), n.clone()))
        .collect();
    exec::project(&sorted, &proj_exprs)
}

fn plan_aggregate(pool: &WorkerPool, select: &Select, input: &Chunk) -> Result<Chunk> {
    let mut aggs: Vec<AggSpec> = Vec::new();
    let mut out_cols: Vec<(Expr, String)> = Vec::new(); // over the agg chunk

    // Group-by output columns come first, named as in `exec::aggregate`.
    let group_names: Vec<String> = select
        .group_by
        .iter()
        .enumerate()
        .map(|(k, e)| match e {
            Expr::Column(c) => c.clone(),
            _ => format!("group_{k}"),
        })
        .collect();

    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                return Err(DbError::Execution(
                    "SELECT * cannot be combined with aggregation".into(),
                ))
            }
            SelectItem::Expr { expr, alias } => {
                // Must be a group-by expression.
                let pos = select
                    .group_by
                    .iter()
                    .position(|g| g == expr)
                    .ok_or_else(|| {
                        DbError::Execution(format!(
                            "non-aggregated expression {} must appear in GROUP BY",
                            expr_label(expr)
                        ))
                    })?;
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => display_name(input, c),
                    other => expr_label(other),
                });
                out_cols.push((Expr::Column(group_names[pos].clone()), name));
            }
            SelectItem::Aggregate { func, expr, alias } => {
                let agg_name = format!("__agg{}", aggs.len());
                aggs.push(AggSpec {
                    func: *func,
                    expr: normalize_agg_arg(expr),
                    name: agg_name.clone(),
                });
                let name = alias.clone().unwrap_or_else(|| agg_label(*func, expr));
                out_cols.push((Expr::Column(agg_name), name));
            }
        }
    }

    // HAVING may introduce additional (hidden) aggregates.
    let having = match &select.having {
        Some(h) => Some(rewrite_having(h, &mut aggs)?),
        None => None,
    };

    let mut agg_chunk = exec::aggregate_with(pool, input, &select.group_by, &aggs)?;
    if let Some(h) = having {
        agg_chunk = exec::filter_with(pool, &agg_chunk, &h)?;
    }
    if !select.order_by.is_empty() {
        // ORDER BY over aliases or aggregate labels: rewrite aliases to the
        // hidden agg columns when they match an output column.
        let keys: Vec<(Expr, bool)> = select
            .order_by
            .iter()
            .map(|k| {
                let expr = match &k.expr {
                    Expr::Column(c) => out_cols
                        .iter()
                        .find(|(_, n)| n.eq_ignore_ascii_case(c))
                        .map(|(e, _)| e.clone())
                        .unwrap_or_else(|| k.expr.clone()),
                    Expr::Func { name, args } => {
                        // ORDER BY COUNT(*) etc: match an existing agg spec.
                        match AggFunc::parse(name) {
                            Some(func) => {
                                let arg = args.first().cloned().and_then(strip_star);
                                aggs.iter()
                                    .find(|a| a.func == func && a.expr == arg)
                                    .map(|a| Expr::Column(a.name.clone()))
                                    .unwrap_or_else(|| k.expr.clone())
                            }
                            None => k.expr.clone(),
                        }
                    }
                    other => other.clone(),
                };
                (expr, k.desc)
            })
            .collect();
        agg_chunk = exec::sort(&agg_chunk, &keys)?;
    }
    exec::project(&agg_chunk, &out_cols)
}

/// `COUNT(*)` parses as `Func("COUNT", [Column("*")])`; normalize the
/// star argument to `None`.
fn normalize_agg_arg(expr: &Option<Expr>) -> Option<Expr> {
    match expr {
        Some(Expr::Column(c)) if c == "*" => None,
        other => other.clone(),
    }
}

fn strip_star(e: Expr) -> Option<Expr> {
    match e {
        Expr::Column(ref c) if c == "*" => None,
        other => Some(other),
    }
}

/// Replace aggregate calls inside HAVING with references to (possibly
/// new, hidden) aggregate output columns.
fn rewrite_having(expr: &Expr, aggs: &mut Vec<AggSpec>) -> Result<Expr> {
    Ok(match expr {
        Expr::Func { name, args } if AggFunc::parse(name).is_some() => {
            let Some(func) = AggFunc::parse(name) else {
                return Ok(expr.clone()); // unreachable: guard above
            };
            let arg = match args.first() {
                Some(Expr::Column(c)) if c == "*" => None,
                Some(e) => Some(e.clone()),
                None => None,
            };
            let existing = aggs.iter().find(|a| a.func == func && a.expr == arg);
            let name = match existing {
                Some(a) => a.name.clone(),
                None => {
                    let n = format!("__agg{}", aggs.len());
                    aggs.push(AggSpec { func, expr: arg, name: n.clone() });
                    n
                }
            };
            Expr::Column(name)
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(rewrite_having(left, aggs)?),
            right: Box::new(rewrite_having(right, aggs)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(rewrite_having(e, aggs)?)),
        Expr::Neg(e) => Expr::Neg(Box::new(rewrite_having(e, aggs)?)),
        other => other.clone(),
    })
}

/// Split an expression tree into AND-ed conjuncts.
fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: BinOp::And, left, right } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// If `expr` is `colA = colB` with one side resolvable in `left` and the
/// other in `right`, return the (left_key, right_key) pair.
fn as_equi_join_keys(expr: &Expr, left: &Chunk, right: &Chunk) -> Option<(Expr, Expr)> {
    let Expr::Binary { op: BinOp::Eq, left: l, right: r } = expr else {
        return None;
    };
    let (Expr::Column(cl), Expr::Column(cr)) = (&**l, &**r) else {
        return None;
    };
    let l_in_left = left.resolve(cl).is_ok();
    let l_in_right = right.resolve(cl).is_ok();
    let r_in_left = left.resolve(cr).is_ok();
    let r_in_right = right.resolve(cr).is_ok();
    if l_in_left && r_in_right && !l_in_right {
        Some((Expr::Column(cl.clone()), Expr::Column(cr.clone())))
    } else if r_in_left && l_in_right && !r_in_right {
        Some((Expr::Column(cr.clone()), Expr::Column(cl.clone())))
    } else {
        None
    }
}

fn cartesian(left: &Chunk, right: &Chunk) -> Chunk {
    let nl = left.num_rows();
    let nr = right.num_rows();
    let mut lrows = Vec::with_capacity(nl * nr);
    let mut rrows = Vec::with_capacity(nl * nr);
    for i in 0..nl {
        for j in 0..nr {
            lrows.push(i as u32);
            rrows.push(j as u32);
        }
    }
    let lc = left.take(&lrows);
    let rc = right.take(&rrows);
    let mut names = lc.names().to_vec();
    names.extend(rc.names().iter().cloned());
    let mut cols: Vec<crate::column::Column> =
        (0..lc.num_cols()).map(|i| lc.column(i).clone()).collect();
    cols.extend((0..rc.num_cols()).map(|i| rc.column(i).clone()));
    Chunk::new(names, cols)
}

/// Strip the qualifier when the bare name is unambiguous in the chunk.
fn display_name(chunk: &Chunk, qualified: &str) -> String {
    let bare = qualified.rsplit('.').next().unwrap_or(qualified);
    let count = chunk
        .names()
        .iter()
        .filter(|n| n.rsplit('.').next().is_some_and(|l| l.eq_ignore_ascii_case(bare)))
        .count();
    if count <= 1 {
        bare.to_string()
    } else {
        qualified.to_string()
    }
}

fn expr_label(e: &Expr) -> String {
    match e {
        Expr::Column(c) => c.clone(),
        Expr::Literal(Value::Str(s)) => s.clone(),
        Expr::Literal(v) => v.to_string(),
        Expr::Func { name, .. } => name.to_lowercase(),
        _ => "expr".to_string(),
    }
}

fn agg_label(func: AggFunc, expr: &Option<Expr>) -> String {
    let f = match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    match expr {
        None => f.to_string(),
        Some(Expr::Column(c)) if c != "*" => format!("{f}_{}", c.rsplit('.').next().unwrap_or(c)),
        _ => f.to_string(),
    }
}
