//! Recursive-descent SQL parser.

use crate::error::DbError;
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Symbol, Token, TokenKind};
use crate::value::{DataType, Value};
use crate::Result;

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept_symbol(Symbol::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse { position: self.peek_pos(), message: msg.into() }
    }

    /// True (and consumes) when the next token is the given keyword.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn accept_symbol(&mut self, sym: Symbol) -> bool {
        if self.peek() == &TokenKind::Symbol(sym) {
            self.advance();
            return true;
        }
        false
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<()> {
        if self.accept_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected {sym:?}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err("unexpected trailing input"))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.accept_kw("CREATE") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty_name = self.ident()?;
                let ty = DataType::parse(&ty_name)
                    .ok_or_else(|| self.err(format!("unknown type: {ty_name}")))?;
                columns.push((col, ty));
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.accept_kw("DROP") {
            self.expect_kw("TABLE")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.accept_kw("INSERT") {
            self.expect_kw("INTO")?;
            let table = self.ident()?;
            let columns = if self.accept_symbol(Symbol::LParen) {
                let mut cols = vec![self.ident()?];
                while self.accept_symbol(Symbol::Comma) {
                    cols.push(self.ident()?);
                }
                self.expect_symbol(Symbol::RParen)?;
                Some(cols)
            } else {
                None
            };
            self.expect_kw("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_symbol(Symbol::LParen)?;
                let mut row = vec![self.expr()?];
                while self.accept_symbol(Symbol::Comma) {
                    row.push(self.expr()?);
                }
                self.expect_symbol(Symbol::RParen)?;
                rows.push(row);
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert { table, columns, rows });
        }
        if self.accept_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let where_clause = if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, where_clause });
        }
        if self.accept_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_symbol(Symbol::Eq)?;
                assignments.push((col, self.expr()?));
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
            let where_clause = if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
            return Ok(Statement::Update { table, assignments, where_clause });
        }
        if self.accept_kw("SET") {
            self.expect_kw("THREADS")?;
            if self.accept_kw("DEFAULT") {
                return Ok(Statement::SetThreads { threads: None });
            }
            return match self.advance() {
                TokenKind::Int(n) if n >= 1 => {
                    Ok(Statement::SetThreads { threads: Some(n as usize) })
                }
                TokenKind::Int(n) => {
                    Err(self.err(format!("SET THREADS needs a count of at least 1, got {n}")))
                }
                other => {
                    Err(self.err(format!("expected thread count or DEFAULT, found {other:?}")))
                }
            };
        }
        Err(self.err("expected SELECT, CREATE, DROP, INSERT, DELETE, UPDATE or SET"))
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = self.accept_kw("DISTINCT");
        let mut items = vec![self.select_item()?];
        while self.accept_symbol(Symbol::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.accept_symbol(Symbol::Comma) {
                from.push(self.table_ref()?);
            } else if self.accept_kw("JOIN") || {
                if self.peek_kw("INNER") {
                    self.advance();
                    self.expect_kw("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                let tr = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push((tr, on));
            } else {
                break;
            }
        }
        let where_clause = if self.accept_kw("WHERE") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.accept_symbol(Symbol::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.accept_kw("HAVING") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.accept_kw("DESC") {
                    true
                } else {
                    self.accept_kw("ASC");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                _ => return Err(self.err("LIMIT expects a non-negative integer")),
            }
        } else {
            None
        };
        Ok(Select { distinct, items, from, joins, where_clause, group_by, having, order_by, limit })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.accept_kw("AS") {
            Some(self.ident()?)
        } else if let TokenKind::Ident(s) = self.peek() {
            // Bare alias, unless it is a clause keyword.
            const CLAUSE_KWS: &[&str] = &[
                "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "FROM",
            ];
            if CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.accept_symbol(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        if let TokenKind::Ident(name) = self.peek().clone() {
            if let Some(func) = AggFunc::parse(&name) {
                if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                    == Some(&TokenKind::Symbol(Symbol::LParen))
                {
                    self.advance(); // name
                    self.advance(); // (
                    let expr = if self.accept_symbol(Symbol::Star) {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_symbol(Symbol::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Aggregate { func, expr, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.accept_kw("AS") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    // Expression grammar: OR > AND > NOT > comparison > additive > term.
    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.accept_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.accept_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates.
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        if self.accept_kw("BETWEEN") {
            let lo = self.additive()?;
            self.expect_kw("AND")?;
            let hi = self.additive()?;
            return Ok(Expr::Between { expr: Box::new(left), lo: Box::new(lo), hi: Box::new(hi) });
        }
        let negated_in = {
            let save = self.pos;
            if self.accept_kw("NOT") {
                if self.peek_kw("IN") || self.peek_kw("LIKE") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.accept_kw("IN") {
            self.expect_symbol(Symbol::LParen)?;
            let mut list = vec![self.expr()?];
            while self.accept_symbol(Symbol::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Symbol::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated: negated_in });
        }
        if self.accept_kw("LIKE") {
            let pat = match self.advance() {
                TokenKind::Str(s) => s,
                _ => return Err(self.err("LIKE expects a string literal pattern")),
            };
            let like = Expr::Like { expr: Box::new(left), pattern: pat };
            return Ok(if negated_in { Expr::Not(Box::new(like)) } else { like });
        }
        if negated_in {
            return Err(self.err("expected IN or LIKE after NOT"));
        }
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(BinOp::Eq),
            TokenKind::Symbol(Symbol::Ne) => Some(BinOp::Ne),
            TokenKind::Symbol(Symbol::Lt) => Some(BinOp::Lt),
            TokenKind::Symbol(Symbol::Le) => Some(BinOp::Le),
            TokenKind::Symbol(Symbol::Gt) => Some(BinOp::Gt),
            TokenKind::Symbol(Symbol::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Plus) => BinOp::Add,
                TokenKind::Symbol(Symbol::Minus) => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Star) => BinOp::Mul,
                TokenKind::Symbol(Symbol::Slash) => BinOp::Div,
                TokenKind::Symbol(Symbol::Percent) => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.accept_symbol(Symbol::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.accept_symbol(Symbol::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.advance() {
            TokenKind::Int(i) => Ok(Expr::Literal(Value::Int(i))),
            TokenKind::Float(f) => Ok(Expr::Literal(Value::Double(f))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::Symbol(Symbol::LParen) => {
                let e = self.expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(Expr::Literal(Value::Null)),
                    "TRUE" => return Ok(Expr::Literal(Value::Bool(true))),
                    "FALSE" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                // Function call?
                if self.peek() == &TokenKind::Symbol(Symbol::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    // `COUNT(*)` in HAVING/ORDER BY positions: star argument.
                    if self.accept_symbol(Symbol::Star) {
                        args.push(Expr::Column("*".into()));
                    } else if self.peek() != &TokenKind::Symbol(Symbol::RParen) {
                        args.push(self.expr()?);
                        while self.accept_symbol(Symbol::Comma) {
                            args.push(self.expr()?);
                        }
                    }
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(Expr::Func { name: upper, args });
                }
                // Qualified column reference?
                if self.accept_symbol(Symbol::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column(format!("{name}.{col}")));
                }
                Ok(Expr::Column(name))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b FROM t");
        assert_eq!(s.items.len(), 2);
        assert_eq!(s.from[0].name, "t");
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn select_star_with_where() {
        let s = sel("SELECT * FROM t WHERE a > 5 AND b = 'x'");
        assert_eq!(s.items, vec![SelectItem::Wildcard]);
        assert!(matches!(
            s.where_clause,
            Some(Expr::Binary { op: BinOp::And, .. })
        ));
    }

    #[test]
    fn operator_precedence() {
        let s = sel("SELECT a + b * 2 FROM t");
        let SelectItem::Expr { expr, .. } = &s.items[0] else { panic!() };
        // a + (b * 2)
        match expr {
            Expr::Binary { op: BinOp::Add, right, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_group_by() {
        let s = sel("SELECT tag, COUNT(*), AVG(score) AS m FROM t GROUP BY tag HAVING COUNT(*) > 1");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
        assert!(matches!(
            s.items[1],
            SelectItem::Aggregate { func: AggFunc::Count, expr: None, .. }
        ));
        assert!(matches!(
            &s.items[2],
            SelectItem::Aggregate { func: AggFunc::Avg, alias: Some(a), .. } if a == "m"
        ));
    }

    #[test]
    fn joins_comma_and_explicit() {
        let s = sel("SELECT * FROM a, b WHERE a.x = b.y");
        assert_eq!(s.from.len(), 2);
        let s2 = sel("SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.z = c.w");
        assert_eq!(s2.joins.len(), 2);
        let s3 = sel("SELECT * FROM a INNER JOIN b ON a.x = b.y");
        assert_eq!(s3.joins.len(), 1);
    }

    #[test]
    fn table_alias() {
        let s = sel("SELECT p.id FROM products p WHERE p.id = 1");
        assert_eq!(s.from[0].alias.as_deref(), Some("p"));
        let s2 = sel("SELECT x FROM products AS pr");
        assert_eq!(s2.from[0].alias.as_deref(), Some("pr"));
    }

    #[test]
    fn order_limit_distinct() {
        let s = sel("SELECT DISTINCT a FROM t ORDER BY a DESC, b LIMIT 10");
        assert!(s.distinct);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn predicates() {
        let s = sel("SELECT * FROM t WHERE a IS NOT NULL AND b BETWEEN 1 AND 5 AND c IN (1, 2) AND d LIKE 'x%' AND e NOT IN (3)");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn create_table() {
        let st = parse_statement("CREATE TABLE t (a INT, b DOUBLE, c VARCHAR)").unwrap();
        match st {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2].1, DataType::Str);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_values() {
        let st = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match st {
            Statement::Insert { table, columns, rows } => {
                assert_eq!(table, "t");
                assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Value::Null));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn insert_negative_numbers() {
        let st = parse_statement("INSERT INTO t VALUES (-1, -2.5)").unwrap();
        match st {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Expr::Neg(Box::new(Expr::Literal(Value::Int(1)))));
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn delete_with_where() {
        let st = parse_statement("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(st, Statement::Delete { where_clause: Some(_), .. }));
        let st2 = parse_statement("DELETE FROM t").unwrap();
        assert!(matches!(st2, Statement::Delete { where_clause: None, .. }));
    }

    #[test]
    fn drop_table() {
        assert!(matches!(
            parse_statement("DROP TABLE t").unwrap(),
            Statement::DropTable { .. }
        ));
    }

    #[test]
    fn error_positions_and_messages() {
        let e = parse_statement("SELECT FROM t").unwrap_err();
        assert!(matches!(e, DbError::Parse { .. }));
        assert!(parse_statement("SELECT a FROM").is_err());
        assert!(parse_statement("FOO BAR").is_err());
        assert!(parse_statement("SELECT a FROM t LIMIT 'x'").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse_statement("SELECT a FROM t;").is_ok());
        assert!(parse_statement("SELECT a FROM t; SELECT b FROM t").is_err());
    }

    #[test]
    fn function_calls() {
        let s = sel("SELECT ABS(a), UPPER(b) FROM t WHERE SQRT(a) > 2");
        assert!(matches!(&s.items[0], SelectItem::Expr { expr: Expr::Func { name, .. }, .. } if name == "ABS"));
    }

    #[test]
    fn boolean_literals() {
        let s = sel("SELECT * FROM t WHERE flag = TRUE");
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn set_threads_forms() {
        assert_eq!(
            parse_statement("SET THREADS 4").unwrap(),
            Statement::SetThreads { threads: Some(4) }
        );
        assert_eq!(
            parse_statement("set threads 1;").unwrap(),
            Statement::SetThreads { threads: Some(1) }
        );
        assert_eq!(
            parse_statement("SET THREADS DEFAULT").unwrap(),
            Statement::SetThreads { threads: None }
        );
    }

    #[test]
    fn set_threads_rejects_bad_counts() {
        assert!(parse_statement("SET THREADS 0").is_err());
        assert!(parse_statement("SET THREADS 'four'").is_err());
        assert!(parse_statement("SET THREADS").is_err());
        assert!(parse_statement("SET WORKERS 4").is_err());
    }
}
