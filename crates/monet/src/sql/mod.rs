//! SQL front-end: lexer, AST, parser, planner.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod planner;
