//! SQL lexer.

use crate::error::DbError;
use crate::Result;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the input.
    pub pos: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword or identifier (upper-cased for keywords; identifiers keep
    /// their original case in `Ident`).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// Punctuation / operator.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Operator / punctuation symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Line comments.
        if b == b'-' && bytes.get(pos + 1) == Some(&b'-') {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        let start = pos;
        if b.is_ascii_alphabetic() || b == b'_' {
            while pos < bytes.len()
                && (bytes[pos].is_ascii_alphanumeric() || bytes[pos] == b'_')
            {
                pos += 1;
            }
            out.push(Token { kind: TokenKind::Ident(input[start..pos].to_string()), pos: start });
            continue;
        }
        if b.is_ascii_digit() || (b == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit)) {
            let mut is_float = false;
            while pos < bytes.len() {
                match bytes[pos] {
                    b'0'..=b'9' => pos += 1,
                    b'.' if !is_float => {
                        is_float = true;
                        pos += 1;
                    }
                    b'e' | b'E' => {
                        is_float = true;
                        pos += 1;
                        if matches!(bytes.get(pos), Some(b'+') | Some(b'-')) {
                            pos += 1;
                        }
                    }
                    _ => break,
                }
            }
            let text = &input[start..pos];
            let kind = if is_float {
                TokenKind::Float(text.parse().map_err(|e| DbError::Parse {
                    position: start,
                    message: format!("bad float literal: {e}"),
                })?)
            } else {
                TokenKind::Int(text.parse().map_err(|e| DbError::Parse {
                    position: start,
                    message: format!("bad integer literal: {e}"),
                })?)
            };
            out.push(Token { kind, pos: start });
            continue;
        }
        if b == b'\'' {
            pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(pos) {
                    None => {
                        return Err(DbError::Parse {
                            position: start,
                            message: "unterminated string literal".into(),
                        })
                    }
                    Some(b'\'') if bytes.get(pos + 1) == Some(&b'\'') => {
                        s.push('\'');
                        pos += 2;
                    }
                    Some(b'\'') => {
                        pos += 1;
                        break;
                    }
                    Some(_) => {
                        // Advance one UTF-8 character.
                        let ch_len = input[pos..].chars().next().map_or(1, char::len_utf8);
                        s.push_str(&input[pos..pos + ch_len]);
                        pos += ch_len;
                    }
                }
            }
            out.push(Token { kind: TokenKind::Str(s), pos: start });
            continue;
        }
        let sym = match b {
            b'(' => Symbol::LParen,
            b')' => Symbol::RParen,
            b',' => Symbol::Comma,
            b'.' => Symbol::Dot,
            b';' => Symbol::Semicolon,
            b'*' => Symbol::Star,
            b'+' => Symbol::Plus,
            b'-' => Symbol::Minus,
            b'/' => Symbol::Slash,
            b'%' => Symbol::Percent,
            b'=' => Symbol::Eq,
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 1;
                    Symbol::Le
                } else if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 1;
                    Symbol::Ne
                } else {
                    Symbol::Lt
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 1;
                    Symbol::Ge
                } else {
                    Symbol::Gt
                }
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 1;
                    Symbol::Ne
                } else {
                    return Err(DbError::Parse {
                        position: pos,
                        message: "unexpected '!'".into(),
                    });
                }
            }
            other => {
                return Err(DbError::Parse {
                    position: pos,
                    message: format!("unexpected character '{}'", other as char),
                })
            }
        };
        pos += 1;
        out.push(Token { kind: TokenKind::Symbol(sym), pos: start });
    }
    out.push(Token { kind: TokenKind::Eof, pos: input.len() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let k = kinds("SELECT a FROM t");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("1 2.5 1e3 .5"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(1000.0),
                TokenKind::Float(0.5),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s' 'plain'"),
            vec![TokenKind::Str("it's".into()), TokenKind::Str("plain".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<= >= <> != < > ="),
            vec![
                TokenKind::Symbol(Symbol::Le),
                TokenKind::Symbol(Symbol::Ge),
                TokenKind::Symbol(Symbol::Ne),
                TokenKind::Symbol(Symbol::Ne),
                TokenKind::Symbol(Symbol::Lt),
                TokenKind::Symbol(Symbol::Gt),
                TokenKind::Symbol(Symbol::Eq),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- comment here\n 1"),
            vec![TokenKind::Ident("SELECT".into()), TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn unexpected_character() {
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn negative_handled_as_minus_token() {
        assert_eq!(
            kinds("-5"),
            vec![TokenKind::Symbol(Symbol::Minus), TokenKind::Int(5), TokenKind::Eof]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'Πελοπόννησος'"), vec![TokenKind::Str("Πελοπόννησος".into()), TokenKind::Eof]);
    }
}
