//! Property-based tests for the column store, SQL layer and arrays.

use proptest::prelude::*;
use teleios_monet::array::NdArray;
use teleios_monet::catalog::Catalog;
use teleios_monet::column::{CmpOp, Column};
use teleios_monet::value::Value;

fn values_strategy() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(-1000i64..1000, 0..200)
}

proptest! {
    #[test]
    fn column_select_matches_linear_scan(vals in values_strategy(), needle in -1000i64..1000) {
        let col = Column::from_ints(vals.clone());
        for (op, pred) in [
            (CmpOp::Eq, Box::new(|v: i64| v == needle) as Box<dyn Fn(i64) -> bool>),
            (CmpOp::Ne, Box::new(move |v| v != needle)),
            (CmpOp::Lt, Box::new(move |v| v < needle)),
            (CmpOp::Le, Box::new(move |v| v <= needle)),
            (CmpOp::Gt, Box::new(move |v| v > needle)),
            (CmpOp::Ge, Box::new(move |v| v >= needle)),
        ] {
            let got = col.select(op, &Value::Int(needle), None).unwrap();
            let expect: Vec<u32> = vals
                .iter()
                .enumerate()
                .filter(|(_, &v)| pred(v))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn column_candidates_compose(vals in values_strategy(), lo in -500i64..0, hi in 0i64..500) {
        let col = Column::from_ints(vals.clone());
        // select(ge lo) then select(le hi) over candidates == range select.
        let first = col.select(CmpOp::Ge, &Value::Int(lo), None).unwrap();
        let narrowed = col.select(CmpOp::Le, &Value::Int(hi), Some(&first)).unwrap();
        let range = col
            .select_range(Some(&Value::Int(lo)), Some(&Value::Int(hi)), None)
            .unwrap();
        prop_assert_eq!(narrowed, range);
    }

    #[test]
    fn column_aggregates_match_reference(vals in values_strategy()) {
        let col = Column::from_ints(vals.clone());
        if vals.is_empty() {
            prop_assert_eq!(col.sum(None).unwrap(), Value::Null);
        } else {
            prop_assert_eq!(col.sum(None).unwrap(), Value::Int(vals.iter().sum()));
            prop_assert_eq!(col.min(None), Value::Int(*vals.iter().min().unwrap()));
            prop_assert_eq!(col.max(None), Value::Int(*vals.iter().max().unwrap()));
        }
        prop_assert_eq!(col.count(None), vals.len() as i64);
    }

    #[test]
    fn sql_where_matches_reference(vals in values_strategy(), threshold in -1000i64..1000) {
        let cat = Catalog::new();
        cat.execute("CREATE TABLE t (v INT)").unwrap();
        let rows: Vec<Vec<Value>> = vals.iter().map(|&v| vec![Value::Int(v)]).collect();
        cat.insert("t", rows).unwrap();
        let rs = cat
            .execute(&format!("SELECT COUNT(*) AS n FROM t WHERE v > {threshold}"))
            .unwrap();
        let expect = vals.iter().filter(|&&v| v > threshold).count() as i64;
        prop_assert_eq!(rs.rows[0][0].clone(), Value::Int(expect));
    }

    #[test]
    fn sql_order_by_sorts(vals in values_strategy()) {
        let cat = Catalog::new();
        cat.execute("CREATE TABLE t (v INT)").unwrap();
        cat.insert("t", vals.iter().map(|&v| vec![Value::Int(v)]).collect()).unwrap();
        let rs = cat.execute("SELECT v FROM t ORDER BY v").unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut expect = vals.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn sql_group_by_partitions(vals in proptest::collection::vec(0i64..10, 1..200)) {
        let cat = Catalog::new();
        cat.execute("CREATE TABLE t (v INT)").unwrap();
        cat.insert("t", vals.iter().map(|&v| vec![Value::Int(v)]).collect()).unwrap();
        let rs = cat
            .execute("SELECT v, COUNT(*) AS n FROM t GROUP BY v ORDER BY v")
            .unwrap();
        // Group counts sum to the row count, and each count is correct.
        let mut total = 0i64;
        for row in &rs.rows {
            let key = row[0].as_i64().unwrap();
            let n = row[1].as_i64().unwrap();
            prop_assert_eq!(n, vals.iter().filter(|&&v| v == key).count() as i64);
            total += n;
        }
        prop_assert_eq!(total, vals.len() as i64);
    }

    #[test]
    fn array_slice_then_sum_is_partial_sum(
        rows in 1usize..12, cols in 1usize..12,
        r0 in 0usize..12, c0 in 0usize..12,
    ) {
        let a = NdArray::matrix(rows, cols, (0..rows * cols).map(|v| v as f64).collect()).unwrap();
        let r0 = r0 % rows;
        let c0 = c0 % cols;
        let s = a.slice(&[(r0, rows), (c0, cols)]).unwrap();
        let mut expect = 0.0;
        for r in r0..rows {
            for c in c0..cols {
                expect += a.get(&[r, c]).unwrap();
            }
        }
        prop_assert!((s.sum() - expect).abs() < 1e-9);
    }

    #[test]
    fn array_tiles_partition_sum(rows in 1usize..8, cols in 1usize..8, t in 1usize..4) {
        let a = NdArray::matrix(rows, cols, (0..rows * cols).map(|v| (v % 7) as f64).collect())
            .unwrap();
        if rows % t == 0 && cols % t == 0 {
            let tiles = a.tiles(&[t, t]).unwrap();
            let total: f64 = tiles.iter().map(|(_, tile)| tile.sum()).sum();
            prop_assert!((total - a.sum()).abs() < 1e-9);
        }
    }

    #[test]
    fn array_map_preserves_shape_and_inverts(data in proptest::collection::vec(-100.0f64..100.0, 1..64)) {
        let a = NdArray::matrix(1, data.len(), data.clone()).unwrap();
        let doubled = a.map(|v| v * 2.0);
        let back = doubled.map(|v| v / 2.0);
        prop_assert_eq!(back.shape(), a.shape());
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn sql_delete_complements_select(vals in values_strategy(), threshold in -1000i64..1000) {
        let cat = Catalog::new();
        cat.execute("CREATE TABLE t (v INT)").unwrap();
        cat.insert("t", vals.iter().map(|&v| vec![Value::Int(v)]).collect()).unwrap();
        let keep = vals.iter().filter(|&&v| v <= threshold).count();
        cat.execute(&format!("DELETE FROM t WHERE v > {threshold}")).unwrap();
        let rs = cat.execute("SELECT COUNT(*) AS n FROM t").unwrap();
        prop_assert_eq!(rs.rows[0][0].clone(), Value::Int(keep as i64));
    }
}
