//! Parallel ≡ sequential equivalence tests.
//!
//! Every morsel-parallel operator must be *bit-identical* to its
//! sequential counterpart at any thread count — a one-thread pool runs
//! the exact sequential code path, so these tests compare pools of
//! 1–8 threads against each other on inputs large enough to cross the
//! parallel thresholds (`PAR_ROW_THRESHOLD`, `PAR_CELL_THRESHOLD`).

use proptest::prelude::*;
use teleios_exec::WorkerPool;
use teleios_monet::array::{NdArray, PAR_CELL_THRESHOLD};
use teleios_monet::column::{CmpOp, Column, PAR_ROW_THRESHOLD};
use teleios_monet::exec::{aggregate_with, filter_with, hash_join_with, AggSpec, Chunk};
use teleios_monet::sql::ast::{AggFunc, BinOp, Expr};
use teleios_monet::value::Value;

const THREAD_COUNTS: [usize; 5] = [1, 2, 3, 4, 8];

/// Deterministic pseudo-random stream (splitmix64) so the large
/// fixtures need no RNG dependency and never flake.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn int(&mut self, modulus: u64) -> i64 {
        (self.next() % modulus) as i64
    }

    fn double(&mut self) -> f64 {
        (self.next() % 2_000_000) as f64 / 1000.0 - 1000.0
    }
}

fn chunks_equal(a: &Chunk, b: &Chunk) -> bool {
    a.names() == b.names()
        && a.num_rows() == b.num_rows()
        && (0..a.num_rows()).all(|i| a.row(i) == b.row(i))
}

fn col(name: &str) -> Expr {
    Expr::Column(name.into())
}

fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

/// A two-column chunk (int key, double value) big enough to cross the
/// row-parallel threshold.
fn big_chunk(seed: u64, rows: usize, key_range: u64) -> Chunk {
    let mut mix = Mix(seed);
    let keys: Vec<i64> = (0..rows).map(|_| mix.int(key_range)).collect();
    let vals: Vec<f64> = (0..rows).map(|_| mix.double()).collect();
    Chunk::new(
        vec!["t.k".into(), "t.v".into()],
        vec![Column::from_ints(keys), Column::from_doubles(vals)],
    )
}

#[test]
fn par_select_matches_select_at_all_thread_counts() {
    let mut mix = Mix(7);
    let n = 2 * PAR_ROW_THRESHOLD + 123;
    let vals: Vec<f64> = (0..n).map(|_| mix.double()).collect();
    let column = Column::from_doubles(vals);
    let needle = Value::Double(0.0);
    for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
        let sequential = column.select(op, &needle, None).unwrap();
        // Narrowing candidates: every third row.
        let cands: Vec<u32> = (0..n as u32).step_by(3).collect();
        let sequential_narrowed = column.select(op, &needle, Some(&cands)).unwrap();
        for t in THREAD_COUNTS {
            let pool = WorkerPool::with_threads(t);
            assert_eq!(
                column.par_select(op, &needle, None, &pool).unwrap(),
                sequential,
                "op {op:?} at {t} threads"
            );
            assert_eq!(
                column.par_select(op, &needle, Some(&cands), &pool).unwrap(),
                sequential_narrowed,
                "op {op:?} with candidates at {t} threads"
            );
        }
    }
}

#[test]
fn parallel_filter_matches_sequential() {
    let chunk = big_chunk(11, 2 * PAR_ROW_THRESHOLD, 64);
    let pred = Expr::binary(
        BinOp::And,
        Expr::binary(BinOp::Gt, col("v"), lit(-250.0)),
        Expr::binary(BinOp::Lt, col("k"), lit(48i64)),
    );
    let sequential = filter_with(&WorkerPool::with_threads(1), &chunk, &pred).unwrap();
    assert!(sequential.num_rows() > 0);
    for t in THREAD_COUNTS {
        let parallel = filter_with(&WorkerPool::with_threads(t), &chunk, &pred).unwrap();
        assert!(chunks_equal(&sequential, &parallel), "filter diverged at {t} threads");
    }
}

#[test]
fn parallel_hash_join_matches_sequential() {
    let left = big_chunk(21, PAR_ROW_THRESHOLD + 1000, 500);
    let right = {
        let mut mix = Mix(22);
        let rows = PAR_ROW_THRESHOLD + 500;
        let keys: Vec<i64> = (0..rows).map(|_| mix.int(500)).collect();
        let vals: Vec<f64> = (0..rows).map(|_| mix.double()).collect();
        Chunk::new(
            vec!["r.k".into(), "r.w".into()],
            vec![Column::from_ints(keys), Column::from_doubles(vals)],
        )
    };
    let sequential =
        hash_join_with(&WorkerPool::with_threads(1), &left, &right, &col("t.k"), &col("r.k"))
            .unwrap();
    assert!(sequential.num_rows() > 0);
    for t in THREAD_COUNTS {
        let parallel =
            hash_join_with(&WorkerPool::with_threads(t), &left, &right, &col("t.k"), &col("r.k"))
                .unwrap();
        assert!(chunks_equal(&sequential, &parallel), "join diverged at {t} threads");
    }
}

#[test]
fn parallel_aggregate_matches_sequential() {
    let chunk = big_chunk(31, 2 * PAR_ROW_THRESHOLD, 64);
    let aggs = vec![
        AggSpec { func: AggFunc::Count, expr: None, name: "n".into() },
        AggSpec { func: AggFunc::Sum, expr: Some(col("v")), name: "s".into() },
        AggSpec { func: AggFunc::Min, expr: Some(col("v")), name: "lo".into() },
        AggSpec { func: AggFunc::Max, expr: Some(col("v")), name: "hi".into() },
        AggSpec { func: AggFunc::Avg, expr: Some(col("v")), name: "m".into() },
    ];
    let group_by = [col("k")];
    let sequential =
        aggregate_with(&WorkerPool::with_threads(1), &chunk, &group_by, &aggs).unwrap();
    assert_eq!(sequential.num_rows(), 64);
    for t in THREAD_COUNTS {
        let parallel =
            aggregate_with(&WorkerPool::with_threads(t), &chunk, &group_by, &aggs).unwrap();
        // Bit-identical includes the first-encounter group order.
        assert!(chunks_equal(&sequential, &parallel), "group-by diverged at {t} threads");
    }
}

#[test]
fn parallel_global_aggregate_matches_sequential() {
    let chunk = big_chunk(41, 2 * PAR_ROW_THRESHOLD, 64);
    let aggs = vec![AggSpec { func: AggFunc::Sum, expr: Some(col("v")), name: "s".into() }];
    let sequential = aggregate_with(&WorkerPool::with_threads(1), &chunk, &[], &aggs).unwrap();
    for t in THREAD_COUNTS {
        let parallel = aggregate_with(&WorkerPool::with_threads(t), &chunk, &[], &aggs).unwrap();
        assert!(chunks_equal(&sequential, &parallel), "global agg diverged at {t} threads");
    }
}

fn big_array(seed: u64, cells: usize) -> NdArray {
    let mut mix = Mix(seed);
    let data: Vec<f64> = (0..cells).map(|_| mix.double()).collect();
    NdArray::matrix(cells / 128, 128, data).unwrap()
}

#[test]
fn parallel_array_map_and_zip_map_match_sequential() {
    let cells = 2 * PAR_CELL_THRESHOLD;
    let a = big_array(51, cells);
    let b = big_array(52, cells);
    let seq_map = a.map_with(&WorkerPool::with_threads(1), |v| v * 0.5 + 1.0);
    let seq_zip = a.zip_map_with(&WorkerPool::with_threads(1), &b, |x, y| x.max(y) - x * y).unwrap();
    for t in THREAD_COUNTS {
        let pool = WorkerPool::with_threads(t);
        let par_map = a.map_with(&pool, |v| v * 0.5 + 1.0);
        assert_eq!(seq_map.data(), par_map.data(), "map diverged at {t} threads");
        let par_zip = a.zip_map_with(&pool, &b, |x, y| x.max(y) - x * y).unwrap();
        assert_eq!(seq_zip.data(), par_zip.data(), "zip_map diverged at {t} threads");
    }
}

#[test]
fn parallel_array_reductions_match_sequential() {
    let a = big_array(61, 3 * PAR_CELL_THRESHOLD);
    let pool1 = WorkerPool::with_threads(1);
    let seq_sum = a.sum_with(&pool1);
    let seq_min = a.min_with(&pool1);
    let seq_max = a.max_with(&pool1);
    for t in THREAD_COUNTS {
        let pool = WorkerPool::with_threads(t);
        // to_bits: the sums must agree exactly, not just approximately.
        assert_eq!(a.sum_with(&pool).to_bits(), seq_sum.to_bits(), "sum diverged at {t} threads");
        assert_eq!(a.min_with(&pool), seq_min, "min diverged at {t} threads");
        assert_eq!(a.max_with(&pool), seq_max, "max diverged at {t} threads");
    }
}

#[test]
fn parallel_try_map_reports_the_first_error() {
    let cells = 2 * PAR_CELL_THRESHOLD;
    let mut data = vec![1.0f64; cells];
    // Errors scattered across chunks; the earliest one must win.
    data[cells - 1] = -1.0;
    data[PAR_CELL_THRESHOLD + 7] = -1.0;
    data[137] = -1.0;
    let a = NdArray::matrix(cells / 128, 128, data).unwrap();
    let f = |v: f64| {
        if v < 0.0 {
            Err(format!("negative cell {v}"))
        } else {
            Ok(v.sqrt())
        }
    };
    let sequential = a.try_map_with(&WorkerPool::with_threads(1), f);
    assert!(sequential.is_err());
    for t in THREAD_COUNTS {
        let parallel = a.try_map_with(&WorkerPool::with_threads(t), f);
        assert_eq!(
            sequential.as_ref().err(),
            parallel.as_ref().err(),
            "error choice diverged at {t} threads"
        );
    }
    // And the all-healthy case round-trips.
    let ok = a.map(|v| v.abs()).try_map_with(&WorkerPool::with_threads(4), f).unwrap();
    assert_eq!(ok.shape(), a.shape());
}

proptest! {
    // Randomized small/medium inputs: mostly below the thresholds
    // (checking the sequential fallback) with the occasional crossing.
    #[test]
    fn prop_par_select_matches(
        vals in proptest::collection::vec(-100i64..100, 0..300),
        needle in -100i64..100,
        threads in 1usize..=8,
    ) {
        let column = Column::from_ints(vals);
        let pool = WorkerPool::with_threads(threads);
        for op in [CmpOp::Eq, CmpOp::Lt, CmpOp::Ge] {
            let v = Value::Int(needle);
            prop_assert_eq!(
                column.par_select(op, &v, None, &pool).unwrap(),
                column.select(op, &v, None).unwrap()
            );
        }
    }

    #[test]
    fn prop_array_kernels_match(
        data in proptest::collection::vec(-100.0f64..100.0, 1..256),
        threads in 1usize..=8,
    ) {
        let a = NdArray::matrix(1, data.len(), data).unwrap();
        let pool = WorkerPool::with_threads(threads);
        let pool1 = WorkerPool::with_threads(1);
        prop_assert_eq!(a.map_with(&pool, |v| v * 3.0).data(), a.map_with(&pool1, |v| v * 3.0).data());
        prop_assert_eq!(a.sum_with(&pool).to_bits(), a.sum_with(&pool1).to_bits());
        prop_assert_eq!(a.min_with(&pool), a.min_with(&pool1));
        prop_assert_eq!(a.max_with(&pool), a.max_with(&pool1));
        let z = a.zip_map_with(&pool, &a, |x, y| x + y).unwrap();
        let z1 = a.zip_map_with(&pool1, &a, |x, y| x + y).unwrap();
        prop_assert_eq!(z.data(), z1.data());
    }
}
