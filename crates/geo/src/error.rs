//! Error type for the geometry substrate.

use std::fmt;

/// Errors produced while parsing, validating or operating on geometries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeoError {
    /// The WKT text could not be parsed; carries position and message.
    WktParse {
        /// Byte offset in the input where the error was detected.
        position: usize,
        /// Human-readable description of what went wrong.
        message: String,
    },
    /// A geometry failed a structural invariant (e.g. an unclosed ring).
    InvalidGeometry(String),
    /// An operation was applied to a geometry type it does not support.
    UnsupportedOperation(String),
    /// The requested coordinate reference system is unknown.
    UnknownCrs(u32),
    /// A coordinate lies outside the domain of a projection.
    ProjectionDomain(String),
}

impl fmt::Display for GeoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeoError::WktParse { position, message } => {
                write!(f, "WKT parse error at byte {position}: {message}")
            }
            GeoError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            GeoError::UnsupportedOperation(msg) => write!(f, "unsupported operation: {msg}"),
            GeoError::UnknownCrs(srid) => write!(f, "unknown CRS: EPSG:{srid}"),
            GeoError::ProjectionDomain(msg) => write!(f, "projection domain error: {msg}"),
        }
    }
}

impl std::error::Error for GeoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wkt_parse() {
        let e = GeoError::WktParse {
            position: 7,
            message: "expected number".into(),
        };
        assert_eq!(e.to_string(), "WKT parse error at byte 7: expected number");
    }

    #[test]
    fn display_unknown_crs() {
        assert_eq!(GeoError::UnknownCrs(9999).to_string(), "unknown CRS: EPSG:9999");
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(GeoError::InvalidGeometry("x".into()));
        assert!(e.to_string().contains("invalid geometry"));
    }
}
