//! OGC Simple Features geometry model.

use crate::coord::{Coord, Envelope};
use crate::error::GeoError;
use crate::Result;

/// A point: a single coordinate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point(pub Coord);

impl Point {
    /// Point from x/y.
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point(Coord::new(x, y))
    }

    /// The underlying coordinate.
    #[inline]
    pub fn coord(&self) -> Coord {
        self.0
    }

    /// X (easting / longitude).
    #[inline]
    pub fn x(&self) -> f64 {
        self.0.x
    }

    /// Y (northing / latitude).
    #[inline]
    pub fn y(&self) -> f64 {
        self.0.y
    }
}

/// A polyline of two or more coordinates (one is allowed transiently while
/// building; validation rejects it).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineString(pub Vec<Coord>);

impl LineString {
    /// Build a line string from coordinates.
    pub fn new(coords: Vec<Coord>) -> Self {
        LineString(coords)
    }

    /// The coordinates of the line.
    #[inline]
    pub fn coords(&self) -> &[Coord] {
        &self.0
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// True when first and last vertices coincide (and there are ≥ 4).
    pub fn is_closed(&self) -> bool {
        self.0.len() >= 4 && self.0.first() == self.0.last()
    }

    /// Iterate over consecutive coordinate pairs (the segments).
    pub fn segments(&self) -> impl Iterator<Item = (Coord, Coord)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }

    /// Total length of the line.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(&b)).sum()
    }

    /// Twice the signed area of the ring (positive when counter-clockwise).
    /// Meaningful for closed rings only.
    pub fn signed_area2(&self) -> f64 {
        let mut sum = 0.0;
        for (a, b) in self.segments() {
            sum += a.cross(&b);
        }
        sum
    }

    /// Ring orientation: true when counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area2() > 0.0
    }

    /// Reverse the vertex order in place.
    pub fn reverse(&mut self) {
        self.0.reverse();
    }

    /// Bounding box of the line.
    pub fn envelope(&self) -> Envelope {
        Envelope::from_coords(self.0.iter())
    }
}

impl From<Vec<(f64, f64)>> for LineString {
    fn from(v: Vec<(f64, f64)>) -> Self {
        LineString(v.into_iter().map(Coord::from).collect())
    }
}

/// A polygon: one exterior ring and zero or more interior rings (holes).
///
/// Rings are stored closed (first coordinate repeated at the end). The
/// conventional orientation is counter-clockwise exterior, clockwise holes;
/// [`Polygon::normalize`] enforces it.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    /// The outer boundary.
    pub exterior: LineString,
    /// Inner boundaries (holes).
    pub interiors: Vec<LineString>,
}

impl Polygon {
    /// Polygon from a closed exterior ring and holes.
    pub fn new(exterior: LineString, interiors: Vec<LineString>) -> Self {
        Polygon { exterior, interiors }
    }

    /// Axis-aligned rectangle polygon from an envelope.
    pub fn from_envelope(e: &Envelope) -> Self {
        Polygon::new(
            LineString(vec![
                e.min,
                Coord::new(e.max.x, e.min.y),
                e.max,
                Coord::new(e.min.x, e.max.y),
                e.min,
            ]),
            vec![],
        )
    }

    /// Bounding box (of the exterior ring).
    pub fn envelope(&self) -> Envelope {
        self.exterior.envelope()
    }

    /// Enforce CCW exterior / CW holes and ring closure.
    pub fn normalize(&mut self) {
        close_ring(&mut self.exterior);
        if !self.exterior.is_ccw() {
            self.exterior.reverse();
        }
        for hole in &mut self.interiors {
            close_ring(hole);
            if hole.is_ccw() {
                hole.reverse();
            }
        }
    }

    /// Area of the polygon (exterior minus holes).
    pub fn area(&self) -> f64 {
        let ext = self.exterior.signed_area2().abs();
        let holes: f64 = self.interiors.iter().map(|h| h.signed_area2().abs()).sum();
        (ext - holes) * 0.5
    }
}

fn close_ring(ring: &mut LineString) {
    if !ring.0.is_empty() && ring.0.first() != ring.0.last() {
        let first = ring.0[0];
        ring.0.push(first);
    }
}

/// Any OGC Simple Features geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    /// A single position.
    Point(Point),
    /// A polyline.
    LineString(LineString),
    /// An area with optional holes.
    Polygon(Polygon),
    /// A set of points.
    MultiPoint(Vec<Point>),
    /// A set of polylines.
    MultiLineString(Vec<LineString>),
    /// A set of polygons.
    MultiPolygon(Vec<Polygon>),
    /// A heterogeneous collection.
    GeometryCollection(Vec<Geometry>),
}

impl Geometry {
    /// The OGC type name in upper case, as it appears in WKT.
    pub fn type_name(&self) -> &'static str {
        match self {
            Geometry::Point(_) => "POINT",
            Geometry::LineString(_) => "LINESTRING",
            Geometry::Polygon(_) => "POLYGON",
            Geometry::MultiPoint(_) => "MULTIPOINT",
            Geometry::MultiLineString(_) => "MULTILINESTRING",
            Geometry::MultiPolygon(_) => "MULTIPOLYGON",
            Geometry::GeometryCollection(_) => "GEOMETRYCOLLECTION",
        }
    }

    /// Topological dimension: 0 for points, 1 for lines, 2 for areas.
    /// Collections report the maximum dimension of their members
    /// (−1 when empty, encoded as `None`).
    pub fn dimension(&self) -> Option<u8> {
        match self {
            Geometry::Point(_) | Geometry::MultiPoint(_) => Some(0),
            Geometry::LineString(_) | Geometry::MultiLineString(_) => Some(1),
            Geometry::Polygon(_) | Geometry::MultiPolygon(_) => Some(2),
            Geometry::GeometryCollection(gs) => gs.iter().filter_map(Geometry::dimension).max(),
        }
    }

    /// Bounding box of the geometry; empty envelope for empty collections.
    pub fn envelope(&self) -> Envelope {
        match self {
            Geometry::Point(p) => Envelope::from_coord(p.0),
            Geometry::LineString(l) => l.envelope(),
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPoint(ps) => Envelope::from_coords(ps.iter().map(|p| &p.0)),
            Geometry::MultiLineString(ls) => ls
                .iter()
                .map(LineString::envelope)
                .fold(Envelope::EMPTY, |acc, e| acc.union(&e)),
            Geometry::MultiPolygon(ps) => ps
                .iter()
                .map(Polygon::envelope)
                .fold(Envelope::EMPTY, |acc, e| acc.union(&e)),
            Geometry::GeometryCollection(gs) => gs
                .iter()
                .map(Geometry::envelope)
                .fold(Envelope::EMPTY, |acc, e| acc.union(&e)),
        }
    }

    /// True when the geometry has no coordinates at all.
    pub fn is_empty(&self) -> bool {
        match self {
            Geometry::Point(_) => false,
            Geometry::LineString(l) => l.is_empty(),
            Geometry::Polygon(p) => p.exterior.is_empty(),
            Geometry::MultiPoint(ps) => ps.is_empty(),
            Geometry::MultiLineString(ls) => ls.is_empty() || ls.iter().all(LineString::is_empty),
            Geometry::MultiPolygon(ps) => ps.is_empty() || ps.iter().all(|p| p.exterior.is_empty()),
            Geometry::GeometryCollection(gs) => gs.is_empty() || gs.iter().all(Geometry::is_empty),
        }
    }

    /// Total number of coordinates in the geometry.
    pub fn num_coords(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.len(),
            Geometry::Polygon(p) => {
                p.exterior.len() + p.interiors.iter().map(LineString::len).sum::<usize>()
            }
            Geometry::MultiPoint(ps) => ps.len(),
            Geometry::MultiLineString(ls) => ls.iter().map(LineString::len).sum(),
            Geometry::MultiPolygon(ps) => ps
                .iter()
                .map(|p| p.exterior.len() + p.interiors.iter().map(LineString::len).sum::<usize>())
                .sum(),
            Geometry::GeometryCollection(gs) => gs.iter().map(Geometry::num_coords).sum(),
        }
    }

    /// Visit every coordinate of the geometry.
    pub fn for_each_coord<F: FnMut(Coord)>(&self, f: &mut F) {
        match self {
            Geometry::Point(p) => f(p.0),
            Geometry::LineString(l) => l.0.iter().copied().for_each(f),
            Geometry::Polygon(p) => {
                p.exterior.0.iter().copied().for_each(&mut *f);
                for h in &p.interiors {
                    h.0.iter().copied().for_each(&mut *f);
                }
            }
            Geometry::MultiPoint(ps) => ps.iter().for_each(|p| f(p.0)),
            Geometry::MultiLineString(ls) => {
                for l in ls {
                    l.0.iter().copied().for_each(&mut *f);
                }
            }
            Geometry::MultiPolygon(ps) => {
                for p in ps {
                    p.exterior.0.iter().copied().for_each(&mut *f);
                    for h in &p.interiors {
                        h.0.iter().copied().for_each(&mut *f);
                    }
                }
            }
            Geometry::GeometryCollection(gs) => {
                for g in gs {
                    g.for_each_coord(f);
                }
            }
        }
    }

    /// Apply `f` to every coordinate, producing a transformed geometry.
    pub fn map_coords<F: Fn(Coord) -> Coord + Copy>(&self, f: F) -> Geometry {
        let map_line = |l: &LineString| LineString(l.0.iter().map(|&c| f(c)).collect());
        let map_poly = |p: &Polygon| Polygon {
            exterior: map_line(&p.exterior),
            interiors: p.interiors.iter().map(map_line).collect(),
        };
        match self {
            Geometry::Point(p) => Geometry::Point(Point(f(p.0))),
            Geometry::LineString(l) => Geometry::LineString(map_line(l)),
            Geometry::Polygon(p) => Geometry::Polygon(map_poly(p)),
            Geometry::MultiPoint(ps) => {
                Geometry::MultiPoint(ps.iter().map(|p| Point(f(p.0))).collect())
            }
            Geometry::MultiLineString(ls) => {
                Geometry::MultiLineString(ls.iter().map(map_line).collect())
            }
            Geometry::MultiPolygon(ps) => Geometry::MultiPolygon(ps.iter().map(map_poly).collect()),
            Geometry::GeometryCollection(gs) => {
                Geometry::GeometryCollection(gs.iter().map(|g| g.map_coords(f)).collect())
            }
        }
    }

    /// Structural validity check.
    ///
    /// Verifies closure and minimum vertex counts of rings, finiteness of
    /// coordinates and minimum lengths of lines. It does not detect
    /// self-intersections (full OGC validity), which the overlay code
    /// tolerates for the shapes this system produces.
    pub fn validate(&self) -> Result<()> {
        let check_finite = |c: &Coord| -> Result<()> {
            if c.is_finite() {
                Ok(())
            } else {
                Err(GeoError::InvalidGeometry("non-finite coordinate".into()))
            }
        };
        let check_ring = |r: &LineString, what: &str| -> Result<()> {
            if r.len() < 4 {
                return Err(GeoError::InvalidGeometry(format!(
                    "{what} has {} points, need at least 4",
                    r.len()
                )));
            }
            if !r.is_closed() {
                return Err(GeoError::InvalidGeometry(format!("{what} is not closed")));
            }
            r.0.iter().try_for_each(check_finite)
        };
        let check_poly = |p: &Polygon| -> Result<()> {
            check_ring(&p.exterior, "exterior ring")?;
            for (i, h) in p.interiors.iter().enumerate() {
                check_ring(h, &format!("interior ring {i}"))?;
            }
            Ok(())
        };
        match self {
            Geometry::Point(p) => check_finite(&p.0),
            Geometry::LineString(l) => {
                if l.len() < 2 {
                    return Err(GeoError::InvalidGeometry(
                        "line string needs at least 2 points".into(),
                    ));
                }
                l.0.iter().try_for_each(check_finite)
            }
            Geometry::Polygon(p) => check_poly(p),
            Geometry::MultiPoint(ps) => ps.iter().try_for_each(|p| check_finite(&p.0)),
            Geometry::MultiLineString(ls) => ls
                .iter()
                .try_for_each(|l| Geometry::LineString(l.clone()).validate()),
            Geometry::MultiPolygon(ps) => ps.iter().try_for_each(check_poly),
            Geometry::GeometryCollection(gs) => gs.iter().try_for_each(Geometry::validate),
        }
    }

    /// Flatten into the list of primitive (non-multi) geometries.
    pub fn primitives(&self) -> Vec<Geometry> {
        match self {
            Geometry::MultiPoint(ps) => ps.iter().map(|p| Geometry::Point(*p)).collect(),
            Geometry::MultiLineString(ls) => {
                ls.iter().map(|l| Geometry::LineString(l.clone())).collect()
            }
            Geometry::MultiPolygon(ps) => ps.iter().map(|p| Geometry::Polygon(p.clone())).collect(),
            Geometry::GeometryCollection(gs) => gs.iter().flat_map(Geometry::primitives).collect(),
            other => vec![other.clone()],
        }
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}

impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}

impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::from_envelope(&Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0)))
    }

    #[test]
    fn point_accessors() {
        let p = Point::new(3.0, 4.0);
        assert_eq!(p.x(), 3.0);
        assert_eq!(p.y(), 4.0);
    }

    #[test]
    fn linestring_length_and_segments() {
        let l = LineString::from(vec![(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)]);
        assert_eq!(l.length(), 7.0);
        assert_eq!(l.segments().count(), 2);
    }

    #[test]
    fn ring_orientation() {
        let sq = unit_square();
        assert!(sq.exterior.is_ccw());
        let mut rev = sq.exterior.clone();
        rev.reverse();
        assert!(!rev.is_ccw());
    }

    #[test]
    fn polygon_area_with_hole() {
        let mut p = unit_square();
        p.interiors.push(LineString::from(vec![
            (0.25, 0.25),
            (0.75, 0.25),
            (0.75, 0.75),
            (0.25, 0.75),
            (0.25, 0.25),
        ]));
        assert!((p.area() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn polygon_normalize_fixes_orientation_and_closure() {
        let mut p = Polygon::new(
            LineString::from(vec![(0.0, 0.0), (0.0, 1.0), (1.0, 1.0), (1.0, 0.0)]),
            vec![LineString::from(vec![
                (0.2, 0.2),
                (0.8, 0.2),
                (0.8, 0.8),
                (0.2, 0.8),
            ])],
        );
        p.normalize();
        assert!(p.exterior.is_closed());
        assert!(p.exterior.is_ccw());
        assert!(p.interiors[0].is_closed());
        assert!(!p.interiors[0].is_ccw());
    }

    #[test]
    fn geometry_envelope_collection() {
        let g = Geometry::GeometryCollection(vec![
            Geometry::Point(Point::new(-1.0, -1.0)),
            Geometry::Polygon(unit_square()),
        ]);
        let e = g.envelope();
        assert_eq!(e.min, Coord::new(-1.0, -1.0));
        assert_eq!(e.max, Coord::new(1.0, 1.0));
    }

    #[test]
    fn geometry_dimension() {
        assert_eq!(Geometry::Point(Point::new(0.0, 0.0)).dimension(), Some(0));
        assert_eq!(
            Geometry::LineString(LineString::from(vec![(0.0, 0.0), (1.0, 1.0)])).dimension(),
            Some(1)
        );
        assert_eq!(Geometry::Polygon(unit_square()).dimension(), Some(2));
        assert_eq!(Geometry::GeometryCollection(vec![]).dimension(), None);
    }

    #[test]
    fn validate_rejects_open_ring() {
        let p = Polygon::new(
            LineString::from(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]),
            vec![],
        );
        assert!(Geometry::Polygon(p).validate().is_err());
    }

    #[test]
    fn validate_rejects_nan() {
        let g = Geometry::Point(Point::new(f64::NAN, 0.0));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_accepts_square() {
        assert!(Geometry::Polygon(unit_square()).validate().is_ok());
    }

    #[test]
    fn map_coords_translates() {
        let g = Geometry::Polygon(unit_square());
        let shifted = g.map_coords(|c| Coord::new(c.x + 10.0, c.y));
        assert_eq!(shifted.envelope().min.x, 10.0);
        assert_eq!(shifted.envelope().min.y, 0.0);
    }

    #[test]
    fn num_coords_counts_everything() {
        let mut p = unit_square();
        p.interiors.push(LineString::from(vec![
            (0.25, 0.25),
            (0.75, 0.25),
            (0.75, 0.75),
            (0.25, 0.25),
        ]));
        assert_eq!(Geometry::Polygon(p).num_coords(), 9);
    }

    #[test]
    fn primitives_flattens_collections() {
        let g = Geometry::GeometryCollection(vec![
            Geometry::MultiPoint(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]),
            Geometry::Polygon(unit_square()),
        ]);
        assert_eq!(g.primitives().len(), 3);
    }

    #[test]
    fn is_empty_cases() {
        assert!(Geometry::MultiPolygon(vec![]).is_empty());
        assert!(Geometry::GeometryCollection(vec![]).is_empty());
        assert!(!Geometry::Point(Point::new(0.0, 0.0)).is_empty());
    }
}
