//! Planar coordinates and axis-aligned envelopes (bounding boxes).

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A 2-D planar coordinate.
///
/// Coordinates are plain value types; all geometry types are built from
/// them. Units depend on the CRS in use (degrees for EPSG:4326, metres
/// for EPSG:3857 or local projections).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Coord {
    /// Easting / longitude.
    pub x: f64,
    /// Northing / latitude.
    pub y: f64,
}

impl Coord {
    /// Create a coordinate from x (easting) and y (northing).
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Coord { x, y }
    }

    /// Euclidean distance to another coordinate.
    #[inline]
    pub fn distance(&self, other: &Coord) -> f64 {
        (*self - *other).norm()
    }

    /// Squared Euclidean distance (avoids the square root).
    #[inline]
    pub fn distance_sq(&self, other: &Coord) -> f64 {
        let d = *self - *other;
        d.x * d.x + d.y * d.y
    }

    /// Euclidean norm of the coordinate treated as a vector.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: &Coord) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &Coord) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Coord, t: f64) -> Coord {
        Coord::new(self.x + (other.x - self.x) * t, self.y + (other.y - self.y) * t)
    }
}

impl Add for Coord {
    type Output = Coord;
    #[inline]
    fn add(self, rhs: Coord) -> Coord {
        Coord::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Coord {
    type Output = Coord;
    #[inline]
    fn sub(self, rhs: Coord) -> Coord {
        Coord::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Coord {
    type Output = Coord;
    #[inline]
    fn mul(self, rhs: f64) -> Coord {
        Coord::new(self.x * rhs, self.y * rhs)
    }
}

impl From<(f64, f64)> for Coord {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Coord::new(x, y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.x, self.y)
    }
}

/// Orientation of the ordered triple (a, b, c).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Counter-clockwise turn.
    CounterClockwise,
    /// Clockwise turn.
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

/// Tolerance used to absorb floating-point noise in orientation tests.
///
/// The value is scaled by the magnitude of the inputs, so the predicate
/// behaves consistently for coordinates in degrees and in metres.
pub const EPS: f64 = 1e-12;

/// Robust-enough orientation predicate for the ordered triple (a, b, c).
///
/// Uses a magnitude-scaled epsilon so that near-collinear triples with
/// large coordinates are still classified as collinear.
pub fn orient2d(a: Coord, b: Coord, c: Coord) -> Orientation {
    let det = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    let scale = (b.x - a.x).abs().max((b.y - a.y).abs()).max((c.x - a.x).abs()).max((c.y - a.y).abs());
    let tol = EPS * scale * scale;
    if det > tol {
        Orientation::CounterClockwise
    } else if det < -tol {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

/// An axis-aligned bounding box.
///
/// An `Envelope` may be *empty* (`min > max` component-wise), which is the
/// identity for [`Envelope::expand_to_include`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Lower-left corner.
    pub min: Coord,
    /// Upper-right corner.
    pub max: Coord,
}

impl Envelope {
    /// The empty envelope — identity element for envelope union.
    pub const EMPTY: Envelope = Envelope {
        min: Coord::new(f64::INFINITY, f64::INFINITY),
        max: Coord::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
    };

    /// Envelope from two corner coordinates (in any order).
    pub fn new(a: Coord, b: Coord) -> Self {
        Envelope {
            min: Coord::new(a.x.min(b.x), a.y.min(b.y)),
            max: Coord::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Envelope covering a single point.
    #[inline]
    pub fn from_coord(c: Coord) -> Self {
        Envelope { min: c, max: c }
    }

    /// Envelope covering all coordinates in `coords`; empty if none.
    pub fn from_coords<'a, I: IntoIterator<Item = &'a Coord>>(coords: I) -> Self {
        let mut env = Envelope::EMPTY;
        for c in coords {
            env.expand_to_include(*c);
        }
        env
    }

    /// True when the envelope contains no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width (x extent); zero for empty envelopes.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height (y extent); zero for empty envelopes.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the envelope; zero for empty or degenerate envelopes.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half the perimeter; used by R-tree split heuristics.
    #[inline]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Centre point of the envelope.
    #[inline]
    pub fn center(&self) -> Coord {
        Coord::new((self.min.x + self.max.x) * 0.5, (self.min.y + self.max.y) * 0.5)
    }

    /// Grow the envelope to cover `c`.
    #[inline]
    pub fn expand_to_include(&mut self, c: Coord) {
        self.min.x = self.min.x.min(c.x);
        self.min.y = self.min.y.min(c.y);
        self.max.x = self.max.x.max(c.x);
        self.max.y = self.max.y.max(c.y);
    }

    /// Union of two envelopes.
    pub fn union(&self, other: &Envelope) -> Envelope {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Envelope {
            min: Coord::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Coord::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Intersection of two envelopes; may be empty.
    pub fn intersection(&self, other: &Envelope) -> Envelope {
        Envelope {
            min: Coord::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Coord::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        }
    }

    /// True when the envelopes share at least one point (boundaries count).
    #[inline]
    pub fn intersects(&self, other: &Envelope) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True when `c` lies inside or on the boundary of the envelope.
    #[inline]
    pub fn contains_coord(&self, c: Coord) -> bool {
        c.x >= self.min.x && c.x <= self.max.x && c.y >= self.min.y && c.y <= self.max.y
    }

    /// True when `other` lies entirely inside this envelope.
    #[inline]
    pub fn contains_envelope(&self, other: &Envelope) -> bool {
        !other.is_empty()
            && other.min.x >= self.min.x
            && other.max.x <= self.max.x
            && other.min.y >= self.min.y
            && other.max.y <= self.max.y
    }

    /// Minimum distance between two envelopes (0 when they intersect).
    pub fn distance(&self, other: &Envelope) -> f64 {
        let dx = (other.min.x - self.max.x).max(self.min.x - other.max.x).max(0.0);
        let dy = (other.min.y - self.max.y).max(self.min.y - other.max.y).max(0.0);
        dx.hypot(dy)
    }

    /// Minimum distance from the envelope to a coordinate.
    pub fn distance_to_coord(&self, c: Coord) -> f64 {
        let dx = (self.min.x - c.x).max(c.x - self.max.x).max(0.0);
        let dy = (self.min.y - c.y).max(c.y - self.max.y).max(0.0);
        dx.hypot(dy)
    }

    /// Area increase needed to cover `other`; used by R-tree insertion.
    pub fn enlargement(&self, other: &Envelope) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Expand the envelope outward by `d` on every side.
    pub fn buffer(&self, d: f64) -> Envelope {
        if self.is_empty() {
            return *self;
        }
        Envelope {
            min: Coord::new(self.min.x - d, self.min.y - d),
            max: Coord::new(self.max.x + d, self.max.y + d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_arithmetic() {
        let a = Coord::new(1.0, 2.0);
        let b = Coord::new(3.0, 5.0);
        assert_eq!(a + b, Coord::new(4.0, 7.0));
        assert_eq!(b - a, Coord::new(2.0, 3.0));
        assert_eq!(a * 2.0, Coord::new(2.0, 4.0));
        assert_eq!(a.dot(&b), 13.0);
        assert_eq!(a.cross(&b), -1.0);
    }

    #[test]
    fn coord_distance() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn coord_lerp() {
        let a = Coord::new(0.0, 0.0);
        let b = Coord::new(10.0, -10.0);
        assert_eq!(a.lerp(&b, 0.5), Coord::new(5.0, -5.0));
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
    }

    #[test]
    fn orientation_basic() {
        let o = Coord::new(0.0, 0.0);
        assert_eq!(
            orient2d(o, Coord::new(1.0, 0.0), Coord::new(1.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(o, Coord::new(1.0, 0.0), Coord::new(1.0, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(o, Coord::new(1.0, 1.0), Coord::new(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_near_collinear_large_coords() {
        // Points on a nearly-straight line with large magnitudes should be
        // classified collinear rather than flip-flopping on rounding noise.
        let a = Coord::new(1e8, 1e8);
        let b = Coord::new(2e8, 2e8);
        let c = Coord::new(3e8, 3e8 + 1e-4);
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
    }

    #[test]
    fn envelope_empty_identity() {
        let e = Envelope::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let b = Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0));
        assert_eq!(e.union(&b), b);
        assert!(!e.intersects(&b));
    }

    #[test]
    fn envelope_union_intersection() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(2.0, 2.0));
        let b = Envelope::new(Coord::new(1.0, 1.0), Coord::new(3.0, 3.0));
        let u = a.union(&b);
        assert_eq!(u, Envelope::new(Coord::new(0.0, 0.0), Coord::new(3.0, 3.0)));
        let i = a.intersection(&b);
        assert_eq!(i, Envelope::new(Coord::new(1.0, 1.0), Coord::new(2.0, 2.0)));
        assert!(a.intersects(&b));
    }

    #[test]
    fn envelope_disjoint_intersection_is_empty() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0));
        let b = Envelope::new(Coord::new(2.0, 2.0), Coord::new(3.0, 3.0));
        assert!(a.intersection(&b).is_empty());
        assert!(!a.intersects(&b));
        assert!((a.distance(&b) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn envelope_touching_boundary_intersects() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0));
        let b = Envelope::new(Coord::new(1.0, 0.0), Coord::new(2.0, 1.0));
        assert!(a.intersects(&b));
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn envelope_contains() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(4.0, 4.0));
        let b = Envelope::new(Coord::new(1.0, 1.0), Coord::new(2.0, 2.0));
        assert!(a.contains_envelope(&b));
        assert!(!b.contains_envelope(&a));
        assert!(a.contains_coord(Coord::new(0.0, 4.0)));
        assert!(!a.contains_coord(Coord::new(-0.1, 2.0)));
    }

    #[test]
    fn envelope_enlargement() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0));
        let b = Envelope::new(Coord::new(2.0, 0.0), Coord::new(3.0, 1.0));
        // Union is 3x1 = 3, own area 1 => enlargement 2.
        assert_eq!(a.enlargement(&b), 2.0);
    }

    #[test]
    fn envelope_buffer() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0));
        let b = a.buffer(1.0);
        assert_eq!(b, Envelope::new(Coord::new(-1.0, -1.0), Coord::new(2.0, 2.0)));
    }

    #[test]
    fn envelope_distance_to_coord() {
        let a = Envelope::new(Coord::new(0.0, 0.0), Coord::new(1.0, 1.0));
        assert_eq!(a.distance_to_coord(Coord::new(0.5, 0.5)), 0.0);
        assert_eq!(a.distance_to_coord(Coord::new(4.0, 1.0)), 3.0);
        assert!((a.distance_to_coord(Coord::new(2.0, 2.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn envelope_from_coords() {
        let coords = [Coord::new(1.0, 5.0), Coord::new(-2.0, 3.0), Coord::new(0.0, 7.0)];
        let e = Envelope::from_coords(coords.iter());
        assert_eq!(e.min, Coord::new(-2.0, 3.0));
        assert_eq!(e.max, Coord::new(1.0, 7.0));
    }
}
