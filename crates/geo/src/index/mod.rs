//! Spatial indexes.

pub mod rtree;

pub use rtree::RTree;
