//! An R-tree over envelopes with attached payloads.
//!
//! Construction is either incremental ([`RTree::insert`], quadratic-split
//! R-tree in the style of Guttman) or bulk ([`RTree::bulk_load`],
//! Sort-Tile-Recursive packing, which produces near-optimal trees and is
//! what Strabon's spatial sidecar uses after dataset load).
//!
//! Supported queries: envelope intersection ([`RTree::query`]), point
//! containment ([`RTree::query_point`]), and k-nearest-neighbour by
//! envelope distance ([`RTree::nearest`]).

use crate::coord::{Coord, Envelope};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use teleios_exec::WorkerPool;

const MAX_ENTRIES: usize = 16;
const MIN_ENTRIES: usize = 4;

/// Entry count below which [`RTree::bulk_load_with`] delegates to the
/// serial [`RTree::bulk_load`]: under this size the sorts are too
/// cheap to amortize task setup.
pub const PAR_BULK_LOAD_THRESHOLD: usize = 4096;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { env: Envelope, entries: Vec<(Envelope, T)> },
    Inner { env: Envelope, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn envelope(&self) -> Envelope {
        match self {
            Node::Leaf { env, .. } | Node::Inner { env, .. } => *env,
        }
    }

    fn recompute_env(&mut self) {
        match self {
            Node::Leaf { env, entries } => {
                *env = entries
                    .iter()
                    .fold(Envelope::EMPTY, |acc, (e, _)| acc.union(e));
            }
            Node::Inner { env, children } => {
                *env = children
                    .iter()
                    .fold(Envelope::EMPTY, |acc, c| acc.union(&c.envelope()));
            }
        }
    }
}

/// R-tree mapping envelopes to payload values of type `T`.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> RTree<T> {
    /// Empty tree.
    pub fn new() -> Self {
        RTree { root: Node::Leaf { env: Envelope::EMPTY, entries: Vec::new() }, len: 0 }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Envelope covering every entry (empty envelope when empty).
    pub fn envelope(&self) -> Envelope {
        self.root.envelope()
    }

    /// Bulk-load entries with Sort-Tile-Recursive packing.
    pub fn bulk_load(mut items: Vec<(Envelope, T)>) -> Self {
        let len = items.len();
        if len == 0 {
            return Self::new();
        }
        if len <= MAX_ENTRIES {
            let mut leaf = Node::Leaf { env: Envelope::EMPTY, entries: items };
            leaf.recompute_env();
            return RTree { root: leaf, len };
        }
        // STR: sort by centre x, slice into vertical strips, sort each
        // strip by centre y, pack runs of MAX_ENTRIES into leaves.
        items.sort_by(cmp_center_x);
        let (_, per_strip) = str_strip_layout(len);
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(len.div_ceil(MAX_ENTRIES));
        for mut strip in chunk_every(items, per_strip) {
            strip.sort_by(cmp_center_y);
            leaves.extend(pack_leaves(strip));
        }
        RTree { root: pack_upward(leaves), len }
    }

    /// Bulk-load entries with STR packing, parallelizing the two sort
    /// passes on `pool`'s work-stealing scheduler.
    ///
    /// Produces the same tree as [`RTree::bulk_load`]: the x-sort runs
    /// as per-chunk stable sorts merged with ties favoring the earlier
    /// chunk (chunks are contiguous input ranges, so the merge
    /// reproduces the global stable sort), and the per-strip y-sort +
    /// leaf packing runs one strip per task with results concatenated
    /// in strip order. Inputs below [`PAR_BULK_LOAD_THRESHOLD`] — or a
    /// one-thread pool — take the serial path directly.
    pub fn bulk_load_with(pool: &WorkerPool, items: Vec<(Envelope, T)>) -> Self
    where
        T: Send,
    {
        let len = items.len();
        if pool.threads() <= 1 || len < PAR_BULK_LOAD_THRESHOLD {
            return Self::bulk_load(items);
        }
        // Parallel stable x-sort: contiguous chunks, one per worker.
        let chunk = len.div_ceil(pool.threads());
        let sorted: Vec<Vec<(Envelope, T)>> = pool.run_stealing(
            chunk_every(items, chunk)
                .into_iter()
                .map(|mut c| {
                    move || {
                        c.sort_by(cmp_center_x);
                        c
                    }
                })
                .collect(),
        );
        let items = merge_by_center_x(sorted);
        // Parallel strips: y-sort + leaf packing per strip, one strip
        // per task (stealing absorbs the short final strip).
        let (_, per_strip) = str_strip_layout(len);
        let leaves: Vec<Node<T>> = pool
            .run_stealing(
                chunk_every(items, per_strip)
                    .into_iter()
                    .map(|mut strip| {
                        move || {
                            strip.sort_by(cmp_center_y);
                            pack_leaves(strip)
                        }
                    })
                    .collect(),
            )
            .into_iter()
            .flatten()
            .collect();
        // The upward pack touches only ~len/16 nodes per level; serial
        // is already memory-bound here.
        RTree { root: pack_upward(leaves), len }
    }

    /// Insert one entry (Guttman insertion with quadratic split).
    pub fn insert(&mut self, env: Envelope, value: T) {
        self.len += 1;
        if let Some((left, right)) = insert_rec(&mut self.root, env, value) {
            // Root split: grow the tree.
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Inner { env: Envelope::EMPTY, children: Vec::new() },
            );
            // old_root has been replaced by `left` contents already; rebuild.
            drop(old_root);
            let mut inner = Node::Inner { env: Envelope::EMPTY, children: vec![left, right] };
            inner.recompute_env();
            self.root = inner;
        }
    }

    /// All values whose envelope intersects `query`.
    pub fn query(&self, query: &Envelope) -> Vec<&T> {
        let mut out = Vec::new();
        query_rec(&self.root, query, &mut out);
        out
    }

    /// All (envelope, value) pairs whose envelope intersects `query`.
    pub fn query_entries(&self, query: &Envelope) -> Vec<(&Envelope, &T)> {
        let mut out = Vec::new();
        query_entries_rec(&self.root, query, &mut out);
        out
    }

    /// All values whose envelope contains the point `p`.
    pub fn query_point(&self, p: Coord) -> Vec<&T> {
        self.query(&Envelope::from_coord(p))
    }

    /// The `k` entries nearest to `p` by envelope distance, closest first.
    pub fn nearest(&self, p: Coord, k: usize) -> Vec<(&Envelope, &T, f64)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        // Best-first search over nodes and entries.
        struct Item<'a, T> {
            dist: f64,
            kind: ItemKind<'a, T>,
        }
        enum ItemKind<'a, T> {
            Node(&'a Node<T>),
            Entry(&'a Envelope, &'a T),
        }
        impl<T> PartialEq for Item<'_, T> {
            fn eq(&self, other: &Self) -> bool {
                self.dist == other.dist
            }
        }
        impl<T> Eq for Item<'_, T> {}
        impl<T> PartialOrd for Item<'_, T> {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T> Ord for Item<'_, T> {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse for a min-heap on distance.
                other.dist.partial_cmp(&self.dist).unwrap_or(Ordering::Equal)
            }
        }

        let mut heap: BinaryHeap<Item<'_, T>> = BinaryHeap::new();
        heap.push(Item { dist: self.root.envelope().distance_to_coord(p), kind: ItemKind::Node(&self.root) });
        let mut out = Vec::with_capacity(k);
        while let Some(item) = heap.pop() {
            match item.kind {
                ItemKind::Node(Node::Inner { children, .. }) => {
                    for ch in children {
                        heap.push(Item {
                            dist: ch.envelope().distance_to_coord(p),
                            kind: ItemKind::Node(ch),
                        });
                    }
                }
                ItemKind::Node(Node::Leaf { entries, .. }) => {
                    for (env, v) in entries {
                        heap.push(Item {
                            dist: env.distance_to_coord(p),
                            kind: ItemKind::Entry(env, v),
                        });
                    }
                }
                ItemKind::Entry(env, v) => {
                    out.push((env, v, item.dist));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Keep only entries whose value satisfies `pred`; rebuilds the tree.
    pub fn retain<F: FnMut(&Envelope, &T) -> bool>(&mut self, mut pred: F)
    where
        T: Clone,
    {
        let mut kept: Vec<(Envelope, T)> = Vec::with_capacity(self.len);
        collect_entries(&self.root, &mut |env, v| {
            if pred(env, v) {
                kept.push((*env, v.clone()));
            }
        });
        *self = RTree::bulk_load(kept);
    }

    /// Visit every entry.
    pub fn for_each<F: FnMut(&Envelope, &T)>(&self, mut f: F) {
        collect_entries(&self.root, &mut f);
    }

    /// Height of the tree (1 for a single leaf).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Inner { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }
}

/// STR layout for `len` entries: `(strip_count, per_strip)`.
fn str_strip_layout(len: usize) -> (usize, usize) {
    let leaf_count = len.div_ceil(MAX_ENTRIES);
    let strip_count = (leaf_count as f64).sqrt().ceil() as usize;
    let per_strip = len.div_ceil(strip_count.max(1));
    (strip_count, per_strip.max(1))
}

/// Centre-x comparator used by the STR outer sort. Incomparable keys
/// (NaN centres) tie, which a stable sort leaves in input order.
fn cmp_center_x<T>(a: &(Envelope, T), b: &(Envelope, T)) -> Ordering {
    a.0.center().x.partial_cmp(&b.0.center().x).unwrap_or(Ordering::Equal)
}

/// Centre-y comparator used by the per-strip inner sort.
fn cmp_center_y<T>(a: &(Envelope, T), b: &(Envelope, T)) -> Ordering {
    a.0.center().y.partial_cmp(&b.0.center().y).unwrap_or(Ordering::Equal)
}

/// Split `items` into owned runs of `size` (the last may be shorter),
/// preserving order. Owned (rather than borrowed) runs let the
/// parallel bulk load move each run into its task.
fn chunk_every<E>(items: Vec<E>, size: usize) -> Vec<Vec<E>> {
    let size = size.max(1);
    let mut out = Vec::with_capacity(items.len().div_ceil(size).max(1));
    let mut rest = items;
    while rest.len() > size {
        let tail = rest.split_off(size);
        out.push(std::mem::replace(&mut rest, tail));
    }
    if !rest.is_empty() {
        out.push(rest);
    }
    out
}

/// Merge chunks that are each sorted by [`cmp_center_x`] into one
/// sorted run. Ties — and NaN centres, which compare as ties — pick
/// the earliest chunk; since chunks are contiguous input ranges this
/// reproduces the global stable sort exactly.
fn merge_by_center_x<T>(chunks: Vec<Vec<(Envelope, T)>>) -> Vec<(Envelope, T)> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut iters: Vec<_> = chunks.into_iter().map(|c| c.into_iter().peekable()).collect();
    let mut out: Vec<(Envelope, T)> = Vec::with_capacity(total);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (m, it) in iters.iter_mut().enumerate() {
            if let Some((env, _)) = it.peek() {
                let x = env.center().x;
                best = match best {
                    Some((bm, bx)) if x.partial_cmp(&bx) != Some(Ordering::Less) => {
                        Some((bm, bx))
                    }
                    _ => Some((m, x)),
                };
            }
        }
        match best {
            Some((m, _)) => {
                if let Some(item) = iters[m].next() {
                    out.push(item);
                }
            }
            None => break,
        }
    }
    out
}

/// Pack a y-sorted strip into STR leaves of up to `MAX_ENTRIES`.
fn pack_leaves<T>(strip: Vec<(Envelope, T)>) -> Vec<Node<T>> {
    chunk_every(strip, MAX_ENTRIES)
        .into_iter()
        .map(|entries| {
            let mut leaf = Node::Leaf { env: Envelope::EMPTY, entries };
            leaf.recompute_env();
            leaf
        })
        .collect()
}

/// Pack a level of nodes upward until a single root remains. An empty
/// input (impossible from the bulk-load paths, which early-return on
/// empty) falls back to an empty leaf.
fn pack_upward<T>(leaves: Vec<Node<T>>) -> Node<T> {
    let mut level = leaves;
    while level.len() > 1 {
        level = chunk_every(level, MAX_ENTRIES)
            .into_iter()
            .map(|children| {
                let mut inner = Node::Inner { env: Envelope::EMPTY, children };
                inner.recompute_env();
                inner
            })
            .collect();
    }
    level
        .pop()
        .unwrap_or(Node::Leaf { env: Envelope::EMPTY, entries: Vec::new() })
}

fn collect_entries<T, F: FnMut(&Envelope, &T)>(node: &Node<T>, f: &mut F) {
    match node {
        Node::Leaf { entries, .. } => {
            for (env, v) in entries {
                f(env, v);
            }
        }
        Node::Inner { children, .. } => {
            for ch in children {
                collect_entries(ch, f);
            }
        }
    }
}

fn query_rec<'a, T>(node: &'a Node<T>, query: &Envelope, out: &mut Vec<&'a T>) {
    if !node.envelope().intersects(query) {
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            for (env, v) in entries {
                if env.intersects(query) {
                    out.push(v);
                }
            }
        }
        Node::Inner { children, .. } => {
            for ch in children {
                query_rec(ch, query, out);
            }
        }
    }
}

fn query_entries_rec<'a, T>(
    node: &'a Node<T>,
    query: &Envelope,
    out: &mut Vec<(&'a Envelope, &'a T)>,
) {
    if !node.envelope().intersects(query) {
        return;
    }
    match node {
        Node::Leaf { entries, .. } => {
            for (env, v) in entries {
                if env.intersects(query) {
                    out.push((env, v));
                }
            }
        }
        Node::Inner { children, .. } => {
            for ch in children {
                query_entries_rec(ch, query, out);
            }
        }
    }
}

/// Recursive insert. Returns `Some((left, right))` when the node split;
/// the caller must replace the node with the pair. On split the original
/// node is left as `left` and the function returns both halves.
fn insert_rec<T>(node: &mut Node<T>, env: Envelope, value: T) -> Option<(Node<T>, Node<T>)> {
    match node {
        Node::Leaf { env: node_env, entries } => {
            entries.push((env, value));
            *node_env = node_env.union(&env);
            if entries.len() > MAX_ENTRIES {
                let (a, b) = split_leaf(std::mem::take(entries));
                Some((a, b))
            } else {
                None
            }
        }
        Node::Inner { env: node_env, children } => {
            *node_env = node_env.union(&env);
            // Choose the child needing least enlargement (ties: least area).
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.envelope().enlargement(&env);
                    let eb = b.envelope().enlargement(&env);
                    ea.partial_cmp(&eb)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| {
                            a.envelope()
                                .area()
                                .partial_cmp(&b.envelope().area())
                                .unwrap_or(Ordering::Equal)
                        })
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            if let Some((a, b)) = insert_rec(&mut children[idx], env, value) {
                children[idx] = a;
                children.push(b);
                if children.len() > MAX_ENTRIES {
                    let (a, b) = split_inner(std::mem::take(children));
                    return Some((a, b));
                }
            }
            None
        }
    }
}

/// Quadratic split for leaf entries.
fn split_leaf<T>(entries: Vec<(Envelope, T)>) -> (Node<T>, Node<T>) {
    let seeds = pick_seeds(&entries.iter().map(|(e, _)| *e).collect::<Vec<_>>());
    let mut left: Vec<(Envelope, T)> = Vec::with_capacity(entries.len());
    let mut right: Vec<(Envelope, T)> = Vec::with_capacity(entries.len());
    let mut left_env = Envelope::EMPTY;
    let mut right_env = Envelope::EMPTY;
    for (i, (env, v)) in entries.into_iter().enumerate() {
        let to_left = if i == seeds.0 {
            true
        } else if i == seeds.1
            || left.len() + (MIN_ENTRIES.saturating_sub(right.len())) >= MAX_ENTRIES
        {
            false
        } else if right.len() + (MIN_ENTRIES.saturating_sub(left.len())) >= MAX_ENTRIES {
            true
        } else {
            left_env.enlargement(&env) <= right_env.enlargement(&env)
        };
        if to_left {
            left_env = left_env.union(&env);
            left.push((env, v));
        } else {
            right_env = right_env.union(&env);
            right.push((env, v));
        }
    }
    (
        Node::Leaf { env: left_env, entries: left },
        Node::Leaf { env: right_env, entries: right },
    )
}

/// Quadratic split for inner-node children.
fn split_inner<T>(children: Vec<Node<T>>) -> (Node<T>, Node<T>) {
    let seeds = pick_seeds(&children.iter().map(|c| c.envelope()).collect::<Vec<_>>());
    let mut left: Vec<Node<T>> = Vec::with_capacity(children.len());
    let mut right: Vec<Node<T>> = Vec::with_capacity(children.len());
    let mut left_env = Envelope::EMPTY;
    let mut right_env = Envelope::EMPTY;
    for (i, ch) in children.into_iter().enumerate() {
        let env = ch.envelope();
        let to_left = if i == seeds.0 {
            true
        } else if i == seeds.1
            || left.len() + (MIN_ENTRIES.saturating_sub(right.len())) >= MAX_ENTRIES
        {
            false
        } else if right.len() + (MIN_ENTRIES.saturating_sub(left.len())) >= MAX_ENTRIES {
            true
        } else {
            left_env.enlargement(&env) <= right_env.enlargement(&env)
        };
        if to_left {
            left_env = left_env.union(&env);
            left.push(ch);
        } else {
            right_env = right_env.union(&env);
            right.push(ch);
        }
    }
    (
        Node::Inner { env: left_env, children: left },
        Node::Inner { env: right_env, children: right },
    )
}

/// Pick the pair of envelopes wasting the most area together (quadratic).
fn pick_seeds(envs: &[Envelope]) -> (usize, usize) {
    let mut best = (0usize, 1usize);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..envs.len() {
        for j in (i + 1)..envs.len() {
            let waste = envs[i].union(&envs[j]).area() - envs[i].area() - envs[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(x: f64, y: f64) -> Envelope {
        Envelope::new(Coord::new(x, y), Coord::new(x + 1.0, y + 1.0))
    }

    fn grid(n: usize) -> Vec<(Envelope, usize)> {
        (0..n)
            .map(|i| {
                let x = (i % 100) as f64 * 2.0;
                let y = (i / 100) as f64 * 2.0;
                (env(x, y), i)
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert!(t.query(&env(0.0, 0.0)).is_empty());
        assert!(t.nearest(Coord::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    fn insert_and_query() {
        let mut t = RTree::new();
        for (e, i) in grid(500) {
            t.insert(e, i);
        }
        assert_eq!(t.len(), 500);
        // Query a window covering cells (0,0)..(4,4) in grid steps of 2.
        let q = Envelope::new(Coord::new(0.0, 0.0), Coord::new(8.5, 8.5));
        let mut hits: Vec<usize> = t.query(&q).into_iter().copied().collect();
        hits.sort_unstable();
        // Cells with x in {0,2,4,6,8} (i%100 in 0..=4) and y rows 0..=4.
        let expected: Vec<usize> = (0..500)
            .filter(|i| (i % 100) <= 4 && (i / 100) <= 4)
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        let items = grid(1000);
        let t = RTree::bulk_load(items.clone());
        assert_eq!(t.len(), 1000);
        let q = Envelope::new(Coord::new(10.0, 2.0), Coord::new(30.0, 7.0));
        let mut from_tree: Vec<usize> = t.query(&q).into_iter().copied().collect();
        from_tree.sort_unstable();
        let mut from_scan: Vec<usize> = items
            .iter()
            .filter(|(e, _)| e.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        from_scan.sort_unstable();
        assert_eq!(from_tree, from_scan);
    }

    #[test]
    fn bulk_load_small() {
        let t = RTree::bulk_load(vec![(env(0.0, 0.0), 'a'), (env(5.0, 5.0), 'b')]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.query(&env(5.2, 5.2)), vec![&'b']);
    }

    #[test]
    fn query_point_hits_covering_envelopes() {
        let t = RTree::bulk_load(vec![
            (Envelope::new(Coord::new(0.0, 0.0), Coord::new(10.0, 10.0)), 1),
            (Envelope::new(Coord::new(5.0, 5.0), Coord::new(15.0, 15.0)), 2),
        ]);
        let mut hits: Vec<i32> = t.query_point(Coord::new(7.0, 7.0)).into_iter().copied().collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(t.query_point(Coord::new(12.0, 12.0)), vec![&2]);
    }

    #[test]
    fn nearest_orders_by_distance() {
        let t = RTree::bulk_load(vec![
            (env(0.0, 0.0), "origin"),
            (env(10.0, 0.0), "right"),
            (env(0.0, 10.0), "up"),
            (env(50.0, 50.0), "far"),
        ]);
        let nn = t.nearest(Coord::new(0.5, 0.5), 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(*nn[0].1, "origin");
        assert_eq!(nn[0].2, 0.0);
        assert!(nn[1].2 <= nn[2].2);
    }

    #[test]
    fn nearest_k_larger_than_len() {
        let t = RTree::bulk_load(vec![(env(0.0, 0.0), 1)]);
        assert_eq!(t.nearest(Coord::new(5.0, 5.0), 10).len(), 1);
    }

    #[test]
    fn retain_drops_entries() {
        let mut t = RTree::bulk_load(grid(100));
        t.retain(|_, &v| v % 2 == 0);
        assert_eq!(t.len(), 50);
        let mut all = Vec::new();
        t.for_each(|_, &v| all.push(v));
        assert!(all.iter().all(|v| v % 2 == 0));
    }

    #[test]
    fn incremental_matches_scan_on_random_data() {
        // Deterministic pseudo-random envelopes.
        let mut state = 42u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        let items: Vec<(Envelope, usize)> = (0..800)
            .map(|i| {
                let x = next();
                let y = next();
                let w = next() / 20.0;
                let h = next() / 20.0;
                (Envelope::new(Coord::new(x, y), Coord::new(x + w, y + h)), i)
            })
            .collect();
        let mut t = RTree::new();
        for (e, i) in items.clone() {
            t.insert(e, i);
        }
        let q = Envelope::new(Coord::new(20.0, 20.0), Coord::new(60.0, 60.0));
        let mut a: Vec<usize> = t.query(&q).into_iter().copied().collect();
        a.sort_unstable();
        let mut b: Vec<usize> = items
            .iter()
            .filter(|(e, _)| e.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = RTree::bulk_load(grid(4000));
        // 4000 entries at fanout 16: height 3 (16^3 = 4096).
        assert!(t.height() <= 4, "height was {}", t.height());
    }

    #[test]
    fn parallel_bulk_load_matches_serial_structure() {
        // Grid data has heavy centre-x ties (100 columns), stressing
        // the tie-stability of the chunk merge.
        let items = grid(10_000);
        let serial = RTree::bulk_load(items.clone());
        for threads in [2usize, 3, 4, 8] {
            let pool = WorkerPool::with_threads(threads);
            let par = RTree::bulk_load_with(&pool, items.clone());
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            assert_eq!(par.height(), serial.height(), "threads={threads}");
            // Identical tree structure implies identical traversal
            // order, not just an equal entry set.
            let mut a = Vec::new();
            serial.for_each(|_, &v| a.push(v));
            let mut b = Vec::new();
            par.for_each(|_, &v| b.push(v));
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn parallel_bulk_load_answers_same_window_queries() {
        let mut state = 7u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        let items: Vec<(Envelope, usize)> = (0..6000)
            .map(|i| {
                let x = next();
                let y = next();
                let w = next() / 20.0;
                let h = next() / 20.0;
                (Envelope::new(Coord::new(x, y), Coord::new(x + w, y + h)), i)
            })
            .collect();
        let serial = RTree::bulk_load(items.clone());
        let pool = WorkerPool::with_threads(4);
        let par = RTree::bulk_load_with(&pool, items.clone());
        for (x0, y0, x1, y1) in
            [(0.0, 0.0, 25.0, 25.0), (40.0, 10.0, 70.0, 30.0), (90.0, 90.0, 100.0, 100.0)]
        {
            let q = Envelope::new(Coord::new(x0, y0), Coord::new(x1, y1));
            let mut a: Vec<usize> = serial.query(&q).into_iter().copied().collect();
            let mut b: Vec<usize> = par.query(&q).into_iter().copied().collect();
            let mut scan: Vec<usize> = items
                .iter()
                .filter(|(e, _)| e.intersects(&q))
                .map(|(_, i)| *i)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            scan.sort_unstable();
            assert_eq!(a, scan);
            assert_eq!(b, scan);
        }
    }

    #[test]
    fn parallel_bulk_load_below_threshold_takes_serial_path() {
        let items = grid(100); // < PAR_BULK_LOAD_THRESHOLD
        let pool = WorkerPool::with_threads(8);
        let par = RTree::bulk_load_with(&pool, items.clone());
        let serial = RTree::bulk_load(items);
        assert_eq!(par.height(), serial.height());
        assert_eq!(par.len(), serial.len());
    }

    #[test]
    fn query_entries_returns_envelopes() {
        let t = RTree::bulk_load(vec![(env(1.0, 1.0), 7u32)]);
        let entries = t.query_entries(&env(1.2, 1.2));
        assert_eq!(entries.len(), 1);
        assert_eq!(*entries[0].1, 7);
        assert_eq!(entries[0].0.min, Coord::new(1.0, 1.0));
    }
}
