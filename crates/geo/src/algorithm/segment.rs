//! Line-segment primitives: intersection tests and closest points.

use crate::coord::{orient2d, Coord, Orientation};

/// Result of intersecting two line segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection {
    /// The segments do not meet.
    None,
    /// The segments meet in exactly one point.
    Point(Coord),
    /// The segments overlap along a collinear sub-segment.
    Overlap(Coord, Coord),
}

/// True when `c` lies on the closed segment (a, b), assuming collinearity.
fn on_segment(a: Coord, b: Coord, c: Coord) -> bool {
    c.x >= a.x.min(b.x) - f64::EPSILON
        && c.x <= a.x.max(b.x) + f64::EPSILON
        && c.y >= a.y.min(b.y) - f64::EPSILON
        && c.y <= a.y.max(b.y) + f64::EPSILON
}

/// True when the closed segments (p1, p2) and (q1, q2) share any point.
pub fn segments_intersect(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> bool {
    let o1 = orient2d(p1, p2, q1);
    let o2 = orient2d(p1, p2, q2);
    let o3 = orient2d(q1, q2, p1);
    let o4 = orient2d(q1, q2, p2);

    if o1 != o2 && o3 != o4 {
        return true;
    }
    (o1 == Orientation::Collinear && on_segment(p1, p2, q1))
        || (o2 == Orientation::Collinear && on_segment(p1, p2, q2))
        || (o3 == Orientation::Collinear && on_segment(q1, q2, p1))
        || (o4 == Orientation::Collinear && on_segment(q1, q2, p2))
}

/// Compute the intersection of two closed segments.
pub fn segment_intersection(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> SegmentIntersection {
    let r = p2 - p1;
    let s = q2 - q1;
    let denom = r.cross(&s);
    let qp = q1 - p1;

    if denom.abs() > 1e-18 {
        let t = qp.cross(&s) / denom;
        let u = qp.cross(&r) / denom;
        let eps = 1e-12;
        if t >= -eps && t <= 1.0 + eps && u >= -eps && u <= 1.0 + eps {
            return SegmentIntersection::Point(p1 + r * t.clamp(0.0, 1.0));
        }
        return SegmentIntersection::None;
    }

    // Parallel. Check collinearity.
    if qp.cross(&r).abs() > 1e-9 * (1.0 + r.norm() * qp.norm()) {
        return SegmentIntersection::None;
    }
    // Collinear: project onto r to find the overlap interval.
    let rr = r.dot(&r);
    if rr == 0.0 {
        // p is a single point.
        if on_segment(q1, q2, p1) {
            return SegmentIntersection::Point(p1);
        }
        return SegmentIntersection::None;
    }
    let t0 = qp.dot(&r) / rr;
    let t1 = (q2 - p1).dot(&r) / rr;
    let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
    let lo = lo.max(0.0);
    let hi = hi.min(1.0);
    if lo > hi {
        return SegmentIntersection::None;
    }
    let a = p1 + r * lo;
    let b = p1 + r * hi;
    if lo == hi {
        SegmentIntersection::Point(a)
    } else {
        SegmentIntersection::Overlap(a, b)
    }
}

/// Closest point on the closed segment (a, b) to point `p`.
pub fn closest_point_on_segment(a: Coord, b: Coord, p: Coord) -> Coord {
    let ab = b - a;
    let len2 = ab.dot(&ab);
    if len2 == 0.0 {
        return a;
    }
    let t = ((p - a).dot(&ab) / len2).clamp(0.0, 1.0);
    a + ab * t
}

/// Distance from point `p` to the closed segment (a, b).
pub fn point_segment_distance(a: Coord, b: Coord, p: Coord) -> f64 {
    p.distance(&closest_point_on_segment(a, b, p))
}

/// Minimum distance between two closed segments.
pub fn segment_segment_distance(p1: Coord, p2: Coord, q1: Coord, q2: Coord) -> f64 {
    if segments_intersect(p1, p2, q1, q2) {
        return 0.0;
    }
    point_segment_distance(p1, p2, q1)
        .min(point_segment_distance(p1, p2, q2))
        .min(point_segment_distance(q1, q2, p1))
        .min(point_segment_distance(q1, q2, p2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn crossing_segments() {
        assert!(segments_intersect(c(0.0, 0.0), c(2.0, 2.0), c(0.0, 2.0), c(2.0, 0.0)));
        match segment_intersection(c(0.0, 0.0), c(2.0, 2.0), c(0.0, 2.0), c(2.0, 0.0)) {
            SegmentIntersection::Point(p) => {
                assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12)
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn disjoint_segments() {
        assert!(!segments_intersect(c(0.0, 0.0), c(1.0, 0.0), c(0.0, 1.0), c(1.0, 1.0)));
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(0.0, 1.0), c(1.0, 1.0)),
            SegmentIntersection::None
        );
    }

    #[test]
    fn touching_at_endpoint() {
        assert!(segments_intersect(c(0.0, 0.0), c(1.0, 1.0), c(1.0, 1.0), c(2.0, 0.0)));
        match segment_intersection(c(0.0, 0.0), c(1.0, 1.0), c(1.0, 1.0), c(2.0, 0.0)) {
            SegmentIntersection::Point(p) => assert_eq!(p, c(1.0, 1.0)),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn t_junction() {
        // q's endpoint lies in the interior of p.
        assert!(segments_intersect(c(0.0, 0.0), c(2.0, 0.0), c(1.0, 0.0), c(1.0, 5.0)));
    }

    #[test]
    fn collinear_overlap() {
        match segment_intersection(c(0.0, 0.0), c(3.0, 0.0), c(1.0, 0.0), c(5.0, 0.0)) {
            SegmentIntersection::Overlap(a, b) => {
                assert_eq!(a, c(1.0, 0.0));
                assert_eq!(b, c(3.0, 0.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn collinear_disjoint() {
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)),
            SegmentIntersection::None
        );
        assert!(!segments_intersect(c(0.0, 0.0), c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)));
    }

    #[test]
    fn collinear_touching_single_point() {
        match segment_intersection(c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(2.0, 0.0)) {
            SegmentIntersection::Point(p) => assert_eq!(p, c(1.0, 0.0)),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn parallel_non_collinear() {
        assert_eq!(
            segment_intersection(c(0.0, 0.0), c(2.0, 0.0), c(0.0, 1.0), c(2.0, 1.0)),
            SegmentIntersection::None
        );
    }

    #[test]
    fn degenerate_point_segment() {
        match segment_intersection(c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0), c(2.0, 0.0)) {
            SegmentIntersection::Point(p) => assert_eq!(p, c(1.0, 0.0)),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn closest_point_cases() {
        let a = c(0.0, 0.0);
        let b = c(10.0, 0.0);
        assert_eq!(closest_point_on_segment(a, b, c(5.0, 3.0)), c(5.0, 0.0));
        assert_eq!(closest_point_on_segment(a, b, c(-5.0, 3.0)), a);
        assert_eq!(closest_point_on_segment(a, b, c(15.0, 3.0)), b);
    }

    #[test]
    fn point_segment_distance_perpendicular() {
        assert_eq!(point_segment_distance(c(0.0, 0.0), c(10.0, 0.0), c(5.0, 4.0)), 4.0);
    }

    #[test]
    fn segment_segment_distance_parallel() {
        let d = segment_segment_distance(c(0.0, 0.0), c(10.0, 0.0), c(0.0, 3.0), c(10.0, 3.0));
        assert_eq!(d, 3.0);
    }

    #[test]
    fn segment_segment_distance_crossing_is_zero() {
        let d = segment_segment_distance(c(0.0, 0.0), c(2.0, 2.0), c(0.0, 2.0), c(2.0, 0.0));
        assert_eq!(d, 0.0);
    }
}
