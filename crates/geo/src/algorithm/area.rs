//! Measures: area, length, centroid.

use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

/// Area of a geometry. Points and lines have zero area; collections sum
/// their members.
pub fn area(g: &Geometry) -> f64 {
    match g {
        Geometry::Polygon(p) => p.area(),
        Geometry::MultiPolygon(ps) => ps.iter().map(Polygon::area).sum(),
        Geometry::GeometryCollection(gs) => gs.iter().map(area).sum(),
        _ => 0.0,
    }
}

/// Length of a geometry: perimeter for polygons, path length for lines.
pub fn length(g: &Geometry) -> f64 {
    match g {
        Geometry::LineString(l) => l.length(),
        Geometry::MultiLineString(ls) => ls.iter().map(LineString::length).sum(),
        Geometry::Polygon(p) => {
            p.exterior.length() + p.interiors.iter().map(LineString::length).sum::<f64>()
        }
        Geometry::MultiPolygon(ps) => ps
            .iter()
            .map(|p| p.exterior.length() + p.interiors.iter().map(LineString::length).sum::<f64>())
            .sum(),
        Geometry::GeometryCollection(gs) => gs.iter().map(length).sum(),
        _ => 0.0,
    }
}

fn ring_centroid_weighted(ring: &LineString) -> (Coord, f64) {
    // Signed-area-weighted centroid of a closed ring.
    let mut a2 = 0.0;
    let mut cx = 0.0;
    let mut cy = 0.0;
    for (p, q) in ring.segments() {
        let w = p.cross(&q);
        a2 += w;
        cx += (p.x + q.x) * w;
        cy += (p.y + q.y) * w;
    }
    if a2.abs() < 1e-300 {
        // Degenerate ring: fall back to vertex average.
        let n = ring.len().max(1) as f64;
        let sum = ring.coords().iter().fold(Coord::default(), |acc, &c| acc + c);
        return (sum * (1.0 / n), 0.0);
    }
    (Coord::new(cx / (3.0 * a2), cy / (3.0 * a2)), a2 * 0.5)
}

fn polygon_centroid_weighted(p: &Polygon) -> (Coord, f64) {
    let (c_ext, a_ext) = ring_centroid_weighted(&p.exterior);
    let mut num = c_ext * a_ext.abs();
    let mut den = a_ext.abs();
    for hole in &p.interiors {
        let (c_h, a_h) = ring_centroid_weighted(hole);
        num = num + c_h * (-a_h.abs());
        den -= a_h.abs();
    }
    if den.abs() < 1e-300 {
        (c_ext, 0.0)
    } else {
        (num * (1.0 / den), den)
    }
}

/// Centroid of a geometry.
///
/// Uses area weighting for polygons, length weighting for lines and
/// plain averaging for points; mixed collections use the highest
/// dimension present, matching JTS behaviour.
pub fn centroid(g: &Geometry) -> Option<Coord> {
    if g.is_empty() {
        return None;
    }
    match g {
        Geometry::Point(p) => Some(p.0),
        Geometry::MultiPoint(ps) => {
            let n = ps.len() as f64;
            let sum = ps.iter().fold(Coord::default(), |acc, p| acc + p.0);
            Some(sum * (1.0 / n))
        }
        Geometry::LineString(l) => line_centroid(std::slice::from_ref(l)),
        Geometry::MultiLineString(ls) => line_centroid(ls),
        Geometry::Polygon(p) => Some(polygon_centroid_weighted(p).0),
        Geometry::MultiPolygon(ps) => {
            let mut num = Coord::default();
            let mut den = 0.0;
            for p in ps {
                let (c, a) = polygon_centroid_weighted(p);
                num = num + c * a;
                den += a;
            }
            if den.abs() < 1e-300 {
                line_centroid(&ps.iter().map(|p| p.exterior.clone()).collect::<Vec<_>>())
            } else {
                Some(num * (1.0 / den))
            }
        }
        Geometry::GeometryCollection(gs) => {
            let dim = g.dimension()?;
            let parts: Vec<&Geometry> =
                gs.iter().filter(|m| m.dimension() == Some(dim)).collect();
            let mut num = Coord::default();
            let mut den = 0.0;
            for part in parts {
                if let Some(c) = centroid(part) {
                    let w = match dim {
                        2 => area(part),
                        1 => length(part),
                        _ => 1.0,
                    };
                    num = num + c * w;
                    den += w;
                }
            }
            if den.abs() < 1e-300 {
                None
            } else {
                Some(num * (1.0 / den))
            }
        }
    }
}

fn line_centroid(lines: &[LineString]) -> Option<Coord> {
    let mut num = Coord::default();
    let mut den = 0.0;
    for l in lines {
        for (a, b) in l.segments() {
            let len = a.distance(&b);
            num = num + a.lerp(&b, 0.5) * len;
            den += len;
        }
    }
    if den < 1e-300 {
        lines.first().and_then(|l| l.coords().first().copied())
    } else {
        Some(num * (1.0 / den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse;

    fn g(s: &str) -> Geometry {
        parse(s).unwrap()
    }

    #[test]
    fn square_area() {
        assert_eq!(area(&g("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")), 16.0);
    }

    #[test]
    fn area_independent_of_orientation() {
        assert_eq!(area(&g("POLYGON ((0 0, 0 4, 4 4, 4 0, 0 0))")), 16.0);
    }

    #[test]
    fn donut_area() {
        let d = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 8 2, 8 8, 2 8, 2 2))");
        assert_eq!(area(&d), 100.0 - 36.0);
    }

    #[test]
    fn multipolygon_area_sums() {
        let mp = g("MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((2 0, 4 0, 4 2, 2 2, 2 0)))");
        assert_eq!(area(&mp), 1.0 + 4.0);
    }

    #[test]
    fn point_and_line_have_zero_area() {
        assert_eq!(area(&g("POINT (1 1)")), 0.0);
        assert_eq!(area(&g("LINESTRING (0 0, 5 0)")), 0.0);
    }

    #[test]
    fn length_of_line_and_polygon() {
        assert_eq!(length(&g("LINESTRING (0 0, 3 0, 3 4)")), 7.0);
        assert_eq!(length(&g("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")), 16.0);
    }

    #[test]
    fn centroid_of_square() {
        let c = centroid(&g("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")).unwrap();
        assert!((c.x - 2.0).abs() < 1e-12 && (c.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_l_shape() {
        // L-shape: 2x1 horizontal plus 1x1 on top of the left cell.
        let l = g("POLYGON ((0 0, 2 0, 2 1, 1 1, 1 2, 0 2, 0 0))");
        let c = centroid(&l).unwrap();
        // Area 3; centroid = ((1*0.5 + 1*1.5 + 1*0.5)/3, (0.5+0.5+1.5)/3)
        assert!((c.x - (2.5 / 3.0)).abs() < 1e-12);
        assert!((c.y - (2.5 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn centroid_with_hole_shifts_correctly() {
        // Square with a hole in the right half pushes the centroid left.
        let d = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (6 4, 8 4, 8 6, 6 6, 6 4))");
        let c = centroid(&d).unwrap();
        assert!(c.x < 5.0);
        assert!((c.y - 5.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_line_is_length_weighted() {
        let c = centroid(&g("LINESTRING (0 0, 10 0, 10 1)")).unwrap();
        // Segments: len 10 mid (5, 0); len 1 mid (10, 0.5).
        assert!((c.x - (50.0 + 10.0) / 11.0).abs() < 1e-12);
        assert!((c.y - 0.5 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_multipoint() {
        let c = centroid(&g("MULTIPOINT ((0 0), (2 0), (1 3))")).unwrap();
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_collection_uses_max_dimension() {
        let gc = g("GEOMETRYCOLLECTION (POINT (100 100), POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0)))");
        let c = centroid(&gc).unwrap();
        // The point must be ignored: polygons dominate.
        assert!((c.x - 1.0).abs() < 1e-12 && (c.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_of_empty_is_none() {
        assert!(centroid(&Geometry::MultiPolygon(vec![])).is_none());
    }
}
