//! Minimum distance between geometries.

use crate::algorithm::predicates::{intersects, polygon_covers_coord};
use crate::algorithm::segment::{point_segment_distance, segment_segment_distance};
use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

fn point_line_distance(p: Coord, l: &LineString) -> f64 {
    if l.len() == 1 {
        return p.distance(&l.coords()[0]);
    }
    l.segments()
        .map(|(a, b)| point_segment_distance(a, b, p))
        .fold(f64::INFINITY, f64::min)
}

fn point_polygon_distance(p: Coord, poly: &Polygon) -> f64 {
    if polygon_covers_coord(poly, p) {
        return 0.0;
    }
    std::iter::once(&poly.exterior)
        .chain(poly.interiors.iter())
        .map(|r| point_line_distance(p, r))
        .fold(f64::INFINITY, f64::min)
}

fn line_line_distance(a: &LineString, b: &LineString) -> f64 {
    let mut best = f64::INFINITY;
    for (p1, p2) in a.segments() {
        for (q1, q2) in b.segments() {
            best = best.min(segment_segment_distance(p1, p2, q1, q2));
            if best == 0.0 {
                return 0.0;
            }
        }
    }
    if best.is_infinite() {
        // One of the lines has a single vertex.
        match (a.coords().first(), b.coords().first()) {
            (Some(&pa), _) if b.len() >= 2 => best = point_line_distance(pa, b),
            (_, Some(&pb)) if a.len() >= 2 => best = point_line_distance(pb, a),
            (Some(&pa), Some(&pb)) => best = pa.distance(&pb),
            _ => {}
        }
    }
    best
}

fn line_polygon_distance(l: &LineString, p: &Polygon) -> f64 {
    if l.coords().iter().any(|&c| polygon_covers_coord(p, c)) {
        return 0.0;
    }
    std::iter::once(&p.exterior)
        .chain(p.interiors.iter())
        .map(|r| line_line_distance(l, r))
        .fold(f64::INFINITY, f64::min)
}

fn polygon_polygon_distance(a: &Polygon, b: &Polygon) -> f64 {
    if a.exterior.coords().first().is_some_and(|&c| polygon_covers_coord(b, c))
        || b.exterior.coords().first().is_some_and(|&c| polygon_covers_coord(a, c))
    {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    for ra in std::iter::once(&a.exterior).chain(a.interiors.iter()) {
        for rb in std::iter::once(&b.exterior).chain(b.interiors.iter()) {
            best = best.min(line_line_distance(ra, rb));
            if best == 0.0 {
                return 0.0;
            }
        }
    }
    best
}

/// Minimum Euclidean distance between two geometries (0 when they
/// intersect). Units are those of the coordinates.
pub fn distance(a: &Geometry, b: &Geometry) -> f64 {
    if a.is_empty() || b.is_empty() {
        return f64::INFINITY;
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.0.distance(&q.0),
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => point_line_distance(p.0, l),
        (Point(p), Polygon(poly)) | (Polygon(poly), Point(p)) => point_polygon_distance(p.0, poly),
        (LineString(l1), LineString(l2)) => line_line_distance(l1, l2),
        (LineString(l), Polygon(p)) | (Polygon(p), LineString(l)) => line_polygon_distance(l, p),
        (Polygon(p1), Polygon(p2)) => polygon_polygon_distance(p1, p2),
        (MultiPoint(_) | MultiLineString(_) | MultiPolygon(_) | GeometryCollection(_), _) => a
            .primitives()
            .iter()
            .map(|pa| distance(pa, b))
            .fold(f64::INFINITY, f64::min),
        (_, MultiPoint(_) | MultiLineString(_) | MultiPolygon(_) | GeometryCollection(_)) => b
            .primitives()
            .iter()
            .map(|pb| distance(a, pb))
            .fold(f64::INFINITY, f64::min),
    }
}

/// True when the geometries lie within `d` of each other.
///
/// This is the primitive behind stSPARQL's `strdf:distance(g1, g2) < d`
/// filters; it short-circuits on envelope distance before doing exact work.
pub fn within_distance(a: &Geometry, b: &Geometry, d: f64) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a.envelope().distance(&b.envelope()) > d {
        return false;
    }
    if intersects(a, b) {
        return true;
    }
    distance(a, b) <= d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse;

    fn g(s: &str) -> Geometry {
        parse(s).unwrap()
    }

    #[test]
    fn point_point() {
        assert_eq!(distance(&g("POINT (0 0)"), &g("POINT (3 4)")), 5.0);
    }

    #[test]
    fn point_line() {
        assert_eq!(distance(&g("POINT (5 3)"), &g("LINESTRING (0 0, 10 0)")), 3.0);
        assert_eq!(distance(&g("POINT (-3 4)"), &g("LINESTRING (0 0, 10 0)")), 5.0);
    }

    #[test]
    fn point_polygon_inside_is_zero() {
        let poly = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        assert_eq!(distance(&g("POINT (5 5)"), &poly), 0.0);
        assert_eq!(distance(&g("POINT (15 5)"), &poly), 5.0);
    }

    #[test]
    fn point_in_hole_distance_to_hole_boundary() {
        let d = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
        assert_eq!(distance(&g("POINT (5 5)"), &d), 1.0);
    }

    #[test]
    fn line_line_parallel() {
        assert_eq!(
            distance(&g("LINESTRING (0 0, 10 0)"), &g("LINESTRING (0 2, 10 2)")),
            2.0
        );
    }

    #[test]
    fn line_crossing_polygon_is_zero() {
        let poly = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        assert_eq!(distance(&g("LINESTRING (-5 5, 15 5)"), &poly), 0.0);
    }

    #[test]
    fn polygon_polygon_gap() {
        let a = g("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = g("POLYGON ((3 0, 4 0, 4 1, 3 1, 3 0))");
        assert_eq!(distance(&a, &b), 2.0);
    }

    #[test]
    fn nested_polygons_zero() {
        let a = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = g("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
        assert_eq!(distance(&a, &b), 0.0);
    }

    #[test]
    fn multipoint_min_distance() {
        let mp = g("MULTIPOINT ((100 100), (0 3))");
        assert_eq!(distance(&mp, &g("POINT (0 0)")), 3.0);
    }

    #[test]
    fn within_distance_filters() {
        let a = g("POINT (0 0)");
        let b = g("POINT (3 4)");
        assert!(within_distance(&a, &b, 5.0));
        assert!(within_distance(&a, &b, 5.5));
        assert!(!within_distance(&a, &b, 4.9));
    }

    #[test]
    fn within_distance_envelope_shortcut() {
        let a = g("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = g("POINT (100 100)");
        assert!(!within_distance(&a, &b, 10.0));
    }

    #[test]
    fn empty_geometry_distance_infinite() {
        assert!(distance(&Geometry::MultiPoint(vec![]), &g("POINT (0 0)")).is_infinite());
    }
}
