//! Geometric algorithms: predicates, measures, overlay, hulls, buffers.

pub mod area;
pub mod buffer;
pub mod clip;
pub mod convex_hull;
pub mod distance;
pub mod predicates;
pub mod segment;
pub mod simplify;
