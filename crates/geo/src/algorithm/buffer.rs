//! Positive buffering (dilation) of geometries.
//!
//! Buffers are approximated with sampled circular arcs (default 32
//! segments per full circle, the same default as PostGIS' `quad_segs=8`).
//! For lines and polygons the buffer is computed as the convex-hull union
//! of per-segment capsules; this is exact for convex inputs and a
//! conservative (slightly larger near reflex vertices) approximation for
//! concave inputs — adequate for the `strdf:buffer` use in stSPARQL
//! proximity queries, and documented as such.

use crate::algorithm::convex_hull::convex_hull_coords;
use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

/// Number of segments used to approximate a full circle.
pub const DEFAULT_CIRCLE_SEGMENTS: usize = 32;

/// Sample `n` points on the circle of radius `r` around `center`.
fn circle_points(center: Coord, r: f64, n: usize) -> Vec<Coord> {
    (0..n)
        .map(|i| {
            let theta = (i as f64) * std::f64::consts::TAU / (n as f64);
            Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect()
}

/// Buffer a single point: a sampled circle polygon.
pub fn buffer_point(center: Coord, radius: f64, segments: usize) -> Polygon {
    let mut pts = circle_points(center, radius, segments.max(8));
    let first = pts[0];
    pts.push(first);
    let mut p = Polygon::new(LineString(pts), vec![]);
    p.normalize();
    p
}

/// Buffer a segment: a capsule (rectangle plus end caps), returned as the
/// convex hull of sampled end circles.
fn buffer_segment(a: Coord, b: Coord, radius: f64, segments: usize) -> Polygon {
    let mut pts = circle_points(a, radius, segments.max(8));
    pts.extend(circle_points(b, radius, segments.max(8)));
    match convex_hull_coords(&pts) {
        Some(Geometry::Polygon(p)) => p,
        _ => buffer_point(a, radius, segments),
    }
}

/// Buffer a geometry by `radius` (must be positive), producing a
/// `MultiPolygon` of per-piece buffers.
///
/// The result is a *covering* of the true buffer: every point within
/// `radius` of the input is inside some result polygon. Pieces may
/// overlap; callers that need a measure should use
/// [`crate::algorithm::clip::overlay`] to dissolve, or use
/// [`crate::algorithm::distance::within_distance`] for predicates, which
/// is exact.
pub fn buffer(g: &Geometry, radius: f64, segments: usize) -> Geometry {
    assert!(radius > 0.0, "buffer radius must be positive");
    let mut parts: Vec<Polygon> = Vec::new();
    collect_buffers(g, radius, segments, &mut parts);
    Geometry::MultiPolygon(parts)
}

fn collect_buffers(g: &Geometry, radius: f64, segments: usize, out: &mut Vec<Polygon>) {
    match g {
        Geometry::Point(p) => out.push(buffer_point(p.0, radius, segments)),
        Geometry::LineString(l) => {
            if l.len() == 1 {
                out.push(buffer_point(l.coords()[0], radius, segments));
            }
            for (a, b) in l.segments() {
                out.push(buffer_segment(a, b, radius, segments));
            }
        }
        Geometry::Polygon(p) => {
            // The polygon interior plus a band around its boundary.
            out.push(p.clone());
            for (a, b) in p.exterior.segments() {
                out.push(buffer_segment(a, b, radius, segments));
            }
        }
        Geometry::MultiPoint(ps) => {
            for p in ps {
                out.push(buffer_point(p.0, radius, segments));
            }
        }
        Geometry::MultiLineString(ls) => {
            for l in ls {
                collect_buffers(&Geometry::LineString(l.clone()), radius, segments, out);
            }
        }
        Geometry::MultiPolygon(ps) => {
            for p in ps {
                collect_buffers(&Geometry::Polygon(p.clone()), radius, segments, out);
            }
        }
        Geometry::GeometryCollection(gs) => {
            for g in gs {
                collect_buffers(g, radius, segments, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::predicates::intersects;
    use crate::geometry::Point;
    use crate::wkt::parse;

    #[test]
    fn point_buffer_area_approximates_circle() {
        let p = buffer_point(Coord::new(0.0, 0.0), 1.0, 64);
        let area = p.area();
        assert!((area - std::f64::consts::PI).abs() < 0.01, "area {area}");
    }

    #[test]
    fn point_buffer_contains_center_and_excludes_far() {
        let b = buffer(&Geometry::Point(Point::new(5.0, 5.0)), 2.0, 32);
        assert!(intersects(&b, &parse("POINT (5 5)").unwrap()));
        assert!(intersects(&b, &parse("POINT (6.9 5)").unwrap()));
        assert!(!intersects(&b, &parse("POINT (7.5 5)").unwrap()));
    }

    #[test]
    fn segment_buffer_covers_band() {
        let l = parse("LINESTRING (0 0, 10 0)").unwrap();
        let b = buffer(&l, 1.0, 32);
        assert!(intersects(&b, &parse("POINT (5 0.9)").unwrap()));
        assert!(intersects(&b, &parse("POINT (-0.9 0)").unwrap())); // end cap
        assert!(!intersects(&b, &parse("POINT (5 1.5)").unwrap()));
    }

    #[test]
    fn polygon_buffer_covers_expansion() {
        let p = parse("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))").unwrap();
        let b = buffer(&p, 1.0, 32);
        assert!(intersects(&b, &parse("POINT (2 2)").unwrap())); // interior
        assert!(intersects(&b, &parse("POINT (4.9 2)").unwrap())); // band
        assert!(!intersects(&b, &parse("POINT (6 2)").unwrap()));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_radius_panics() {
        buffer(&parse("POINT (0 0)").unwrap(), -1.0, 16);
    }

    #[test]
    fn multigeometry_buffer_piece_count() {
        let mp = parse("MULTIPOINT ((0 0), (10 10))").unwrap();
        let b = buffer(&mp, 1.0, 16);
        match b {
            Geometry::MultiPolygon(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected multipolygon, got {other:?}"),
        }
    }
}
