//! Line simplification (Ramer–Douglas–Peucker).
//!
//! Used by the rapid-mapping service to thin coastlines and road networks
//! before rendering map layers.

use crate::algorithm::segment::point_segment_distance;
use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

/// Simplify a coordinate sequence with tolerance `eps`, always keeping the
/// first and last coordinates.
pub fn simplify_coords(coords: &[Coord], eps: f64) -> Vec<Coord> {
    if coords.len() <= 2 {
        return coords.to_vec();
    }
    let mut keep = vec![false; coords.len()];
    keep[0] = true;
    keep[coords.len() - 1] = true;
    let mut stack = vec![(0usize, coords.len() - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if hi <= lo + 1 {
            continue;
        }
        let (a, b) = (coords[lo], coords[hi]);
        let mut max_d = -1.0;
        let mut max_i = lo;
        for (i, &c) in coords.iter().enumerate().take(hi).skip(lo + 1) {
            let d = point_segment_distance(a, b, c);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > eps {
            keep[max_i] = true;
            stack.push((lo, max_i));
            stack.push((max_i, hi));
        }
    }
    coords
        .iter()
        .zip(&keep)
        .filter_map(|(&c, &k)| k.then_some(c))
        .collect()
}

fn simplify_ring(ring: &LineString, eps: f64) -> LineString {
    let out = simplify_coords(ring.coords(), eps);
    if out.len() < 4 {
        // Refuse to collapse a ring below validity; keep the original.
        ring.clone()
    } else {
        LineString(out)
    }
}

/// Simplify any geometry. Points are unchanged; rings never collapse
/// below 4 coordinates (the original ring is kept instead).
pub fn simplify(g: &Geometry, eps: f64) -> Geometry {
    match g {
        Geometry::Point(_) | Geometry::MultiPoint(_) => g.clone(),
        Geometry::LineString(l) => Geometry::LineString(LineString(simplify_coords(l.coords(), eps))),
        Geometry::MultiLineString(ls) => Geometry::MultiLineString(
            ls.iter()
                .map(|l| LineString(simplify_coords(l.coords(), eps)))
                .collect(),
        ),
        Geometry::Polygon(p) => Geometry::Polygon(Polygon::new(
            simplify_ring(&p.exterior, eps),
            p.interiors.iter().map(|h| simplify_ring(h, eps)).collect(),
        )),
        Geometry::MultiPolygon(ps) => Geometry::MultiPolygon(
            ps.iter()
                .map(|p| {
                    Polygon::new(
                        simplify_ring(&p.exterior, eps),
                        p.interiors.iter().map(|h| simplify_ring(h, eps)).collect(),
                    )
                })
                .collect(),
        ),
        Geometry::GeometryCollection(gs) => {
            Geometry::GeometryCollection(gs.iter().map(|g| simplify(g, eps)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn removes_collinear_points() {
        let pts = [c(0.0, 0.0), c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        assert_eq!(simplify_coords(&pts, 0.01), vec![c(0.0, 0.0), c(3.0, 0.0)]);
    }

    #[test]
    fn keeps_significant_deviation() {
        let pts = [c(0.0, 0.0), c(1.0, 2.0), c(2.0, 0.0)];
        assert_eq!(simplify_coords(&pts, 0.5).len(), 3);
        assert_eq!(simplify_coords(&pts, 3.0).len(), 2);
    }

    #[test]
    fn endpoints_always_kept() {
        let pts = [c(0.0, 0.0), c(0.5, 0.01), c(1.0, 0.0)];
        let out = simplify_coords(&pts, 1.0);
        assert_eq!(out.first(), Some(&c(0.0, 0.0)));
        assert_eq!(out.last(), Some(&c(1.0, 0.0)));
    }

    #[test]
    fn ring_never_collapses() {
        let g = parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        let s = simplify(&g, 100.0);
        assert!(s.validate().is_ok());
        assert_eq!(s.num_coords(), 5);
    }

    #[test]
    fn zigzag_line_thinning() {
        // A line wiggling ±0.1 around y = 0.
        let pts: Vec<Coord> = (0..100)
            .map(|i| c(i as f64, if i % 2 == 0 { 0.1 } else { -0.1 }))
            .collect();
        let out = simplify_coords(&pts, 0.3);
        assert!(out.len() < 5, "expected strong thinning, got {}", out.len());
    }

    #[test]
    fn short_inputs_unchanged() {
        let pts = [c(0.0, 0.0), c(1.0, 1.0)];
        assert_eq!(simplify_coords(&pts, 10.0), pts.to_vec());
        assert!(simplify_coords(&[], 1.0).is_empty());
    }
}
