//! Topological predicates: intersects, contains, within, disjoint, touches.
//!
//! The predicates follow OGC Simple Features semantics for the geometry
//! combinations that arise in an Earth-Observation workload (point/line/
//! polygon and their multi variants). `touches` is implemented for the
//! area/area and point/area cases used by stSPARQL.

use crate::algorithm::segment::{segments_intersect, SegmentIntersection};
use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Polygon};

/// Where a point lies relative to a ring or polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    /// Strictly inside.
    Inside,
    /// On the boundary.
    Boundary,
    /// Strictly outside.
    Outside,
}

/// Locate `p` relative to a closed ring using a crossing-number walk that
/// reports boundary exactly.
pub fn locate_point_in_ring(p: Coord, ring: &LineString) -> PointLocation {
    let coords = ring.coords();
    if coords.len() < 4 {
        return PointLocation::Outside;
    }
    let mut inside = false;
    for w in coords.windows(2) {
        let (a, b) = (w[0], w[1]);
        // Boundary check first: point on segment.
        if crate::algorithm::segment::point_segment_distance(a, b, p) < 1e-12 {
            return PointLocation::Boundary;
        }
        // Ray casting to the right.
        if (a.y > p.y) != (b.y > p.y) {
            let x_int = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_int {
                inside = !inside;
            }
        }
    }
    if inside {
        PointLocation::Inside
    } else {
        PointLocation::Outside
    }
}

/// Locate `p` relative to a polygon (exterior minus holes).
pub fn locate_point_in_polygon(p: Coord, poly: &Polygon) -> PointLocation {
    match locate_point_in_ring(p, &poly.exterior) {
        PointLocation::Outside => PointLocation::Outside,
        PointLocation::Boundary => PointLocation::Boundary,
        PointLocation::Inside => {
            for hole in &poly.interiors {
                match locate_point_in_ring(p, hole) {
                    PointLocation::Inside => return PointLocation::Outside,
                    PointLocation::Boundary => return PointLocation::Boundary,
                    PointLocation::Outside => {}
                }
            }
            PointLocation::Inside
        }
    }
}

/// True when point `p` is inside or on the boundary of `poly`.
pub fn polygon_covers_coord(poly: &Polygon, p: Coord) -> bool {
    locate_point_in_polygon(p, poly) != PointLocation::Outside
}

fn ring_segments(r: &LineString) -> impl Iterator<Item = (Coord, Coord)> + '_ {
    r.segments()
}

fn polygon_rings(p: &Polygon) -> impl Iterator<Item = &LineString> {
    std::iter::once(&p.exterior).chain(p.interiors.iter())
}

fn line_line_intersects(a: &LineString, b: &LineString) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    for (p1, p2) in a.segments() {
        for (q1, q2) in b.segments() {
            if segments_intersect(p1, p2, q1, q2) {
                return true;
            }
        }
    }
    false
}

fn line_polygon_intersects(l: &LineString, p: &Polygon) -> bool {
    if !l.envelope().intersects(&p.envelope()) {
        return false;
    }
    if l.coords().iter().any(|&c| polygon_covers_coord(p, c)) {
        return true;
    }
    polygon_rings(p).any(|ring| line_line_intersects(l, ring))
}

fn polygon_polygon_intersects(a: &Polygon, b: &Polygon) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    // Any boundary crossing, or one fully inside the other.
    for ra in polygon_rings(a) {
        for rb in polygon_rings(b) {
            if line_line_intersects(ra, rb) {
                return true;
            }
        }
    }
    a.exterior.coords().first().is_some_and(|&c| polygon_covers_coord(b, c))
        || b.exterior.coords().first().is_some_and(|&c| polygon_covers_coord(a, c))
}

/// OGC `Intersects`: the geometries share at least one point.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    if a.is_empty() || b.is_empty() || !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.0.distance(&q.0) < 1e-12,
        (Point(p), LineString(l)) | (LineString(l), Point(p)) => ring_segments(l)
            .any(|(s, e)| crate::algorithm::segment::point_segment_distance(s, e, p.0) < 1e-12),
        (Point(p), Polygon(poly)) | (Polygon(poly), Point(p)) => polygon_covers_coord(poly, p.0),
        (LineString(l1), LineString(l2)) => line_line_intersects(l1, l2),
        (LineString(l), Polygon(p)) | (Polygon(p), LineString(l)) => line_polygon_intersects(l, p),
        (Polygon(p1), Polygon(p2)) => polygon_polygon_intersects(p1, p2),
        // Multi/collection cases: decompose the multi side.
        (MultiPoint(_) | MultiLineString(_) | MultiPolygon(_) | GeometryCollection(_), _) => {
            a.primitives().iter().any(|pa| intersects(pa, b))
        }
        (_, MultiPoint(_) | MultiLineString(_) | MultiPolygon(_) | GeometryCollection(_)) => {
            b.primitives().iter().any(|pb| intersects(a, pb))
        }
    }
}

/// OGC `Disjoint`: the geometries share no point.
pub fn disjoint(a: &Geometry, b: &Geometry) -> bool {
    !intersects(a, b)
}

fn polygon_contains_line(p: &Polygon, l: &LineString) -> bool {
    // Every vertex covered and no crossing through the exterior.
    if !l.coords().iter().all(|&c| polygon_covers_coord(p, c)) {
        return false;
    }
    // Check midpoints of segments too (a segment may leave and re-enter
    // through the boundary even with both endpoints covered).
    l.segments().all(|(a, b)| polygon_covers_coord(p, a.lerp(&b, 0.5)))
}

fn polygon_contains_polygon(outer: &Polygon, inner: &Polygon) -> bool {
    if !outer.envelope().contains_envelope(&inner.envelope()) {
        return false;
    }
    // All inner exterior vertices covered by outer...
    if !inner.exterior.coords().iter().all(|&c| polygon_covers_coord(outer, c)) {
        return false;
    }
    // ...and the inner boundary does not cross the outer boundary properly.
    for ro in polygon_rings(outer) {
        for (q1, q2) in ro.segments() {
            for (p1, p2) in inner.exterior.segments() {
                if let SegmentIntersection::Point(x) =
                    crate::algorithm::segment::segment_intersection(p1, p2, q1, q2)
                {
                    // A touch at a shared vertex is fine; a proper crossing
                    // is not. Test a point slightly past the intersection.
                    let dir = p2 - p1;
                    let probe = x + dir * 1e-9;
                    let probe2 = x + dir * -1e-9;
                    if !polygon_covers_coord(outer, probe) && !polygon_covers_coord(outer, probe2) {
                        return false;
                    }
                }
            }
        }
    }
    // Inner must not sit inside one of outer's holes.
    if let Some(&c) = inner.exterior.coords().first() {
        if locate_point_in_polygon(c, outer) == PointLocation::Outside {
            return false;
        }
    }
    true
}

/// OGC `Contains` (approximated as *covers* for boundary cases): every
/// point of `b` lies in `a`.
pub fn contains(a: &Geometry, b: &Geometry) -> bool {
    if a.is_empty() || b.is_empty() || !a.envelope().contains_envelope(&b.envelope()) {
        return false;
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Point(q)) => p.0.distance(&q.0) < 1e-12,
        (LineString(l), Point(p)) => ring_segments(l)
            .any(|(s, e)| crate::algorithm::segment::point_segment_distance(s, e, p.0) < 1e-12),
        (Polygon(poly), Point(p)) => polygon_covers_coord(poly, p.0),
        (Polygon(poly), LineString(l)) => polygon_contains_line(poly, l),
        (Polygon(p1), Polygon(p2)) => polygon_contains_polygon(p1, p2),
        (LineString(l1), LineString(l2)) => {
            // Coarse containment: every vertex and midpoint of l2 on l1.
            l2.coords().iter().all(|&c| {
                ring_segments(l1)
                    .any(|(s, e)| crate::algorithm::segment::point_segment_distance(s, e, c) < 1e-12)
            })
        }
        (_, MultiPoint(_) | MultiLineString(_) | MultiPolygon(_) | GeometryCollection(_)) => {
            b.primitives().iter().all(|pb| contains(a, pb))
        }
        (MultiPolygon(_) | GeometryCollection(_), _) => {
            a.primitives().iter().any(|pa| contains(pa, b))
        }
        _ => false,
    }
}

/// OGC `Within`: inverse of [`contains`].
pub fn within(a: &Geometry, b: &Geometry) -> bool {
    contains(b, a)
}

/// OGC `Touches`: the geometries intersect but their interiors do not.
///
/// Implemented for the point/area, line/area and area/area cases.
pub fn touches(a: &Geometry, b: &Geometry) -> bool {
    if !intersects(a, b) {
        return false;
    }
    use Geometry::*;
    match (a, b) {
        (Point(p), Polygon(poly)) | (Polygon(poly), Point(p)) => {
            locate_point_in_polygon(p.0, poly) == PointLocation::Boundary
        }
        (Polygon(p1), Polygon(p2)) => !interiors_overlap(p1, p2),
        (LineString(l), Polygon(p)) | (Polygon(p), LineString(l)) => {
            // Touches when no line point is strictly inside.
            !l.coords().iter().any(|&c| locate_point_in_polygon(c, p) == PointLocation::Inside)
                && !l.segments().any(|(s, e)| {
                    locate_point_in_polygon(s.lerp(&e, 0.5), p) == PointLocation::Inside
                })
        }
        _ => false,
    }
}

fn interiors_overlap(a: &Polygon, b: &Polygon) -> bool {
    // Interiors overlap if a boundary crossing is proper, or a vertex of
    // one is strictly inside the other.
    if a.exterior.coords().iter().any(|&c| locate_point_in_polygon(c, b) == PointLocation::Inside) {
        return true;
    }
    if b.exterior.coords().iter().any(|&c| locate_point_in_polygon(c, a) == PointLocation::Inside) {
        return true;
    }
    // Check midpoints of intersected boundary pieces.
    for (p1, p2) in a.exterior.segments() {
        for (q1, q2) in b.exterior.segments() {
            if let SegmentIntersection::Point(x) =
                crate::algorithm::segment::segment_intersection(p1, p2, q1, q2)
            {
                let dir = p2 - p1;
                for probe in [x + dir * 1e-9, x - dir * 1e-9] {
                    if locate_point_in_polygon(probe, b) == PointLocation::Inside
                        && locate_point_in_polygon(probe, a) != PointLocation::Outside
                    {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// OGC `Crosses` for the line/area case: the line has points both inside
/// and outside the polygon.
pub fn crosses_line_polygon(l: &LineString, p: &Polygon) -> bool {
    let mut has_inside = false;
    let mut has_outside = false;
    let mut probe = |c: Coord| match locate_point_in_polygon(c, p) {
        PointLocation::Inside => has_inside = true,
        PointLocation::Outside => has_outside = true,
        PointLocation::Boundary => {}
    };
    for &c in l.coords() {
        probe(c);
    }
    for (a, b) in l.segments() {
        probe(a.lerp(&b, 0.5));
    }
    has_inside && has_outside
}

/// OGC `Equals` (coordinate-wise, tolerant): same type, same coordinates.
pub fn equals(a: &Geometry, b: &Geometry) -> bool {
    fn coords_eq(a: &Geometry, b: &Geometry) -> bool {
        let mut va = Vec::new();
        let mut vb = Vec::new();
        a.for_each_coord(&mut |c| va.push(c));
        b.for_each_coord(&mut |c| vb.push(c));
        va.len() == vb.len()
            && va.iter().zip(&vb).all(|(x, y)| x.distance(y) < 1e-12)
    }
    a.type_name() == b.type_name() && coords_eq(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse;

    fn g(s: &str) -> Geometry {
        parse(s).unwrap()
    }

    #[test]
    fn point_in_ring_locations() {
        let sq = LineString::from(vec![(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0), (0.0, 0.0)]);
        assert_eq!(locate_point_in_ring(Coord::new(2.0, 2.0), &sq), PointLocation::Inside);
        assert_eq!(locate_point_in_ring(Coord::new(4.0, 2.0), &sq), PointLocation::Boundary);
        assert_eq!(locate_point_in_ring(Coord::new(0.0, 0.0), &sq), PointLocation::Boundary);
        assert_eq!(locate_point_in_ring(Coord::new(5.0, 2.0), &sq), PointLocation::Outside);
        assert_eq!(locate_point_in_ring(Coord::new(-1.0, 2.0), &sq), PointLocation::Outside);
    }

    #[test]
    fn point_in_concave_ring() {
        // A "U" shape: the notch is outside.
        let u = LineString::from(vec![
            (0.0, 0.0),
            (6.0, 0.0),
            (6.0, 4.0),
            (4.0, 4.0),
            (4.0, 2.0),
            (2.0, 2.0),
            (2.0, 4.0),
            (0.0, 4.0),
            (0.0, 0.0),
        ]);
        assert_eq!(locate_point_in_ring(Coord::new(3.0, 3.0), &u), PointLocation::Outside);
        assert_eq!(locate_point_in_ring(Coord::new(1.0, 1.0), &u), PointLocation::Inside);
        assert_eq!(locate_point_in_ring(Coord::new(5.0, 3.0), &u), PointLocation::Inside);
    }

    #[test]
    fn point_in_polygon_with_hole() {
        let p = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
        let Geometry::Polygon(poly) = &p else { panic!() };
        assert_eq!(locate_point_in_polygon(Coord::new(5.0, 5.0), poly), PointLocation::Outside);
        assert_eq!(locate_point_in_polygon(Coord::new(1.0, 1.0), poly), PointLocation::Inside);
        assert_eq!(locate_point_in_polygon(Coord::new(3.0, 5.0), poly), PointLocation::Boundary);
    }

    #[test]
    fn intersects_point_polygon() {
        let poly = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        assert!(intersects(&poly, &g("POINT (5 5)")));
        assert!(intersects(&poly, &g("POINT (10 5)"))); // boundary
        assert!(!intersects(&poly, &g("POINT (11 5)")));
    }

    #[test]
    fn intersects_line_line() {
        assert!(intersects(&g("LINESTRING (0 0, 10 10)"), &g("LINESTRING (0 10, 10 0)")));
        assert!(!intersects(&g("LINESTRING (0 0, 1 1)"), &g("LINESTRING (2 2, 3 3)")));
    }

    #[test]
    fn intersects_line_polygon_line_fully_inside() {
        let poly = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        assert!(intersects(&poly, &g("LINESTRING (2 2, 3 3)")));
    }

    #[test]
    fn intersects_polygon_polygon_overlap_and_containment() {
        let a = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = g("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
        let c = g("POLYGON ((2 2, 3 2, 3 3, 2 3, 2 2))");
        let d = g("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))");
        assert!(intersects(&a, &b));
        assert!(intersects(&a, &c)); // containment, no boundary crossing
        assert!(!intersects(&a, &d));
    }

    #[test]
    fn contains_cases() {
        let a = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        assert!(contains(&a, &g("POINT (5 5)")));
        assert!(contains(&a, &g("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))")));
        assert!(!contains(&a, &g("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))")));
        assert!(contains(&a, &g("LINESTRING (1 1, 9 9)")));
        assert!(!contains(&a, &g("LINESTRING (1 1, 11 11)")));
    }

    #[test]
    fn contains_rejects_polygon_in_hole() {
        let donut = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (3 3, 7 3, 7 7, 3 7, 3 3))");
        let inner = g("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
        assert!(!contains(&donut, &inner));
    }

    #[test]
    fn within_is_inverse_of_contains() {
        let a = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = g("POINT (1 1)");
        assert!(within(&b, &a));
        assert!(!within(&a, &b));
    }

    #[test]
    fn touches_adjacent_squares() {
        let a = g("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = g("POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))");
        assert!(touches(&a, &b));
        let c = g("POLYGON ((0.5 0, 1.5 0, 1.5 1, 0.5 1, 0.5 0))");
        assert!(!touches(&a, &c)); // overlapping interiors
    }

    #[test]
    fn touches_point_on_boundary() {
        let a = g("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        assert!(touches(&a, &g("POINT (1 0.5)")));
        assert!(!touches(&a, &g("POINT (0.5 0.5)")));
    }

    #[test]
    fn crosses_line_through_polygon() {
        let Geometry::Polygon(p) = g("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))") else { panic!() };
        let Geometry::LineString(l) = g("LINESTRING (-5 5, 15 5)") else { panic!() };
        assert!(crosses_line_polygon(&l, &p));
        let Geometry::LineString(l2) = g("LINESTRING (1 1, 2 2)") else { panic!() };
        assert!(!crosses_line_polygon(&l2, &p));
    }

    #[test]
    fn equals_tolerant() {
        let a = g("POINT (1 2)");
        let b = g("POINT (1.0000000000001 2)");
        assert!(equals(&a, &b));
        assert!(!equals(&a, &g("POINT (1.1 2)")));
        assert!(!equals(&a, &g("LINESTRING (1 2, 3 4)")));
    }

    #[test]
    fn multi_geometry_decomposition() {
        let mp = g("MULTIPOINT ((1 1), (20 20))");
        let poly = g("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))");
        assert!(intersects(&mp, &poly));
        assert!(!contains(&poly, &mp)); // (20,20) outside
    }
}
