//! Polygon overlay: intersection, union, difference.
//!
//! Two engines are provided:
//!
//! * [`clip_to_envelope`] — Sutherland–Hodgman clipping against an
//!   axis-aligned rectangle. Robust for arbitrary simple polygons; used
//!   for cropping products to an area of interest.
//! * [`overlay`] — Greiner–Hormann overlay of two simple polygons
//!   (exterior rings only). Degenerate configurations (shared vertices or
//!   collinear overlapping edges) are resolved by retrying with a tiny
//!   deterministic perturbation of the subject polygon, which is the
//!   standard engineering workaround for this algorithm family; the
//!   introduced area error is bounded by `perimeter × 1e-9 × scale`.
//!
//! Holes in *inputs* are ignored by `overlay` (the shapes produced by
//! the fire-monitoring chain are hole-free); results can carry holes —
//! a union can trap a pocket, and a contained difference punches one.

use crate::algorithm::predicates::{locate_point_in_ring, PointLocation};
use crate::coord::{Coord, Envelope};
use crate::geometry::{LineString, Polygon};

/// Overlay operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverlayOp {
    /// Points in both polygons.
    Intersection,
    /// Points in either polygon.
    Union,
    /// Points in the subject but not the clip.
    Difference,
}

/// Clip a polygon to an axis-aligned envelope (Sutherland–Hodgman).
///
/// Returns `None` when nothing remains. Holes are clipped as well.
pub fn clip_to_envelope(poly: &Polygon, env: &Envelope) -> Option<Polygon> {
    let exterior = clip_ring_to_envelope(&poly.exterior, env)?;
    let interiors = poly
        .interiors
        .iter()
        .filter_map(|h| clip_ring_to_envelope(h, env))
        .collect();
    Some(Polygon::new(exterior, interiors))
}

fn clip_ring_to_envelope(ring: &LineString, env: &Envelope) -> Option<LineString> {
    // Work on the open ring.
    let mut pts: Vec<Coord> = ring.coords().to_vec();
    if pts.len() > 1 && pts.first() == pts.last() {
        pts.pop();
    }
    if pts.is_empty() {
        return None;
    }

    // Each closure keeps points on the inside of one rectangle edge.
    type EdgeFn = (fn(Coord, &Envelope) -> bool, fn(Coord, Coord, &Envelope) -> Coord);
    let edges: [EdgeFn; 4] = [
        (
            |c, e| c.x >= e.min.x,
            |a, b, e| {
                let t = (e.min.x - a.x) / (b.x - a.x);
                Coord::new(e.min.x, a.y + t * (b.y - a.y))
            },
        ),
        (
            |c, e| c.x <= e.max.x,
            |a, b, e| {
                let t = (e.max.x - a.x) / (b.x - a.x);
                Coord::new(e.max.x, a.y + t * (b.y - a.y))
            },
        ),
        (
            |c, e| c.y >= e.min.y,
            |a, b, e| {
                let t = (e.min.y - a.y) / (b.y - a.y);
                Coord::new(a.x + t * (b.x - a.x), e.min.y)
            },
        ),
        (
            |c, e| c.y <= e.max.y,
            |a, b, e| {
                let t = (e.max.y - a.y) / (b.y - a.y);
                Coord::new(a.x + t * (b.x - a.x), e.max.y)
            },
        ),
    ];

    for (inside, intersect) in edges {
        if pts.is_empty() {
            return None;
        }
        let mut out = Vec::with_capacity(pts.len() + 4);
        for i in 0..pts.len() {
            let cur = pts[i];
            let prev = pts[(i + pts.len() - 1) % pts.len()];
            let cur_in = inside(cur, env);
            let prev_in = inside(prev, env);
            if cur_in {
                if !prev_in {
                    out.push(intersect(prev, cur, env));
                }
                out.push(cur);
            } else if prev_in {
                out.push(intersect(prev, cur, env));
            }
        }
        pts = out;
    }
    if pts.len() < 3 {
        return None;
    }
    let first = pts[0];
    pts.push(first);
    Some(LineString(pts))
}

// ---------------------------------------------------------------------
// Greiner–Hormann overlay
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct GhVertex {
    coord: Coord,
    next: usize,
    prev: usize,
    /// Index of the twin vertex in the other polygon's list (intersections).
    neighbor: Option<usize>,
    /// True when the traversal *enters* the other polygon here.
    entry: bool,
    visited: bool,
    is_intersection: bool,
    /// Position along the source edge, used for insertion ordering.
    alpha: f64,
}

struct GhList {
    verts: Vec<GhVertex>,
    head: usize,
}

impl GhList {
    fn from_ring(coords: &[Coord]) -> GhList {
        let mut pts: Vec<Coord> = coords.to_vec();
        if pts.len() > 1 && pts.first() == pts.last() {
            pts.pop();
        }
        let n = pts.len();
        let verts = pts
            .into_iter()
            .enumerate()
            .map(|(i, coord)| GhVertex {
                coord,
                next: (i + 1) % n,
                prev: (i + n - 1) % n,
                neighbor: None,
                entry: false,
                visited: false,
                is_intersection: false,
                alpha: 0.0,
            })
            .collect();
        GhList { verts, head: 0 }
    }

    /// Insert an intersection vertex after `after`, ordered by alpha among
    /// consecutive intersection vertices on the same edge.
    fn insert_intersection(&mut self, edge_start: usize, coord: Coord, alpha: f64) -> usize {
        let mut pos = edge_start;
        // Advance past intersection vertices with smaller alpha.
        loop {
            let next = self.verts[pos].next;
            if self.verts[next].is_intersection && self.verts[next].alpha < alpha {
                pos = next;
            } else {
                break;
            }
        }
        let next = self.verts[pos].next;
        let idx = self.verts.len();
        self.verts.push(GhVertex {
            coord,
            next,
            prev: pos,
            neighbor: None,
            entry: false,
            visited: false,
            is_intersection: true,
            alpha,
        });
        self.verts[pos].next = idx;
        self.verts[next].prev = idx;
        idx
    }

    /// Original (non-intersection) vertex indices in ring order.
    fn original_edges(&self) -> Vec<usize> {
        let mut out = Vec::new();
        let mut i = self.head;
        loop {
            if !self.verts[i].is_intersection {
                out.push(i);
            }
            i = self.verts[i].next;
            if i == self.head {
                break;
            }
        }
        out
    }

    /// Next original vertex after `i` (skipping intersections).
    fn next_original(&self, i: usize) -> usize {
        let mut j = self.verts[i].next;
        while self.verts[j].is_intersection {
            j = self.verts[j].next;
        }
        j
    }
}

/// Outcome of an overlay between two simple polygons.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlayResult {
    /// The resulting polygons (possibly empty).
    pub polygons: Vec<Polygon>,
}

impl OverlayResult {
    /// Sum of result areas.
    pub fn area(&self) -> f64 {
        self.polygons.iter().map(Polygon::area).sum()
    }

    /// True when nothing remains.
    pub fn is_empty(&self) -> bool {
        self.polygons.is_empty()
    }
}

fn ring_coords_open(p: &Polygon) -> Vec<Coord> {
    let mut pts = p.exterior.coords().to_vec();
    if pts.len() > 1 && pts.first() == pts.last() {
        pts.pop();
    }
    pts
}

fn perturb(p: &Polygon, magnitude: f64, salt: u64) -> Polygon {
    // Deterministic pseudo-random nudge per vertex, derived from indices.
    let mut out = p.clone();
    let mut state = salt.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Map to [-1, 1].
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    for c in &mut out.exterior.0 {
        c.x += next() * magnitude;
        c.y += next() * magnitude;
    }
    // Keep ring closed.
    if out.exterior.0.len() > 1 {
        let first = out.exterior.0[0];
        if let Some(last) = out.exterior.0.last_mut() {
            *last = first;
        }
    }
    out
}

/// Compute the overlay of two simple polygons (exterior rings).
///
/// See the module docs for the degeneracy strategy.
pub fn overlay(subject: &Polygon, clip: &Polygon, op: OverlayOp) -> OverlayResult {
    let scale = {
        let e = subject.envelope().union(&clip.envelope());
        e.width().max(e.height()).max(1.0)
    };
    for attempt in 0..4 {
        let subj = if attempt == 0 {
            subject.clone()
        } else {
            perturb(subject, scale * 1e-9 * 10f64.powi(attempt), attempt as u64)
        };
        match try_overlay(&subj, clip, op) {
            Ok(result) => return result,
            Err(Degenerate) => continue,
        }
    }
    // Last resort: envelope-based approximation keeps callers total.
    fallback_overlay(subject, clip, op)
}

struct Degenerate;

#[allow(clippy::result_unit_err)]
fn try_overlay(subject: &Polygon, clip: &Polygon, op: OverlayOp) -> Result<OverlayResult, Degenerate> {
    let subj_pts = ring_coords_open(subject);
    let clip_pts = ring_coords_open(clip);
    if subj_pts.len() < 3 || clip_pts.len() < 3 {
        return Ok(OverlayResult { polygons: vec![] });
    }

    let mut ls = GhList::from_ring(&subj_pts);
    let mut lc = GhList::from_ring(&clip_pts);

    // Phase 1: find and insert intersections.
    let mut found_any = false;
    let s_orig = ls.original_edges();
    let c_orig = lc.original_edges();
    for &si in &s_orig {
        let s1 = ls.verts[si].coord;
        let s2 = ls.verts[ls.next_original(si)].coord;
        for &ci in &c_orig {
            let c1 = lc.verts[ci].coord;
            let c2 = lc.verts[lc.next_original(ci)].coord;
            let r = s2 - s1;
            let s = c2 - c1;
            let denom = r.cross(&s);
            if denom.abs() < 1e-18 {
                // Parallel edges: degenerate if they overlap collinearly.
                let qp = c1 - s1;
                if qp.cross(&r).abs() < 1e-9 * (1.0 + r.norm() * qp.norm()) {
                    let rr = r.dot(&r);
                    if rr > 0.0 {
                        let t0 = (qp.dot(&r) / rr).clamp(-1.0, 2.0);
                        let t1 = ((c2 - s1).dot(&r) / rr).clamp(-1.0, 2.0);
                        let (lo, hi) = if t0 < t1 { (t0, t1) } else { (t1, t0) };
                        if hi > 1e-9 && lo < 1.0 - 1e-9 {
                            return Err(Degenerate);
                        }
                    }
                }
                continue;
            }
            let qp = c1 - s1;
            let t = qp.cross(&s) / denom;
            let u = qp.cross(&r) / denom;
            const E: f64 = 1e-12;
            if t > E && t < 1.0 - E && u > E && u < 1.0 - E {
                let x = s1 + r * t;
                let a = ls.insert_intersection(si, x, t);
                let b = lc.insert_intersection(ci, x, u);
                ls.verts[a].neighbor = Some(b);
                lc.verts[b].neighbor = Some(a);
                found_any = true;
            } else if (t > -E && t < E)
                || (t > 1.0 - E && t < 1.0 + E)
                || (u > -E && u < E)
                || (u > 1.0 - E && u < 1.0 + E)
            {
                // Intersection at a vertex: degenerate for GH.
                if t > -E && t < 1.0 + E && u > -E && u < 1.0 + E {
                    return Err(Degenerate);
                }
            }
        }
    }

    if !found_any {
        return Ok(no_crossing_result(subject, clip, op));
    }

    // Phase 2: mark entry/exit.
    let subj_start_inside =
        locate_point_in_ring(ls.verts[ls.head].coord, &clip.exterior) == PointLocation::Inside;
    let clip_start_inside =
        locate_point_in_ring(lc.verts[lc.head].coord, &subject.exterior) == PointLocation::Inside;
    if locate_point_in_ring(ls.verts[ls.head].coord, &clip.exterior) == PointLocation::Boundary
        || locate_point_in_ring(lc.verts[lc.head].coord, &subject.exterior)
            == PointLocation::Boundary
    {
        return Err(Degenerate);
    }

    let (invert_subj, invert_clip) = match op {
        OverlayOp::Intersection => (false, false),
        OverlayOp::Union => (true, true),
        OverlayOp::Difference => (true, false),
    };

    mark_entries(&mut ls, !subj_start_inside, invert_subj);
    mark_entries(&mut lc, !clip_start_inside, invert_clip);

    // Phase 3: trace result rings. A traced ring nested inside another
    // traced ring is a hole (unions of overlapping polygons can trap
    // pockets); top-level rings are result exteriors. Orientation is not
    // a reliable signal here — difference components legitimately trace
    // with mixed windings — so containment decides.
    let mut traced: Vec<(LineString, f64)> = Vec::new();
    // Trace from each unvisited intersection in the subject list.
    while let Some(start) = ls.verts.iter().position(|v| v.is_intersection && !v.visited) {
        let mut ring: Vec<Coord> = Vec::new();
        let mut on_subject = true;
        let mut cur = start;
        let cap = (ls.verts.len() + lc.verts.len()) * 2 + 8;
        let mut steps = 0usize;
        loop {
            steps += 1;
            if steps > cap {
                return Err(Degenerate); // tracing ran away: treat as degenerate
            }
            {
                let list = if on_subject { &mut ls } else { &mut lc };
                list.verts[cur].visited = true;
                if let Some(nb) = list.verts[cur].neighbor {
                    let other = if on_subject { &mut lc } else { &mut ls };
                    other.verts[nb].visited = true;
                }
            }
            let list = if on_subject { &ls } else { &lc };
            let v = &list.verts[cur];
            ring.push(v.coord);
            let forward = v.entry;
            // Walk to the next intersection in the chosen direction,
            // collecting original vertices along the way.
            let mut walker = cur;
            loop {
                walker = if forward { list.verts[walker].next } else { list.verts[walker].prev };
                let w = &list.verts[walker];
                if w.is_intersection {
                    break;
                }
                ring.push(w.coord);
            }
            // Switch to the twin vertex on the other list. Every
            // intersection vertex is built with a neighbor; a missing
            // one means the ring cannot be continued.
            let Some(twin) = list.verts[walker].neighbor else {
                break;
            };
            on_subject = !on_subject;
            cur = twin;
            // Closed when we return to the starting intersection (on either list).
            let back_at_start = {
                let here = if on_subject { &ls } else { &lc };
                here.verts[cur].coord.distance(&ls.verts[start].coord) < 1e-12
            };
            if back_at_start {
                break;
            }
        }
        if ring.len() >= 3 {
            let first = ring[0];
            ring.push(first);
            let line = LineString(ring);
            let signed2 = line.signed_area2();
            if signed2.abs() > 2e-18 {
                traced.push((line, signed2));
            }
        }
    }

    // Sort by |area| descending so owners are assigned before their
    // holes (nesting depth is at most 1 for simple-polygon overlays).
    traced.sort_by(|a, b| {
        b.1.abs().partial_cmp(&a.1.abs()).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut polygons: Vec<Polygon> = Vec::with_capacity(traced.len());
    'rings: for (ring, _) in traced {
        // A ring whose vertices sit (strictly or on the boundary) inside
        // an already-placed larger exterior is that exterior's hole.
        // Majority vote over the vertices absorbs crossing-point touches.
        for owner in polygons.iter_mut() {
            let n = (ring.len() - 1).max(1);
            let inside = ring
                .coords()
                .iter()
                .take(n)
                .filter(|&&c| {
                    locate_point_in_ring(c, &owner.exterior) != PointLocation::Outside
                })
                .count();
            if inside * 2 > n {
                owner.interiors.push(ring);
                continue 'rings;
            }
        }
        polygons.push(Polygon::new(ring, vec![]));
    }
    for p in &mut polygons {
        p.normalize();
    }
    Ok(OverlayResult { polygons })
}

fn mark_entries(list: &mut GhList, mut entering: bool, invert: bool) {
    if invert {
        entering = !entering;
    }
    let mut i = list.head;
    loop {
        if list.verts[i].is_intersection {
            list.verts[i].entry = entering;
            entering = !entering;
        }
        i = list.verts[i].next;
        if i == list.head {
            break;
        }
    }
}

fn polygon_inside(inner: &Polygon, outer: &Polygon) -> bool {
    inner
        .exterior
        .coords()
        .iter()
        .all(|&c| locate_point_in_ring(c, &outer.exterior) != PointLocation::Outside)
}

fn no_crossing_result(subject: &Polygon, clip: &Polygon, op: OverlayOp) -> OverlayResult {
    let s_in_c = polygon_inside(subject, clip);
    let c_in_s = polygon_inside(clip, subject);
    let polys = match op {
        OverlayOp::Intersection => {
            if s_in_c {
                vec![subject.clone()]
            } else if c_in_s {
                vec![clip.clone()]
            } else {
                vec![]
            }
        }
        OverlayOp::Union => {
            if s_in_c {
                vec![clip.clone()]
            } else if c_in_s {
                vec![subject.clone()]
            } else {
                vec![subject.clone(), clip.clone()]
            }
        }
        OverlayOp::Difference => {
            if s_in_c {
                vec![]
            } else if c_in_s {
                // Subject minus a fully interior clip: punch a hole.
                let mut hole = clip.exterior.clone();
                if hole.is_ccw() {
                    hole.reverse();
                }
                let mut poly = subject.clone();
                poly.interiors.push(hole);
                vec![poly]
            } else {
                vec![subject.clone()]
            }
        }
    };
    OverlayResult { polygons: polys }
}

fn fallback_overlay(subject: &Polygon, clip: &Polygon, op: OverlayOp) -> OverlayResult {
    // Containment-based approximation used only if all perturbation
    // attempts hit degeneracies (extremely rare in practice).
    no_crossing_result(subject, clip, op)
}

/// Area of the intersection of two polygons.
pub fn intersection_area(a: &Polygon, b: &Polygon) -> f64 {
    if !a.envelope().intersects(&b.envelope()) {
        return 0.0;
    }
    overlay(a, b, OverlayOp::Intersection).area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt::parse;
    use crate::geometry::Geometry;

    fn poly(s: &str) -> Polygon {
        match parse(s).unwrap() {
            Geometry::Polygon(p) => p,
            _ => panic!("expected polygon"),
        }
    }

    #[test]
    fn clip_square_to_envelope() {
        let p = poly("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let env = Envelope::new(Coord::new(5.0, 5.0), Coord::new(15.0, 15.0));
        let clipped = clip_to_envelope(&p, &env).unwrap();
        assert!((clipped.area() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn clip_fully_inside_unchanged_area() {
        let p = poly("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))");
        let env = Envelope::new(Coord::new(0.0, 0.0), Coord::new(10.0, 10.0));
        let clipped = clip_to_envelope(&p, &env).unwrap();
        assert!((clipped.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn clip_fully_outside_is_none() {
        let p = poly("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))");
        let env = Envelope::new(Coord::new(0.0, 0.0), Coord::new(10.0, 10.0));
        assert!(clip_to_envelope(&p, &env).is_none());
    }

    #[test]
    fn clip_triangle_corner() {
        let p = poly("POLYGON ((0 0, 10 0, 0 10, 0 0))");
        let env = Envelope::new(Coord::new(0.0, 0.0), Coord::new(5.0, 5.0));
        let clipped = clip_to_envelope(&p, &env).unwrap();
        // Triangle area 50; the clip keeps the 5x5 square minus the corner
        // triangle above the hypotenuse: area 25 - 12.5 + 10 = 22.5? Compute
        // directly: region {x>=0,y>=0,x<=5,y<=5,x+y<=10} = whole 5x5 square.
        assert!((clipped.area() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn overlay_intersection_of_offset_squares() {
        let a = poly("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = poly("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
        let r = overlay(&a, &b, OverlayOp::Intersection);
        assert_eq!(r.polygons.len(), 1);
        assert!((r.area() - 25.0).abs() < 1e-6, "area was {}", r.area());
    }

    #[test]
    fn overlay_union_of_offset_squares() {
        let a = poly("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = poly("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
        let r = overlay(&a, &b, OverlayOp::Union);
        assert!((r.area() - 175.0).abs() < 1e-6, "area was {}", r.area());
    }

    #[test]
    fn overlay_difference_of_offset_squares() {
        let a = poly("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = poly("POLYGON ((5 5, 15 5, 15 15, 5 15, 5 5))");
        let r = overlay(&a, &b, OverlayOp::Difference);
        assert!((r.area() - 75.0).abs() < 1e-6, "area was {}", r.area());
    }

    #[test]
    fn overlay_disjoint() {
        let a = poly("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = poly("POLYGON ((5 5, 6 5, 6 6, 5 6, 5 5))");
        assert!(overlay(&a, &b, OverlayOp::Intersection).is_empty());
        assert!((overlay(&a, &b, OverlayOp::Union).area() - 2.0).abs() < 1e-9);
        assert!((overlay(&a, &b, OverlayOp::Difference).area() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlay_contained() {
        let outer = poly("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let inner = poly("POLYGON ((4 4, 6 4, 6 6, 4 6, 4 4))");
        assert!((overlay(&outer, &inner, OverlayOp::Intersection).area() - 4.0).abs() < 1e-9);
        assert!((overlay(&outer, &inner, OverlayOp::Union).area() - 100.0).abs() < 1e-9);
        let diff = overlay(&outer, &inner, OverlayOp::Difference);
        assert!((diff.area() - 96.0).abs() < 1e-9);
        assert_eq!(diff.polygons[0].interiors.len(), 1);
    }

    #[test]
    fn overlay_degenerate_shared_edge_resolved_by_perturbation() {
        // Adjacent squares sharing a full edge — classic GH degeneracy.
        let a = poly("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = poly("POLYGON ((1 0, 2 0, 2 1, 1 1, 1 0))");
        let r = overlay(&a, &b, OverlayOp::Intersection);
        assert!(r.area() < 1e-6, "shared edge should have ~zero area, got {}", r.area());
        let u = overlay(&a, &b, OverlayOp::Union);
        assert!((u.area() - 2.0).abs() < 1e-5, "union area was {}", u.area());
    }

    #[test]
    fn overlay_degenerate_shared_vertex() {
        let a = poly("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = poly("POLYGON ((1 1, 2 1, 2 2, 1 2, 1 1))");
        let r = overlay(&a, &b, OverlayOp::Intersection);
        assert!(r.area() < 1e-6);
    }

    #[test]
    fn overlay_cross_shape() {
        // Horizontal bar × vertical bar = centre square; union = plus shape.
        let h = poly("POLYGON ((0 4, 10 4, 10 6, 0 6, 0 4))");
        let v = poly("POLYGON ((4 0, 6 0, 6 10, 4 10, 4 0))");
        let i = overlay(&h, &v, OverlayOp::Intersection);
        assert!((i.area() - 4.0).abs() < 1e-6, "area was {}", i.area());
        let u = overlay(&h, &v, OverlayOp::Union);
        assert!((u.area() - 36.0).abs() < 1e-6, "area was {}", u.area());
        let d = overlay(&h, &v, OverlayOp::Difference);
        assert!((d.area() - 16.0).abs() < 1e-6, "area was {}", d.area());
        assert_eq!(d.polygons.len(), 2);
    }

    #[test]
    fn overlay_triangle_square() {
        let sq = poly("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
        let tri = poly("POLYGON ((2 2, 8 2, 2 8, 2 2))");
        let i = overlay(&sq, &tri, OverlayOp::Intersection);
        // The hypotenuse (x + y = 10) misses the square, so the overlap is
        // the [2,4]x[2,4] corner: area 4.
        assert!((i.area() - 4.0).abs() < 1e-6, "area was {}", i.area());
        // A triangle whose hypotenuse does cut the square: legs from (2,2).
        let tri2 = poly("POLYGON ((2 2, 5 2, 2 5, 2 2))");
        let i2 = overlay(&sq, &tri2, OverlayOp::Intersection);
        // Region {x>=2, y>=2, x+y<=7, x<=4, y<=4}: the 2x2 square minus the
        // corner triangle beyond x+y=7 => 4 - 0.5 = 3.5.
        assert!((i2.area() - 3.5).abs() < 1e-6, "area was {}", i2.area());
    }

    #[test]
    fn intersection_area_shortcut() {
        let a = poly("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
        let b = poly("POLYGON ((10 10, 11 10, 11 11, 10 11, 10 10))");
        assert_eq!(intersection_area(&a, &b), 0.0);
    }

    #[test]
    fn overlay_union_traps_pocket_as_hole() {
        // Regression (found by proptest): a spiky polygon overlapping a
        // fan-shaped one traps a pocket; the union must represent it as
        // a hole, not double-count it as a standalone polygon, so that
        // |A ∪ B| = |A| + |B| − |A ∩ B|.
        let a = poly(
            "POLYGON ((19.034443746112704 -47.555106369795496, 8.461001241367963 -42.645689183162325,               3.5515840547347937 -31.771301136922965, 3.198030664141519 -47.20155297920222,               3.0515840547347928 -47.555106369795496, 3.198030664141519 -47.90865976038877,               3.5515840547347928 -48.055106369795496, 3.9051374453280663 -47.90865976038877,               19.034443746112704 -47.555106369795496))",
        );
        let b = poly(
            "POLYGON ((19.685527848766927 -45.410597109541676, 19.568550070326417 -45.08920330469841,               19.272351937600394 -44.91819323303557, 18.935527848766927 -44.97758440764946,               1.742337964493231 -39.06179520101273, 18.715681538373975 -45.58160718120451,               13.740684349616467 -54.84134268933137, 19.27235193760039 -45.90300098604778,               19.568550070326417 -45.731990914384944, 19.685527848766927 -45.410597109541676))",
        );
        let inter = overlay(&a, &b, OverlayOp::Intersection).area();
        let union = overlay(&a, &b, OverlayOp::Union);
        let expect = a.area() + b.area() - inter;
        assert!(
            (union.area() - expect).abs() < 1e-6 * expect,
            "union {} != {}",
            union.area(),
            expect
        );
        // The pocket survives as a hole on some result polygon.
        assert!(union.polygons.iter().any(|p| !p.interiors.is_empty()));
    }

    #[test]
    fn overlay_conserves_area() {
        // |A| = |A∩B| + |A\B| must hold (up to perturbation noise).
        let a = poly("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
        let b = poly("POLYGON ((3 -2, 12 3, 7 12, -1 7, 3 -2))");
        let inter = overlay(&a, &b, OverlayOp::Intersection).area();
        let diff = overlay(&a, &b, OverlayOp::Difference).area();
        assert!((inter + diff - 100.0).abs() < 1e-5, "got {} + {}", inter, diff);
    }
}
