//! Convex hull (Andrew's monotone chain).

use crate::coord::Coord;
use crate::geometry::{Geometry, LineString, Point, Polygon};

/// Convex hull of a set of coordinates.
///
/// Returns a CCW-closed ring with at least 4 coordinates, or fewer points
/// for degenerate inputs (empty → `None`, single point → `Point`,
/// collinear → `LineString`).
pub fn convex_hull_coords(coords: &[Coord]) -> Option<Geometry> {
    let mut pts: Vec<Coord> = coords.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.distance(b) < 1e-15);

    match pts.len() {
        0 => return None,
        1 => return Some(Geometry::Point(Point(pts[0]))),
        2 => return Some(Geometry::LineString(LineString(pts))),
        _ => {}
    }

    let cross = |o: Coord, a: Coord, b: Coord| (a - o).cross(&(b - o));

    let mut lower: Vec<Coord> = Vec::with_capacity(pts.len());
    for &p in &pts {
        while lower.len() >= 2 && cross(lower[lower.len() - 2], lower[lower.len() - 1], p) <= 0.0 {
            lower.pop();
        }
        lower.push(p);
    }
    let mut upper: Vec<Coord> = Vec::with_capacity(pts.len());
    for &p in pts.iter().rev() {
        while upper.len() >= 2 && cross(upper[upper.len() - 2], upper[upper.len() - 1], p) <= 0.0 {
            upper.pop();
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);

    if lower.len() < 3 {
        // All points collinear.
        let a = pts[0];
        let b = pts[pts.len() - 1];
        return Some(Geometry::LineString(LineString(vec![a, b])));
    }
    let first = lower[0];
    lower.push(first);
    Some(Geometry::Polygon(Polygon::new(LineString(lower), vec![])))
}

/// Convex hull of any geometry.
pub fn convex_hull(g: &Geometry) -> Option<Geometry> {
    let mut coords = Vec::with_capacity(g.num_coords());
    g.for_each_coord(&mut |c| coords.push(c));
    convex_hull_coords(&coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::area::area;
    use crate::wkt::parse;

    fn c(x: f64, y: f64) -> Coord {
        Coord::new(x, y)
    }

    #[test]
    fn hull_of_square_with_interior_point() {
        let pts = [c(0.0, 0.0), c(4.0, 0.0), c(4.0, 4.0), c(0.0, 4.0), c(2.0, 2.0)];
        let h = convex_hull_coords(&pts).unwrap();
        assert_eq!(area(&h), 16.0);
        assert_eq!(h.num_coords(), 5); // closed ring of 4 distinct
    }

    #[test]
    fn hull_is_ccw() {
        let pts = [c(0.0, 0.0), c(1.0, 0.0), c(1.0, 1.0), c(0.0, 1.0)];
        match convex_hull_coords(&pts).unwrap() {
            Geometry::Polygon(p) => assert!(p.exterior.is_ccw()),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn hull_degenerate_cases() {
        assert!(convex_hull_coords(&[]).is_none());
        assert!(matches!(convex_hull_coords(&[c(1.0, 1.0)]), Some(Geometry::Point(_))));
        assert!(matches!(
            convex_hull_coords(&[c(0.0, 0.0), c(1.0, 1.0), c(2.0, 2.0)]),
            Some(Geometry::LineString(_))
        ));
    }

    #[test]
    fn hull_duplicate_points() {
        let pts = [c(0.0, 0.0), c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.5, 1.0)];
        match convex_hull_coords(&pts).unwrap() {
            Geometry::Polygon(p) => assert!((p.area() - 0.5).abs() < 1e-12),
            other => panic!("expected polygon, got {other:?}"),
        }
    }

    #[test]
    fn hull_of_geometry() {
        let g = parse("MULTIPOINT ((0 0), (10 0), (10 10), (0 10), (5 5), (3 7))").unwrap();
        let h = convex_hull(&g).unwrap();
        assert_eq!(area(&h), 100.0);
    }

    #[test]
    fn hull_of_concave_polygon_is_convex() {
        let g = parse("POLYGON ((0 0, 6 0, 6 4, 4 4, 4 2, 2 2, 2 4, 0 4, 0 0))").unwrap();
        let h = convex_hull(&g).unwrap();
        assert_eq!(area(&h), 24.0); // 6 x 4 bounding hull
    }
}
