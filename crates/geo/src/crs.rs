//! Coordinate reference systems.
//!
//! TELEIOS products carry stRDF geometries in EPSG:4326 (WGS 84
//! longitude/latitude degrees); rendering and metric operations use
//! EPSG:3857 (spherical Web Mercator metres). This module implements the
//! forward/inverse Mercator projection, great-circle (haversine) distance,
//! and a local azimuthal-equidistant-style projection used to evaluate
//! metric distance filters (e.g. "within 2 km") against degree data.

use crate::coord::Coord;
use crate::error::GeoError;
use crate::geometry::Geometry;
use crate::Result;

/// Mean Earth radius in metres (IUGG).
pub const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// Web-Mercator sphere radius in metres (WGS 84 semi-major axis).
pub const MERCATOR_RADIUS_M: f64 = 6_378_137.0;

/// Latitude limit of the Web Mercator projection.
pub const MERCATOR_MAX_LAT: f64 = 85.051_128_779_806_59;

/// A supported coordinate reference system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Crs {
    /// WGS 84 longitude/latitude in degrees.
    Wgs84,
    /// Spherical Web Mercator (metres).
    WebMercator,
}

impl Crs {
    /// Resolve an EPSG code.
    pub fn from_epsg(code: u32) -> Result<Crs> {
        match code {
            4326 => Ok(Crs::Wgs84),
            3857 | 900913 => Ok(Crs::WebMercator),
            other => Err(GeoError::UnknownCrs(other)),
        }
    }

    /// The canonical EPSG code.
    pub fn epsg(&self) -> u32 {
        match self {
            Crs::Wgs84 => 4326,
            Crs::WebMercator => 3857,
        }
    }

    /// OGC CRS URI, as used in stRDF WKT literals.
    pub fn uri(&self) -> String {
        format!("http://www.opengis.net/def/crs/EPSG/0/{}", self.epsg())
    }
}

/// Project a WGS 84 lon/lat coordinate to Web Mercator metres.
pub fn wgs84_to_mercator(c: Coord) -> Result<Coord> {
    if c.y.abs() > MERCATOR_MAX_LAT {
        return Err(GeoError::ProjectionDomain(format!(
            "latitude {} outside Web Mercator domain (|lat| <= {MERCATOR_MAX_LAT})",
            c.y
        )));
    }
    let x = MERCATOR_RADIUS_M * c.x.to_radians();
    let y = MERCATOR_RADIUS_M * ((std::f64::consts::FRAC_PI_4 + c.y.to_radians() / 2.0).tan()).ln();
    Ok(Coord::new(x, y))
}

/// Inverse of [`wgs84_to_mercator`].
pub fn mercator_to_wgs84(c: Coord) -> Coord {
    let lon = (c.x / MERCATOR_RADIUS_M).to_degrees();
    let lat = (2.0 * (c.y / MERCATOR_RADIUS_M).exp().atan() - std::f64::consts::FRAC_PI_2).to_degrees();
    Coord::new(lon, lat)
}

/// Transform a geometry between CRSs.
pub fn transform(g: &Geometry, from: Crs, to: Crs) -> Result<Geometry> {
    if from == to {
        return Ok(g.clone());
    }
    // Validate the domain first so map_coords cannot observe NaNs.
    let mut domain_err: Option<GeoError> = None;
    g.for_each_coord(&mut |c| {
        if from == Crs::Wgs84 && to == Crs::WebMercator && c.y.abs() > MERCATOR_MAX_LAT {
            domain_err.get_or_insert(GeoError::ProjectionDomain(format!(
                "latitude {} outside Web Mercator domain",
                c.y
            )));
        }
    });
    if let Some(e) = domain_err {
        return Err(e);
    }
    Ok(match (from, to) {
        // The domain scan above rejected out-of-range latitudes, so
        // the projection cannot fail here; pass the coordinate through
        // unchanged rather than unwrap.
        (Crs::Wgs84, Crs::WebMercator) => g.map_coords(|c| {
            wgs84_to_mercator(c).unwrap_or(c)
        }),
        (Crs::WebMercator, Crs::Wgs84) => g.map_coords(mercator_to_wgs84),
        _ => unreachable!("identical CRSs handled above"),
    })
}

/// Great-circle distance in metres between two WGS 84 lon/lat coordinates.
pub fn haversine_m(a: Coord, b: Coord) -> f64 {
    let (lon1, lat1) = (a.x.to_radians(), a.y.to_radians());
    let (lon2, lat2) = (b.x.to_radians(), b.y.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// Convert a metric distance to the equivalent degree tolerance at a given
/// latitude (conservative: uses the larger of the lat/lon degree sizes).
///
/// Used by stSPARQL to evaluate "within d metres" filters on degree data
/// without projecting every geometry.
pub fn metres_to_degrees(metres: f64, at_latitude: f64) -> f64 {
    let lat_deg_m = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
    let lon_deg_m = lat_deg_m * at_latitude.to_radians().cos().max(1e-6);
    metres / lon_deg_m.min(lat_deg_m)
}

/// Approximate metric distance in metres between two WGS 84 geometries,
/// via a local equirectangular projection centred between them.
///
/// Exact for points (reduces to haversine up to the local-projection
/// error, < 0.1 % for distances under ~100 km); for extended geometries
/// the planar minimum distance of the projected shapes is returned.
pub fn geodesic_distance_m(a: &Geometry, b: &Geometry) -> f64 {
    let ea = a.envelope();
    let eb = b.envelope();
    if ea.is_empty() || eb.is_empty() {
        return f64::INFINITY;
    }
    let mid_lat = (ea.center().y + eb.center().y) / 2.0;
    let k_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
    let k_lon = k_lat * mid_lat.to_radians().cos();
    let project = |c: Coord| Coord::new(c.x * k_lon, c.y * k_lat);
    let pa = a.map_coords(project);
    let pb = b.map_coords(project);
    crate::algorithm::distance::distance(&pa, &pb)
}

/// Approximate area in square metres of a WGS 84 geometry, via a local
/// equirectangular projection centred on the geometry (good to ~0.1 %
/// for regional extents; not suitable for continental polygons).
pub fn geodesic_area_m2(g: &Geometry) -> f64 {
    let env = g.envelope();
    if env.is_empty() {
        return 0.0;
    }
    let mid_lat = env.center().y;
    let k_lat = EARTH_RADIUS_M * std::f64::consts::PI / 180.0;
    let k_lon = k_lat * mid_lat.to_radians().cos();
    let projected = g.map_coords(|c| Coord::new(c.x * k_lon, c.y * k_lat));
    crate::algorithm::area::area(&projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    #[test]
    fn epsg_roundtrip() {
        assert_eq!(Crs::from_epsg(4326).unwrap(), Crs::Wgs84);
        assert_eq!(Crs::from_epsg(3857).unwrap(), Crs::WebMercator);
        assert_eq!(Crs::from_epsg(900913).unwrap(), Crs::WebMercator);
        assert!(Crs::from_epsg(2100).is_err());
        assert_eq!(Crs::Wgs84.epsg(), 4326);
        assert!(Crs::WebMercator.uri().ends_with("/3857"));
    }

    #[test]
    fn mercator_origin() {
        let m = wgs84_to_mercator(Coord::new(0.0, 0.0)).unwrap();
        assert!(m.x.abs() < 1e-9 && m.y.abs() < 1e-9);
    }

    #[test]
    fn mercator_known_point() {
        // Athens: 23.7275 E, 37.9838 N.
        let m = wgs84_to_mercator(Coord::new(23.7275, 37.9838)).unwrap();
        assert!((m.x - 2_641_317.0).abs() < 1_000.0, "x = {}", m.x);
        assert!((m.y - 4_576_500.0).abs() < 5_000.0, "y = {}", m.y);
    }

    #[test]
    fn mercator_roundtrip() {
        let orig = Coord::new(23.7275, 37.9838);
        let back = mercator_to_wgs84(wgs84_to_mercator(orig).unwrap());
        assert!((back.x - orig.x).abs() < 1e-9);
        assert!((back.y - orig.y).abs() < 1e-9);
    }

    #[test]
    fn mercator_domain_error() {
        assert!(wgs84_to_mercator(Coord::new(0.0, 89.0)).is_err());
        let g = Geometry::Point(Point::new(0.0, 89.0));
        assert!(transform(&g, Crs::Wgs84, Crs::WebMercator).is_err());
    }

    #[test]
    fn transform_identity() {
        let g = Geometry::Point(Point::new(1.0, 2.0));
        assert_eq!(transform(&g, Crs::Wgs84, Crs::Wgs84).unwrap(), g);
    }

    #[test]
    fn haversine_athens_thessaloniki() {
        // Athens to Thessaloniki is roughly 300 km.
        let d = haversine_m(Coord::new(23.7275, 37.9838), Coord::new(22.9444, 40.6401));
        assert!((d - 301_000.0).abs() < 10_000.0, "d = {d}");
    }

    #[test]
    fn haversine_zero() {
        let c = Coord::new(10.0, 50.0);
        assert_eq!(haversine_m(c, c), 0.0);
    }

    #[test]
    fn haversine_equator_degree() {
        // One degree of longitude at the equator ≈ 111.2 km.
        let d = haversine_m(Coord::new(0.0, 0.0), Coord::new(1.0, 0.0));
        assert!((d - 111_195.0).abs() < 100.0, "d = {d}");
    }

    #[test]
    fn metres_to_degrees_reasonable() {
        // 111 km at the equator is about one degree.
        let deg = metres_to_degrees(111_195.0, 0.0);
        assert!((deg - 1.0).abs() < 0.01, "deg = {deg}");
        // At 60 N a degree of longitude is half as long, so the degree
        // tolerance for the same distance doubles.
        let deg60 = metres_to_degrees(111_195.0, 60.0);
        assert!((deg60 - 2.0).abs() < 0.05, "deg60 = {deg60}");
    }

    #[test]
    fn geodesic_distance_points_matches_haversine() {
        let a = Geometry::Point(Point::new(23.7275, 37.9838));
        let b = Geometry::Point(Point::new(23.8275, 37.9838));
        let d1 = geodesic_distance_m(&a, &b);
        let d2 = haversine_m(Coord::new(23.7275, 37.9838), Coord::new(23.8275, 37.9838));
        assert!((d1 - d2).abs() / d2 < 1e-3, "d1 = {d1}, d2 = {d2}");
    }

    #[test]
    fn geodesic_area_of_degree_cell() {
        // A 1°x1° cell at the equator is ~111.2 km squared ≈ 1.2366e10 m².
        let g = crate::wkt::parse("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))").unwrap();
        let a = geodesic_area_m2(&g);
        let expect = 111_195.0f64 * 111_195.0;
        assert!((a - expect).abs() / expect < 0.01, "a = {a}");
        // At 60°N longitude shrinks by cos(60°) = 0.5.
        let g60 = crate::wkt::parse("POLYGON ((0 59.5, 1 59.5, 1 60.5, 0 60.5, 0 59.5))").unwrap();
        let a60 = geodesic_area_m2(&g60);
        assert!((a60 / a - 0.5).abs() < 0.02, "ratio = {}", a60 / a);
    }

    #[test]
    fn geodesic_area_of_point_is_zero() {
        assert_eq!(geodesic_area_m2(&Geometry::Point(Point::new(1.0, 2.0))), 0.0);
    }

    #[test]
    fn geodesic_distance_intersecting_is_zero() {
        let a = crate::wkt::parse("POLYGON ((23 37, 24 37, 24 38, 23 38, 23 37))").unwrap();
        let b = Geometry::Point(Point::new(23.5, 37.5));
        assert_eq!(geodesic_distance_m(&a, &b), 0.0);
    }
}
