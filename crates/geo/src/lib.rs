#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-geo — OGC Simple Features geometry substrate
//!
//! From-scratch geometry engine used by every spatial component of the
//! TELEIOS Virtual Earth Observatory: the stRDF spatial literals, the
//! stSPARQL `strdf:*` extension functions, the hotspot shapefile
//! generation of the NOA fire-monitoring chain, and the rapid-mapping
//! service.
//!
//! The crate provides:
//!
//! * a [`Geometry`] model covering the seven OGC Simple Features types,
//! * a Well-Known Text reader/writer ([`wkt`]),
//! * topological predicates, overlay (intersection / union / difference),
//!   distance, area, centroid, convex hull, simplification and buffering
//!   ([`algorithm`]),
//! * an STR-packed, dynamically insertable R-tree ([`index::rtree`]),
//! * coordinate reference system support for EPSG:4326 and EPSG:3857
//!   ([`crs`]).
//!
//! ## Example
//!
//! ```
//! use teleios_geo::wkt;
//! use teleios_geo::algorithm::predicates::intersects;
//!
//! let a = wkt::parse("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))").unwrap();
//! let b = wkt::parse("POINT (5 5)").unwrap();
//! assert!(intersects(&a, &b));
//! ```

pub mod algorithm;
pub mod coord;
pub mod crs;
pub mod error;
pub mod geometry;
pub mod index;
pub mod wkt;

pub use coord::{Coord, Envelope};
pub use error::GeoError;
pub use geometry::{Geometry, LineString, Point, Polygon};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, GeoError>;
