//! Well-Known Text (OGC 06-103r4) reader and writer.
//!
//! Supports the seven Simple Features types, the `EMPTY` keyword, and the
//! stRDF convention of a leading CRS URI prefix
//! (`<http://www.opengis.net/def/crs/EPSG/0/4326> POINT(...)`), which
//! [`parse_with_crs`] understands.

use crate::coord::Coord;
use crate::error::GeoError;
use crate::geometry::{Geometry, LineString, Point, Polygon};
use crate::Result;

/// Parse a WKT string into a [`Geometry`].
pub fn parse(input: &str) -> Result<Geometry> {
    let mut p = Parser::new(input);
    let g = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing input after geometry"));
    }
    Ok(g)
}

/// Parse stRDF-style WKT that may carry a leading CRS URI.
///
/// Returns the geometry and the EPSG code (defaulting to 4326 when no URI
/// is present, matching the stRDF specification).
pub fn parse_with_crs(input: &str) -> Result<(Geometry, u32)> {
    let trimmed = input.trim_start();
    if let Some(rest) = trimmed.strip_prefix('<') {
        let end = rest
            .find('>')
            .ok_or_else(|| GeoError::WktParse { position: 0, message: "unterminated CRS URI".into() })?;
        let uri = &rest[..end];
        let srid = uri
            .rsplit('/')
            .next()
            .and_then(|s| s.parse::<u32>().ok())
            .ok_or_else(|| GeoError::WktParse {
                position: 0,
                message: format!("CRS URI does not end in an EPSG code: {uri}"),
            })?;
        Ok((parse(&rest[end + 1..])?, srid))
    } else {
        Ok((parse(trimmed)?, 4326))
    }
}

/// Serialize a geometry to WKT.
pub fn write(g: &Geometry) -> String {
    let mut out = String::with_capacity(g.num_coords() * 16 + 24);
    write_geometry(g, &mut out);
    out
}

/// Serialize a geometry to stRDF WKT with an explicit CRS URI prefix.
pub fn write_with_crs(g: &Geometry, srid: u32) -> String {
    format!("<http://www.opengis.net/def/crs/EPSG/0/{srid}> {}", write(g))
}

fn write_geometry(g: &Geometry, out: &mut String) {
    match g {
        Geometry::Point(p) => {
            out.push_str("POINT ");
            write_coord_seq(std::slice::from_ref(&p.0), out);
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING ");
            if l.is_empty() {
                out.push_str("EMPTY");
            } else {
                write_coord_seq(&l.0, out);
            }
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON ");
            write_polygon_body(p, out);
        }
        Geometry::MultiPoint(ps) => {
            out.push_str("MULTIPOINT ");
            if ps.is_empty() {
                out.push_str("EMPTY");
            } else {
                out.push('(');
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_coord_seq(std::slice::from_ref(&p.0), out);
                }
                out.push(')');
            }
        }
        Geometry::MultiLineString(ls) => {
            out.push_str("MULTILINESTRING ");
            if ls.is_empty() {
                out.push_str("EMPTY");
            } else {
                out.push('(');
                for (i, l) in ls.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_coord_seq(&l.0, out);
                }
                out.push(')');
            }
        }
        Geometry::MultiPolygon(ps) => {
            out.push_str("MULTIPOLYGON ");
            if ps.is_empty() {
                out.push_str("EMPTY");
            } else {
                out.push('(');
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_polygon_body(p, out);
                }
                out.push(')');
            }
        }
        Geometry::GeometryCollection(gs) => {
            out.push_str("GEOMETRYCOLLECTION ");
            if gs.is_empty() {
                out.push_str("EMPTY");
            } else {
                out.push('(');
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_geometry(g, out);
                }
                out.push(')');
            }
        }
    }
}

fn write_polygon_body(p: &Polygon, out: &mut String) {
    if p.exterior.is_empty() {
        out.push_str("EMPTY");
        return;
    }
    out.push('(');
    write_coord_seq(&p.exterior.0, out);
    for h in &p.interiors {
        out.push_str(", ");
        write_coord_seq(&h.0, out);
    }
    out.push(')');
}

fn write_coord_seq(coords: &[Coord], out: &mut String) {
    out.push('(');
    for (i, c) in coords.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_num(c.x, out);
        out.push(' ');
        write_num(c.y, out);
    }
    out.push(')');
}

fn write_num(v: f64, out: &mut String) {
    // Integral values print without a decimal point, matching common WKT.
    if v.fract() == 0.0 && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, bytes: input.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> GeoError {
        GeoError::WktParse { position: self.pos, message: msg.into() }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn keyword(&mut self) -> String {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        self.input[start..self.pos].to_ascii_uppercase()
    }

    fn try_empty(&mut self) -> bool {
        let save = self.pos;
        if self.keyword() == "EMPTY" {
            true
        } else {
            self.pos = save;
            false
        }
    }

    fn number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || matches!(b, b'+' | b'-' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|e| self.err(format!("bad number: {e}")))
    }

    fn coord(&mut self) -> Result<Coord> {
        let x = self.number()?;
        let y = self.number()?;
        // Skip an optional Z/M value, tolerated but ignored.
        self.skip_ws();
        if matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'-' || b == b'+') {
            let _ = self.number()?;
        }
        Ok(Coord::new(x, y))
    }

    fn coord_seq(&mut self) -> Result<Vec<Coord>> {
        self.expect(b'(')?;
        let mut coords = Vec::with_capacity(8);
        loop {
            coords.push(self.coord()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')' in coordinate sequence")),
            }
        }
        Ok(coords)
    }

    fn polygon_body(&mut self) -> Result<Polygon> {
        self.expect(b'(')?;
        let exterior = LineString(self.coord_seq()?);
        let mut interiors = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    interiors.push(LineString(self.coord_seq()?));
                }
                Some(b')') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ')' in polygon")),
            }
        }
        Ok(Polygon::new(exterior, interiors))
    }

    fn parse_geometry(&mut self) -> Result<Geometry> {
        let kw = self.keyword();
        // Tolerate an optional dimension qualifier (Z, M, ZM).
        let save = self.pos;
        let qual = self.keyword();
        if !matches!(qual.as_str(), "Z" | "M" | "ZM") {
            self.pos = save;
        }
        match kw.as_str() {
            "POINT" => {
                if self.try_empty() {
                    return Err(self.err("POINT EMPTY is not representable"));
                }
                self.expect(b'(')?;
                let c = self.coord()?;
                self.expect(b')')?;
                Ok(Geometry::Point(Point(c)))
            }
            "LINESTRING" => {
                if self.try_empty() {
                    return Ok(Geometry::LineString(LineString::default()));
                }
                Ok(Geometry::LineString(LineString(self.coord_seq()?)))
            }
            "POLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::Polygon(Polygon::new(LineString::default(), vec![])));
                }
                Ok(Geometry::Polygon(self.polygon_body()?))
            }
            "MULTIPOINT" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPoint(vec![]));
                }
                self.expect(b'(')?;
                let mut points = Vec::new();
                loop {
                    self.skip_ws();
                    // Both MULTIPOINT((1 2), (3 4)) and MULTIPOINT(1 2, 3 4).
                    let c = if self.peek() == Some(b'(') {
                        self.pos += 1;
                        let c = self.coord()?;
                        self.expect(b')')?;
                        c
                    } else {
                        self.coord()?
                    };
                    points.push(Point(c));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ')' in MULTIPOINT")),
                    }
                }
                Ok(Geometry::MultiPoint(points))
            }
            "MULTILINESTRING" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiLineString(vec![]));
                }
                self.expect(b'(')?;
                let mut lines = Vec::new();
                loop {
                    lines.push(LineString(self.coord_seq()?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ')' in MULTILINESTRING")),
                    }
                }
                Ok(Geometry::MultiLineString(lines))
            }
            "MULTIPOLYGON" => {
                if self.try_empty() {
                    return Ok(Geometry::MultiPolygon(vec![]));
                }
                self.expect(b'(')?;
                let mut polys = Vec::new();
                loop {
                    polys.push(self.polygon_body()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ')' in MULTIPOLYGON")),
                    }
                }
                Ok(Geometry::MultiPolygon(polys))
            }
            "GEOMETRYCOLLECTION" => {
                if self.try_empty() {
                    return Ok(Geometry::GeometryCollection(vec![]));
                }
                self.expect(b'(')?;
                let mut geoms = Vec::new();
                loop {
                    geoms.push(self.parse_geometry()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b')') => {
                            self.pos += 1;
                            break;
                        }
                        _ => return Err(self.err("expected ',' or ')' in GEOMETRYCOLLECTION")),
                    }
                }
                Ok(Geometry::GeometryCollection(geoms))
            }
            "" => Err(self.err("expected geometry type keyword")),
            other => Err(self.err(format!("unknown geometry type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_roundtrip() {
        let g = parse("POINT (30 10)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(30.0, 10.0)));
        assert_eq!(write(&g), "POINT (30 10)");
    }

    #[test]
    fn point_negative_and_fractional() {
        let g = parse("POINT(-12.5 0.75)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(-12.5, 0.75)));
        assert_eq!(write(&g), "POINT (-12.5 0.75)");
    }

    #[test]
    fn point_scientific_notation() {
        let g = parse("POINT (1e3 -2.5E-2)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1000.0, -0.025)));
    }

    #[test]
    fn linestring_roundtrip() {
        let s = "LINESTRING (30 10, 10 30, 40 40)";
        let g = parse(s).unwrap();
        assert_eq!(write(&g), s);
    }

    #[test]
    fn polygon_with_hole_roundtrip() {
        let s = "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))";
        let g = parse(s).unwrap();
        assert_eq!(write(&g), s);
        if let Geometry::Polygon(p) = &g {
            assert_eq!(p.interiors.len(), 1);
        } else {
            panic!("expected polygon");
        }
    }

    #[test]
    fn multipoint_both_syntaxes() {
        let a = parse("MULTIPOINT ((10 40), (40 30))").unwrap();
        let b = parse("MULTIPOINT (10 40, 40 30)").unwrap();
        assert_eq!(a, b);
        assert_eq!(write(&a), "MULTIPOINT ((10 40), (40 30))");
    }

    #[test]
    fn multilinestring_roundtrip() {
        let s = "MULTILINESTRING ((10 10, 20 20), (40 40, 30 30, 40 20))";
        assert_eq!(write(&parse(s).unwrap()), s);
    }

    #[test]
    fn multipolygon_roundtrip() {
        let s = "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)), ((15 5, 40 10, 10 20, 5 10, 15 5)))";
        assert_eq!(write(&parse(s).unwrap()), s);
    }

    #[test]
    fn geometrycollection_roundtrip() {
        let s = "GEOMETRYCOLLECTION (POINT (4 6), LINESTRING (4 6, 7 10))";
        assert_eq!(write(&parse(s).unwrap()), s);
    }

    #[test]
    fn empty_geometries() {
        assert_eq!(parse("MULTIPOLYGON EMPTY").unwrap(), Geometry::MultiPolygon(vec![]));
        assert_eq!(parse("GEOMETRYCOLLECTION EMPTY").unwrap(), Geometry::GeometryCollection(vec![]));
        assert_eq!(write(&Geometry::MultiPoint(vec![])), "MULTIPOINT EMPTY");
    }

    #[test]
    fn case_insensitive_keywords() {
        assert!(parse("point (1 2)").is_ok());
        assert!(parse("Polygon ((0 0, 1 0, 1 1, 0 0))").is_ok());
    }

    #[test]
    fn z_values_tolerated() {
        let g = parse("POINT Z (1 2 3)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
        let l = parse("LINESTRING (0 0 5, 1 1 6)").unwrap();
        assert_eq!(l, Geometry::LineString(LineString::from(vec![(0.0, 0.0), (1.0, 1.0)])));
    }

    #[test]
    fn errors_report_position() {
        let err = parse("POINT (1 )").unwrap_err();
        match err {
            GeoError::WktParse { position, .. } => assert!(position >= 8),
            _ => panic!("wrong error kind"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("POINT (1 2) extra").is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        assert!(parse("CIRCLE (0 0, 5)").is_err());
    }

    #[test]
    fn crs_prefix_parsed() {
        let (g, srid) =
            parse_with_crs("<http://www.opengis.net/def/crs/EPSG/0/3857> POINT (100 200)").unwrap();
        assert_eq!(srid, 3857);
        assert_eq!(g, Geometry::Point(Point::new(100.0, 200.0)));
    }

    #[test]
    fn crs_prefix_default_4326() {
        let (_, srid) = parse_with_crs("POINT (23.7 38.0)").unwrap();
        assert_eq!(srid, 4326);
    }

    #[test]
    fn crs_roundtrip() {
        let g = Geometry::Point(Point::new(1.0, 2.0));
        let s = write_with_crs(&g, 4326);
        let (g2, srid) = parse_with_crs(&s).unwrap();
        assert_eq!(g, g2);
        assert_eq!(srid, 4326);
    }

    #[test]
    fn whitespace_tolerance() {
        let g = parse("  POLYGON  (  ( 0 0 ,1 0, 1 1 ,0 0 ) )  ").unwrap();
        assert_eq!(g.num_coords(), 4);
    }
}
