//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use teleios_geo::algorithm::area::{area, centroid};
use teleios_geo::algorithm::clip::{clip_to_envelope, overlay, OverlayOp};
use teleios_geo::algorithm::convex_hull::convex_hull_coords;
use teleios_geo::algorithm::distance::{distance, within_distance};
use teleios_geo::algorithm::predicates::{contains, intersects, locate_point_in_ring, PointLocation};
use teleios_geo::coord::{Coord, Envelope};
use teleios_geo::geometry::{Geometry, LineString, Point, Polygon};
use teleios_geo::index::RTree;
use teleios_geo::wkt;

fn coord_strategy() -> impl Strategy<Value = Coord> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Coord::new(x, y))
}

/// A random simple (star-shaped, hence non-self-intersecting) polygon.
fn simple_polygon_strategy() -> impl Strategy<Value = Polygon> {
    (
        coord_strategy(),
        proptest::collection::vec(0.5f64..20.0, 3..12),
    )
        .prop_map(|(center, radii)| {
            let n = radii.len();
            let mut pts: Vec<Coord> = radii
                .iter()
                .enumerate()
                .map(|(i, &r)| {
                    let theta = (i as f64) * std::f64::consts::TAU / (n as f64);
                    Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin())
                })
                .collect();
            let first = pts[0];
            pts.push(first);
            let mut p = Polygon::new(LineString(pts), vec![]);
            p.normalize();
            p
        })
}

proptest! {
    #[test]
    fn wkt_roundtrip_point(c in coord_strategy()) {
        let g = Geometry::Point(Point(c));
        let parsed = wkt::parse(&wkt::write(&g)).unwrap();
        let Geometry::Point(p) = parsed else { panic!("wrong type") };
        prop_assert!((p.x() - c.x).abs() < 1e-9);
        prop_assert!((p.y() - c.y).abs() < 1e-9);
    }

    #[test]
    fn wkt_roundtrip_polygon(poly in simple_polygon_strategy()) {
        let g = Geometry::Polygon(poly.clone());
        let parsed = wkt::parse(&wkt::write(&g)).unwrap();
        prop_assert!((area(&parsed) - poly.area()).abs() < 1e-6);
        prop_assert_eq!(parsed.num_coords(), g.num_coords());
    }

    #[test]
    fn polygon_area_nonnegative(poly in simple_polygon_strategy()) {
        prop_assert!(poly.area() >= 0.0);
    }

    #[test]
    fn centroid_inside_envelope(poly in simple_polygon_strategy()) {
        let c = centroid(&Geometry::Polygon(poly.clone())).unwrap();
        let env = poly.envelope().buffer(1e-9);
        prop_assert!(env.contains_coord(c));
    }

    #[test]
    fn star_polygon_contains_its_center(
        center in coord_strategy(),
        radii in proptest::collection::vec(1.0f64..20.0, 3..12),
    ) {
        let n = radii.len();
        let mut pts: Vec<Coord> = radii.iter().enumerate().map(|(i, &r)| {
            let theta = (i as f64) * std::f64::consts::TAU / (n as f64);
            Coord::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        }).collect();
        let first = pts[0];
        pts.push(first);
        let ring = LineString(pts);
        prop_assert_eq!(locate_point_in_ring(center, &ring), PointLocation::Inside);
    }

    #[test]
    fn distance_symmetric(a in coord_strategy(), b in coord_strategy()) {
        let ga = Geometry::Point(Point(a));
        let gb = Geometry::Point(Point(b));
        prop_assert_eq!(distance(&ga, &gb), distance(&gb, &ga));
    }

    #[test]
    fn distance_triangle_inequality(
        a in coord_strategy(), b in coord_strategy(), c in coord_strategy()
    ) {
        let (ga, gb, gc) = (
            Geometry::Point(Point(a)),
            Geometry::Point(Point(b)),
            Geometry::Point(Point(c)),
        );
        prop_assert!(distance(&ga, &gc) <= distance(&ga, &gb) + distance(&gb, &gc) + 1e-9);
    }

    #[test]
    fn within_distance_consistent_with_distance(
        poly in simple_polygon_strategy(), c in coord_strategy(), d in 0.1f64..50.0
    ) {
        let g = Geometry::Polygon(poly);
        let p = Geometry::Point(Point(c));
        let dist = distance(&g, &p);
        if dist <= d - 1e-9 {
            prop_assert!(within_distance(&g, &p, d));
        }
        if dist > d + 1e-9 {
            prop_assert!(!within_distance(&g, &p, d));
        }
    }

    #[test]
    fn convex_hull_contains_all_points(
        pts in proptest::collection::vec(coord_strategy(), 3..40)
    ) {
        if let Some(hull @ Geometry::Polygon(_)) = convex_hull_coords(&pts) {
            for &p in &pts {
                prop_assert!(
                    intersects(&hull, &Geometry::Point(Point(p))),
                    "hull must cover {p:?}"
                );
            }
        }
    }

    #[test]
    fn clip_to_envelope_bounds_result(
        poly in simple_polygon_strategy(),
        ex in -50.0f64..50.0, ey in -50.0f64..50.0, w in 1.0f64..40.0, h in 1.0f64..40.0,
    ) {
        let env = Envelope::new(Coord::new(ex, ey), Coord::new(ex + w, ey + h));
        if let Some(clipped) = clip_to_envelope(&poly, &env) {
            let ce = clipped.envelope();
            prop_assert!(env.buffer(1e-6).contains_envelope(&ce));
            prop_assert!(clipped.area() <= poly.area() + 1e-6);
            prop_assert!(clipped.area() <= env.area() + 1e-6);
        }
    }

    #[test]
    fn overlay_intersection_bounded_by_inputs(
        a in simple_polygon_strategy(), b in simple_polygon_strategy()
    ) {
        let inter = overlay(&a, &b, OverlayOp::Intersection).area();
        prop_assert!(inter <= a.area() + 1e-4, "inter {} > |a| {}", inter, a.area());
        prop_assert!(inter <= b.area() + 1e-4, "inter {} > |b| {}", inter, b.area());
    }

    #[test]
    fn overlay_partition_conserves_subject_area(
        a in simple_polygon_strategy(), b in simple_polygon_strategy()
    ) {
        let inter = overlay(&a, &b, OverlayOp::Intersection).area();
        let diff = overlay(&a, &b, OverlayOp::Difference).area();
        // |A| = |A ∩ B| + |A \ B| up to perturbation noise.
        prop_assert!(
            (inter + diff - a.area()).abs() < 1e-3 * (1.0 + a.area()),
            "inter {} + diff {} != area {}", inter, diff, a.area()
        );
    }

    #[test]
    fn overlay_union_inclusion_exclusion(
        a in simple_polygon_strategy(), b in simple_polygon_strategy()
    ) {
        // |A ∪ B| = |A| + |B| − |A ∩ B| (up to perturbation noise).
        let union = overlay(&a, &b, OverlayOp::Union).area();
        let inter = overlay(&a, &b, OverlayOp::Intersection).area();
        let expect = a.area() + b.area() - inter;
        prop_assert!(
            (union - expect).abs() < 1e-3 * (1.0 + expect),
            "union {} != {} (|A|={} |B|={} inter={})",
            union, expect, a.area(), b.area(), inter
        );
    }

    #[test]
    fn contains_implies_intersects(
        a in simple_polygon_strategy(), c in coord_strategy()
    ) {
        let ga = Geometry::Polygon(a);
        let gp = Geometry::Point(Point(c));
        if contains(&ga, &gp) {
            prop_assert!(intersects(&ga, &gp));
        }
    }

    #[test]
    fn rtree_query_matches_linear_scan(
        items in proptest::collection::vec(
            (coord_strategy(), 0.1f64..5.0, 0.1f64..5.0), 1..200
        ),
        qc in coord_strategy(), qw in 1.0f64..50.0,
    ) {
        let envs: Vec<(Envelope, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, (c, w, h))| {
                (Envelope::new(*c, Coord::new(c.x + w, c.y + h)), i)
            })
            .collect();
        let tree = RTree::bulk_load(envs.clone());
        let q = Envelope::new(qc, Coord::new(qc.x + qw, qc.y + qw));
        let mut from_tree: Vec<usize> = tree.query(&q).into_iter().copied().collect();
        from_tree.sort_unstable();
        let mut from_scan: Vec<usize> = envs
            .iter()
            .filter(|(e, _)| e.intersects(&q))
            .map(|(_, i)| *i)
            .collect();
        from_scan.sort_unstable();
        prop_assert_eq!(from_tree, from_scan);
    }

    #[test]
    fn rtree_nearest_is_sorted_and_correct(
        items in proptest::collection::vec(coord_strategy(), 1..150),
        q in coord_strategy(),
        k in 1usize..10,
    ) {
        let envs: Vec<(Envelope, usize)> = items
            .iter()
            .enumerate()
            .map(|(i, c)| (Envelope::from_coord(*c), i))
            .collect();
        let tree = RTree::bulk_load(envs);
        let nn = tree.nearest(q, k);
        prop_assert_eq!(nn.len(), k.min(items.len()));
        for w in nn.windows(2) {
            prop_assert!(w[0].2 <= w[1].2 + 1e-12);
        }
        // The first result is the true nearest.
        if let Some(first) = nn.first() {
            let best = items.iter().map(|c| c.distance(&q)).fold(f64::INFINITY, f64::min);
            prop_assert!((first.2 - best).abs() < 1e-9);
        }
    }

    #[test]
    fn envelope_union_is_commutative_and_covers(
        a in coord_strategy(), b in coord_strategy(), c in coord_strategy(), d in coord_strategy()
    ) {
        let e1 = Envelope::new(a, b);
        let e2 = Envelope::new(c, d);
        prop_assert_eq!(e1.union(&e2), e2.union(&e1));
        let u = e1.union(&e2);
        prop_assert!(u.contains_envelope(&e1));
        prop_assert!(u.contains_envelope(&e2));
    }
}
