//! Named array operations: the hand-coded equivalents of common SciQL
//! queries, used directly by the ingestion tier and as the "native"
//! baseline in experiment E6 (SciQL vs hand-coded loops).

use teleios_monet::array::{Dim, NdArray};
use teleios_monet::{DbError, Result};

/// Crop a 2-D array to `[y0, y1) x [x0, x1)`.
pub fn crop(a: &NdArray, y0: usize, y1: usize, x0: usize, x1: usize) -> Result<NdArray> {
    if a.ndim() != 2 {
        return Err(DbError::ShapeMismatch("crop expects a 2-D array".into()));
    }
    a.slice(&[(y0, y1), (x0, x1)])
}

/// Downsample a 2-D array by integer `factor`, averaging each block
/// (a resampling step of the processing chain). Edge remainders are
/// dropped, matching tile semantics.
pub fn resample_mean(a: &NdArray, factor: usize) -> Result<NdArray> {
    if a.ndim() != 2 {
        return Err(DbError::ShapeMismatch("resample expects a 2-D array".into()));
    }
    if factor == 0 {
        return Err(DbError::ShapeMismatch("resample factor must be positive".into()));
    }
    let tiles = a.tiles(&[factor, factor])?;
    let rows = a.shape()[0] / factor;
    let cols = a.shape()[1] / factor;
    let mut out = NdArray::zeros(vec![
        Dim::new(a.dims()[0].name.clone(), rows),
        Dim::new(a.dims()[1].name.clone(), cols),
    ]);
    for (origin, tile) in tiles {
        let r = origin[0] / factor;
        let c = origin[1] / factor;
        out.set(&[r, c], tile.mean().unwrap_or(0.0))?;
    }
    Ok(out)
}

/// Threshold classification: 1.0 where `value > threshold`, else 0.0.
pub fn classify_threshold(a: &NdArray, threshold: f64) -> NdArray {
    a.map(|v| if v > threshold { 1.0 } else { 0.0 })
}

/// Linear radiometric calibration `gain * v + offset`.
pub fn calibrate(a: &NdArray, gain: f64, offset: f64) -> NdArray {
    a.map(|v| gain * v + offset)
}

/// 3x3 box smoothing.
pub fn smooth3x3(a: &NdArray) -> Result<NdArray> {
    let k = NdArray::matrix(3, 3, vec![1.0 / 9.0; 9])?;
    a.convolve2d(&k)
}

/// Per-tile mean: the hand-coded version of
/// `SELECT AVG(v) FROM a GROUP BY TILES [t, t]`.
pub fn tile_mean(a: &NdArray, t: usize) -> Result<NdArray> {
    resample_mean(a, t)
}

/// Contextual (neighbourhood-majority) reclassification of a binary mask:
/// a positive cell survives only when at least `min_neighbors` of its
/// 8-neighbourhood are positive too. This is the "different
/// classification submodule" of demo scenario 1 (E2).
pub fn contextual_filter(mask: &NdArray, min_neighbors: usize) -> Result<NdArray> {
    if mask.ndim() != 2 {
        return Err(DbError::ShapeMismatch("contextual filter expects a 2-D mask".into()));
    }
    let rows = mask.shape()[0];
    let cols = mask.shape()[1];
    let mut out = mask.clone();
    for r in 0..rows {
        for c in 0..cols {
            if mask.get(&[r, c])? <= 0.0 {
                continue;
            }
            let mut n = 0usize;
            for dr in -1i64..=1 {
                for dc in -1i64..=1 {
                    if dr == 0 && dc == 0 {
                        continue;
                    }
                    let (rr, cc) = (r as i64 + dr, c as i64 + dc);
                    if rr >= 0
                        && rr < rows as i64
                        && cc >= 0
                        && cc < cols as i64
                        && mask.get(&[rr as usize, cc as usize])? > 0.0
                    {
                        n += 1;
                    }
                }
            }
            if n < min_neighbors {
                out.set(&[r, c], 0.0)?;
            }
        }
    }
    Ok(out)
}

/// Extract the list of positive cells of a binary mask as (row, col).
pub fn positive_cells(mask: &NdArray) -> Result<Vec<(usize, usize)>> {
    if mask.ndim() != 2 {
        return Err(DbError::ShapeMismatch("positive_cells expects a 2-D mask".into()));
    }
    let cols = mask.shape()[1];
    Ok(mask
        .data()
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0.0)
        .map(|(i, _)| (i / cols, i % cols))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> NdArray {
        NdArray::matrix(rows, cols, (0..rows * cols).map(|v| v as f64).collect()).unwrap()
    }

    #[test]
    fn crop_extracts_window() {
        let a = ramp(4, 4);
        let c = crop(&a, 1, 3, 2, 4).unwrap();
        assert_eq!(c.shape(), vec![2, 2]);
        assert_eq!(c.data(), &[6.0, 7.0, 10.0, 11.0]);
    }

    #[test]
    fn resample_halves() {
        let a = ramp(4, 4);
        let r = resample_mean(&a, 2).unwrap();
        assert_eq!(r.shape(), vec![2, 2]);
        // Top-left block {0,1,4,5} mean 2.5.
        assert_eq!(r.get(&[0, 0]).unwrap(), 2.5);
        assert_eq!(r.get(&[1, 1]).unwrap(), 12.5);
    }

    #[test]
    fn resample_zero_factor_errors() {
        assert!(resample_mean(&ramp(4, 4), 0).is_err());
    }

    #[test]
    fn classify_binary() {
        let a = ramp(2, 2);
        let m = classify_threshold(&a, 1.5);
        assert_eq!(m.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn calibrate_linear() {
        let a = ramp(1, 3);
        let c = calibrate(&a, 2.0, 10.0);
        assert_eq!(c.data(), &[10.0, 12.0, 14.0]);
    }

    #[test]
    fn contextual_removes_isolated() {
        // One isolated positive and one 2x2 block.
        let mut m = NdArray::matrix(4, 4, vec![0.0; 16]).unwrap();
        m.set(&[0, 0], 1.0).unwrap(); // isolated
        m.set(&[2, 2], 1.0).unwrap();
        m.set(&[2, 3], 1.0).unwrap();
        m.set(&[3, 2], 1.0).unwrap();
        m.set(&[3, 3], 1.0).unwrap();
        let f = contextual_filter(&m, 2).unwrap();
        assert_eq!(f.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(f.get(&[2, 2]).unwrap(), 1.0);
        assert_eq!(f.sum(), 4.0);
    }

    #[test]
    fn positive_cells_lists_coordinates() {
        let mut m = NdArray::matrix(3, 3, vec![0.0; 9]).unwrap();
        m.set(&[0, 2], 1.0).unwrap();
        m.set(&[2, 1], 1.0).unwrap();
        assert_eq!(positive_cells(&m).unwrap(), vec![(0, 2), (2, 1)]);
    }

    #[test]
    fn smooth_preserves_constant() {
        let a = NdArray::matrix(5, 5, vec![3.0; 25]).unwrap();
        let s = smooth3x3(&a).unwrap();
        // Interior cells keep the constant value.
        assert!((s.get(&[2, 2]).unwrap() - 3.0).abs() < 1e-12);
        // Corners see zero padding, so they shrink.
        assert!(s.get(&[0, 0]).unwrap() < 3.0);
    }
}
