//! SciQL evaluator against a [`Catalog`].

use crate::ast::*;
use crate::parser::parse;
use teleios_monet::array::{Dim, NdArray};
use teleios_monet::{Catalog, DbError, Result};

/// Result of executing a SciQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SciqlResult {
    /// DDL / UPDATE completed.
    Done,
    /// Scalar reduction result.
    Scalar(f64),
    /// Array-valued result (maps and tiled reductions).
    Array(NdArray),
}

impl SciqlResult {
    /// Unwrap a scalar; errors otherwise.
    pub fn scalar(self) -> Result<f64> {
        match self {
            SciqlResult::Scalar(s) => Ok(s),
            other => Err(DbError::Execution(format!("expected scalar result, got {other:?}"))),
        }
    }

    /// Unwrap an array; errors otherwise.
    pub fn array(self) -> Result<NdArray> {
        match self {
            SciqlResult::Array(a) => Ok(a),
            other => Err(DbError::Execution(format!("expected array result, got {other:?}"))),
        }
    }
}

/// Parse and execute one SciQL statement against the catalog.
pub fn execute(catalog: &Catalog, sciql: &str) -> Result<SciqlResult> {
    execute_stmt(catalog, &parse(sciql)?)
}

/// Execute a parsed statement.
pub fn execute_stmt(catalog: &Catalog, stmt: &SciqlStmt) -> Result<SciqlResult> {
    match stmt {
        SciqlStmt::CreateArray { name, dims, default, .. } => {
            let dims: Vec<Dim> = dims.iter().map(|d| Dim::new(d.name.clone(), d.size)).collect();
            catalog.create_array(name, NdArray::filled(dims, *default))?;
            Ok(SciqlResult::Done)
        }
        SciqlStmt::DropArray { name } => {
            catalog.drop_array(name)?;
            Ok(SciqlResult::Done)
        }
        SciqlStmt::Map { array, slices, expr } => {
            let a = catalog.array(array)?;
            let (view, origin) = sliced_view(&a, slices)?;
            Ok(SciqlResult::Array(map_array(&view, &origin, &a, expr)?))
        }
        SciqlStmt::Reduce { array, slices, agg, expr, condition } => {
            let a = catalog.array(array)?;
            let (view, origin) = sliced_view(&a, slices)?;
            match condition {
                None => {
                    let mapped = map_array(&view, &origin, &a, expr)?;
                    Ok(SciqlResult::Scalar(reduce(&mapped, *agg)))
                }
                Some(cond) => {
                    // Aggregate only the cells satisfying the predicate.
                    let values = collect_matching(&view, &origin, &a, expr, cond)?;
                    Ok(SciqlResult::Scalar(reduce_values(&values, *agg)))
                }
            }
        }
        SciqlStmt::TileReduce { array, agg, expr, tile } => {
            let a = catalog.array(array)?;
            if tile.len() != a.ndim() {
                return Err(DbError::ShapeMismatch(format!(
                    "GROUP BY TILES rank {} != array rank {}",
                    tile.len(),
                    a.ndim()
                )));
            }
            let origin = vec![0usize; a.ndim()];
            let mapped = map_array(&a, &origin, &a, expr)?;
            let tiles = mapped.tiles(tile)?;
            let out_dims: Vec<Dim> = a
                .dims()
                .iter()
                .zip(tile)
                .map(|(d, &t)| Dim::new(d.name.clone(), d.size / t))
                .collect();
            let mut out = NdArray::zeros(out_dims);
            for (tile_origin, t) in tiles {
                let idx: Vec<usize> = tile_origin.iter().zip(tile).map(|(&o, &ts)| o / ts).collect();
                out.set(&idx, reduce(&t, *agg))?;
            }
            Ok(SciqlResult::Array(out))
        }
        SciqlStmt::Update { array, slices, expr, condition } => {
            let a = catalog.array(array)?;
            let ranges = resolve_ranges(&a, slices)?;
            let mut out = a.clone();
            // Iterate the slice region in place.
            let mut idx: Vec<usize> = ranges.iter().map(|(s, _)| *s).collect();
            if ranges.iter().any(|(s, e)| s >= e) {
                catalog.put_array(array, out);
                return Ok(SciqlResult::Done);
            }
            loop {
                let v = a.get(&idx)?; // in range: resolve_ranges checked
                let touch = match condition {
                    None => true,
                    Some(cond) => eval_cell(cond, v, &idx, &a)? != 0.0,
                };
                if touch {
                    let nv = eval_cell(expr, v, &idx, &a)?;
                    out.set(&idx, nv)?;
                }
                let mut k = idx.len();
                loop {
                    if k == 0 {
                        catalog.put_array(array, out);
                        return Ok(SciqlResult::Done);
                    }
                    k -= 1;
                    idx[k] += 1;
                    if idx[k] < ranges[k].1 {
                        break;
                    }
                    idx[k] = ranges[k].0;
                }
            }
        }
    }
}

/// Resolve optional slices to concrete ranges (empty list = full array).
fn resolve_ranges(a: &NdArray, slices: &[SliceRange]) -> Result<Vec<(usize, usize)>> {
    if slices.is_empty() {
        return Ok(a.dims().iter().map(|d| (0, d.size)).collect());
    }
    if slices.len() != a.ndim() {
        return Err(DbError::ShapeMismatch(format!(
            "slice rank {} != array rank {}",
            slices.len(),
            a.ndim()
        )));
    }
    Ok(a.dims()
        .iter()
        .zip(slices)
        .map(|(d, s)| match s {
            None => (0, d.size),
            Some((lo, hi)) => (*lo, *hi),
        })
        .collect())
}

/// Produce the sliced view plus the origin offset of the view in the
/// source array (dimension variables refer to *source* coordinates).
fn sliced_view(a: &NdArray, slices: &[SliceRange]) -> Result<(NdArray, Vec<usize>)> {
    let ranges = resolve_ranges(a, slices)?;
    let origin: Vec<usize> = ranges.iter().map(|(s, _)| *s).collect();
    Ok((a.slice(&ranges)?, origin))
}

/// Element-wise evaluation of `expr` over `view`; `origin` maps view
/// indices back to source coordinates for dimension variables.
fn map_array(view: &NdArray, origin: &[usize], source: &NdArray, expr: &CellExpr) -> Result<NdArray> {
    // Fast path: expressions not referencing dimension variables are
    // pure per-cell kernels — run them through the morsel-parallel
    // `NdArray::try_map` (sequential below the cell threshold), so
    // SciQL maps inherit the executor's speedup.
    if !references_dims(expr, source) {
        return view.try_map(|cell| eval_cell(expr, cell, &[], source));
    }
    let mut out = view.clone();
    if view.is_empty() {
        return Ok(out);
    }
    let shape = view.shape();
    let mut idx = vec![0usize; shape.len()];
    loop {
        let src_idx: Vec<usize> = idx.iter().zip(origin).map(|(&i, &o)| i + o).collect();
        let v = view.get(&idx)?; // in range: idx stays inside shape
        out.set(&idx, eval_cell(expr, v, &src_idx, source)?)?;
        let mut k = idx.len();
        loop {
            if k == 0 {
                return Ok(out);
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < shape[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn references_dims(expr: &CellExpr, a: &NdArray) -> bool {
    match expr {
        CellExpr::Number(_) => false,
        CellExpr::Var(name) => a.dims().iter().any(|d| d.name.eq_ignore_ascii_case(name)),
        CellExpr::Binary { left, right, .. } => {
            references_dims(left, a) || references_dims(right, a)
        }
        CellExpr::Neg(e) => references_dims(e, a),
        CellExpr::Case { arms, otherwise } => {
            arms.iter()
                .any(|(c, r)| references_dims(c, a) || references_dims(r, a))
                || otherwise.as_ref().is_some_and(|e| references_dims(e, a))
        }
        CellExpr::Func { args, .. } => args.iter().any(|e| references_dims(e, a)),
    }
}

/// Evaluate a cell expression. `v` is the cell value, `idx` the source
/// coordinates (empty when the expression uses no dimension variables).
fn eval_cell(expr: &CellExpr, v: f64, idx: &[usize], a: &NdArray) -> Result<f64> {
    Ok(match expr {
        CellExpr::Number(n) => *n,
        CellExpr::Var(name) => {
            if let Ok(d) = a.dim_index(name) {
                if idx.is_empty() {
                    return Err(DbError::Execution(format!(
                        "dimension variable {name} not available here"
                    )));
                }
                idx[d] as f64
            } else {
                // Any non-dimension variable is the cell value attribute.
                v
            }
        }
        CellExpr::Binary { op, left, right } => {
            let l = eval_cell(left, v, idx, a)?;
            let r = eval_cell(right, v, idx, a)?;
            match op {
                CellOp::Add => l + r,
                CellOp::Sub => l - r,
                CellOp::Mul => l * r,
                CellOp::Div => l / r,
                CellOp::Mod => l % r,
                CellOp::Eq => bool_to_f64(l == r),
                CellOp::Ne => bool_to_f64(l != r),
                CellOp::Lt => bool_to_f64(l < r),
                CellOp::Le => bool_to_f64(l <= r),
                CellOp::Gt => bool_to_f64(l > r),
                CellOp::Ge => bool_to_f64(l >= r),
                CellOp::And => bool_to_f64(l != 0.0 && r != 0.0),
                CellOp::Or => bool_to_f64(l != 0.0 || r != 0.0),
            }
        }
        CellExpr::Neg(e) => -eval_cell(e, v, idx, a)?,
        CellExpr::Case { arms, otherwise } => {
            for (cond, result) in arms {
                if eval_cell(cond, v, idx, a)? != 0.0 {
                    return eval_cell(result, v, idx, a);
                }
            }
            match otherwise {
                Some(e) => eval_cell(e, v, idx, a)?,
                None => 0.0,
            }
        }
        CellExpr::Func { name, args } => {
            let vals: Vec<f64> = args
                .iter()
                .map(|e| eval_cell(e, v, idx, a))
                .collect::<Result<_>>()?;
            let arity = |n: usize| -> Result<()> {
                if vals.len() == n {
                    Ok(())
                } else {
                    Err(DbError::Execution(format!(
                        "{name} expects {n} argument(s), got {}",
                        vals.len()
                    )))
                }
            };
            match name.as_str() {
                "ABS" => {
                    arity(1)?;
                    vals[0].abs()
                }
                "SQRT" => {
                    arity(1)?;
                    vals[0].sqrt()
                }
                "EXP" => {
                    arity(1)?;
                    vals[0].exp()
                }
                "LN" => {
                    arity(1)?;
                    vals[0].ln()
                }
                "LOG10" => {
                    arity(1)?;
                    vals[0].log10()
                }
                "FLOOR" => {
                    arity(1)?;
                    vals[0].floor()
                }
                "CEIL" => {
                    arity(1)?;
                    vals[0].ceil()
                }
                "MIN" => {
                    arity(2)?;
                    vals[0].min(vals[1])
                }
                "MAX" => {
                    arity(2)?;
                    vals[0].max(vals[1])
                }
                "POW" => {
                    arity(2)?;
                    vals[0].powf(vals[1])
                }
                other => return Err(DbError::Execution(format!("unknown function: {other}"))),
            }
        }
    })
}

#[inline]
fn bool_to_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Walk the view and collect `expr` values where `cond` holds.
fn collect_matching(
    view: &NdArray,
    origin: &[usize],
    source: &NdArray,
    expr: &CellExpr,
    cond: &CellExpr,
) -> Result<Vec<f64>> {
    let mut out = Vec::new();
    if view.is_empty() {
        return Ok(out);
    }
    let shape = view.shape();
    let mut idx = vec![0usize; shape.len()];
    loop {
        let src_idx: Vec<usize> = idx.iter().zip(origin).map(|(&i, &o)| i + o).collect();
        let v = view.get(&idx)?; // in range: idx stays inside shape
        if eval_cell(cond, v, &src_idx, source)? != 0.0 {
            out.push(eval_cell(expr, v, &src_idx, source)?);
        }
        let mut k = idx.len();
        loop {
            if k == 0 {
                return Ok(out);
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < shape[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// Reduce a flat value list (the WHERE-filtered aggregate path).
fn reduce_values(vals: &[f64], agg: CellAgg) -> f64 {
    match agg {
        CellAgg::Sum => vals.iter().sum(),
        CellAgg::Count => vals.len() as f64,
        CellAgg::Avg => {
            if vals.is_empty() {
                f64::NAN
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        }
        CellAgg::Min => vals.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() { b } else { a.min(b) }),
        CellAgg::Max => vals.iter().copied().fold(f64::NAN, |a, b| if a.is_nan() { b } else { a.max(b) }),
        CellAgg::StdDev => {
            if vals.is_empty() {
                return f64::NAN;
            }
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64).sqrt()
        }
    }
}

fn reduce(a: &NdArray, agg: CellAgg) -> f64 {
    match agg {
        CellAgg::Sum => a.sum(),
        CellAgg::Avg => a.mean().unwrap_or(f64::NAN),
        CellAgg::Min => a.min().unwrap_or(f64::NAN),
        CellAgg::Max => a.max().unwrap_or(f64::NAN),
        CellAgg::Count => a.len() as f64,
        CellAgg::StdDev => a.std_dev().unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> Catalog {
        let cat = Catalog::new();
        // 4x4 ramp 0..16.
        let a = NdArray::matrix(4, 4, (0..16).map(|v| v as f64).collect()).unwrap();
        cat.create_array("img", a).unwrap();
        cat
    }

    #[test]
    fn create_and_reduce() {
        let cat = Catalog::new();
        execute(
            &cat,
            "CREATE ARRAY a (y INT DIMENSION [3], x INT DIMENSION [3], v DOUBLE DEFAULT 2)",
        )
        .unwrap();
        assert_eq!(execute(&cat, "SELECT SUM(v) FROM a").unwrap(), SciqlResult::Scalar(18.0));
        assert_eq!(execute(&cat, "SELECT COUNT(*) FROM a").unwrap(), SciqlResult::Scalar(9.0));
    }

    #[test]
    fn map_scales_values() {
        let cat = setup();
        let r = execute(&cat, "SELECT v * 2 FROM img").unwrap().array().unwrap();
        assert_eq!(r.get(&[1, 1]).unwrap(), 10.0);
        assert_eq!(r.shape(), vec![4, 4]);
    }

    #[test]
    fn map_does_not_mutate_source() {
        let cat = setup();
        execute(&cat, "SELECT v * 2 FROM img").unwrap();
        assert_eq!(cat.array("img").unwrap().get(&[1, 1]).unwrap(), 5.0);
    }

    #[test]
    fn slicing_crops() {
        let cat = setup();
        let r = execute(&cat, "SELECT v FROM img[1..3, 1..3]").unwrap().array().unwrap();
        assert_eq!(r.shape(), vec![2, 2]);
        assert_eq!(r.data(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn star_slice_keeps_dimension() {
        let cat = setup();
        let r = execute(&cat, "SELECT v FROM img[*, 0..1]").unwrap().array().unwrap();
        assert_eq!(r.shape(), vec![4, 1]);
        assert_eq!(r.data(), &[0.0, 4.0, 8.0, 12.0]);
    }

    #[test]
    fn reduce_over_slice() {
        let cat = setup();
        let s = execute(&cat, "SELECT AVG(v) FROM img[0..2, 0..2]").unwrap().scalar().unwrap();
        assert_eq!(s, (0.0 + 1.0 + 4.0 + 5.0) / 4.0);
        let m = execute(&cat, "SELECT MAX(v) FROM img").unwrap().scalar().unwrap();
        assert_eq!(m, 15.0);
    }

    #[test]
    fn dimension_variables_in_expressions() {
        let cat = setup();
        // v = y * 4 + x on the ramp; so v - y*4 - x == 0 everywhere.
        let s = execute(&cat, "SELECT SUM(ABS(v - y * 4 - x)) FROM img")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn dimension_variables_respect_slice_origin() {
        let cat = setup();
        // Within the slice starting at (1,1), y/x are source coordinates.
        let s = execute(&cat, "SELECT SUM(ABS(v - y * 4 - x)) FROM img[1..4, 1..4]")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    fn tile_reduce_downsamples() {
        let cat = setup();
        let r = execute(&cat, "SELECT AVG(v) FROM img GROUP BY TILES [2, 2]")
            .unwrap()
            .array()
            .unwrap();
        assert_eq!(r.shape(), vec![2, 2]);
        assert_eq!(r.get(&[0, 0]).unwrap(), 2.5);
        assert_eq!(r.get(&[1, 1]).unwrap(), 12.5);
    }

    #[test]
    fn tile_reduce_matches_ops_baseline() {
        let cat = setup();
        let via_sciql = execute(&cat, "SELECT AVG(v) FROM img GROUP BY TILES [2, 2]")
            .unwrap()
            .array()
            .unwrap();
        let via_ops = crate::ops::tile_mean(&cat.array("img").unwrap(), 2).unwrap();
        assert_eq!(via_sciql, via_ops);
    }

    #[test]
    fn update_classifies_in_place() {
        let cat = setup();
        execute(&cat, "UPDATE img SET v = CASE WHEN v > 7 THEN 1 ELSE 0 END").unwrap();
        let a = cat.array("img").unwrap();
        assert_eq!(a.sum(), 8.0); // values 8..15
        assert_eq!(a.get(&[0, 0]).unwrap(), 0.0);
        assert_eq!(a.get(&[3, 3]).unwrap(), 1.0);
    }

    #[test]
    fn update_slice_only() {
        let cat = setup();
        execute(&cat, "UPDATE img[0..1, *] SET v = 100").unwrap();
        let a = cat.array("img").unwrap();
        assert_eq!(a.get(&[0, 2]).unwrap(), 100.0);
        assert_eq!(a.get(&[1, 2]).unwrap(), 6.0);
    }

    #[test]
    fn update_matches_ops_classify() {
        let cat = setup();
        let expected = crate::ops::classify_threshold(&cat.array("img").unwrap(), 7.0);
        execute(&cat, "UPDATE img SET v = CASE WHEN v > 7 THEN 1 ELSE 0 END").unwrap();
        assert_eq!(cat.array("img").unwrap(), expected);
    }

    #[test]
    fn drop_array_removes() {
        let cat = setup();
        execute(&cat, "DROP ARRAY img").unwrap();
        assert!(execute(&cat, "SELECT SUM(v) FROM img").is_err());
    }

    #[test]
    fn errors_propagate() {
        let cat = setup();
        assert!(execute(&cat, "SELECT v FROM missing").is_err());
        assert!(execute(&cat, "SELECT v FROM img[0..9, 0..9]").is_err()); // out of bounds
        assert!(execute(&cat, "SELECT NOPE(v) FROM img").is_err());
        assert!(execute(&cat, "SELECT MAX(v, 1, 2) FROM img").is_err());
    }

    #[test]
    fn stddev_reduction() {
        let cat = Catalog::new();
        let a = NdArray::matrix(1, 4, vec![2.0, 4.0, 4.0, 6.0]).unwrap();
        cat.create_array("s", a).unwrap();
        let sd = execute(&cat, "SELECT STDDEV(v) FROM s").unwrap().scalar().unwrap();
        assert!((sd - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn reduce_with_where_filters_cells() {
        let cat = setup();
        // Mean of cells above 7 on the 0..16 ramp: (8..=15) avg = 11.5.
        let s = execute(&cat, "SELECT AVG(v) FROM img WHERE v > 7").unwrap().scalar().unwrap();
        assert_eq!(s, 11.5);
        let n = execute(&cat, "SELECT COUNT(*) FROM img WHERE v > 7").unwrap().scalar().unwrap();
        assert_eq!(n, 8.0);
        // WHERE with dimension variables.
        let left = execute(&cat, "SELECT SUM(v) FROM img WHERE x < 2").unwrap().scalar().unwrap();
        assert_eq!(left, (1 + 4 + 5 + 8 + 9 + 12 + 13) as f64);
    }

    #[test]
    fn reduce_with_where_empty_match() {
        let cat = setup();
        let s = execute(&cat, "SELECT SUM(v) FROM img WHERE v > 1000").unwrap().scalar().unwrap();
        assert_eq!(s, 0.0);
        let avg = execute(&cat, "SELECT AVG(v) FROM img WHERE v > 1000").unwrap().scalar().unwrap();
        assert!(avg.is_nan());
    }

    #[test]
    fn update_with_where_touches_matching_only() {
        let cat = setup();
        execute(&cat, "UPDATE img SET v = 0 WHERE v > 7").unwrap();
        let a = cat.array("img").unwrap();
        assert_eq!(a.sum(), (0..8).sum::<usize>() as f64);
        assert_eq!(a.get(&[0, 3]).unwrap(), 3.0); // untouched
        assert_eq!(a.get(&[3, 3]).unwrap(), 0.0); // zeroed
    }

    #[test]
    fn update_where_equivalent_to_case() {
        let cat = setup();
        let cat2 = setup();
        execute(&cat, "UPDATE img SET v = 1 WHERE v > 7").unwrap();
        execute(&cat2, "UPDATE img SET v = CASE WHEN v > 7 THEN 1 ELSE v END").unwrap();
        assert_eq!(cat.array("img").unwrap(), cat2.array("img").unwrap());
    }

    #[test]
    fn where_with_tiles_rejected() {
        let cat = setup();
        assert!(execute(&cat, "SELECT AVG(v) FROM img WHERE v > 1 GROUP BY TILES [2, 2]").is_err());
    }

    #[test]
    fn logic_operators() {
        let cat = setup();
        let s = execute(&cat, "SELECT SUM(CASE WHEN v > 3 AND v < 8 THEN 1 ELSE 0 END) FROM img")
            .unwrap()
            .scalar()
            .unwrap();
        assert_eq!(s, 4.0); // 4,5,6,7
    }
}
