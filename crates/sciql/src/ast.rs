//! SciQL abstract syntax tree.

/// Cell-level expression over array values and dimension variables.
#[derive(Debug, Clone, PartialEq)]
pub enum CellExpr {
    /// Numeric literal.
    Number(f64),
    /// The cell value attribute (`v`) or a dimension variable (`x`, `y`).
    Var(String),
    /// Binary arithmetic / comparison. Comparisons yield 1.0 / 0.0.
    Binary {
        /// Operator.
        op: CellOp,
        /// Left operand.
        left: Box<CellExpr>,
        /// Right operand.
        right: Box<CellExpr>,
    },
    /// Unary minus.
    Neg(Box<CellExpr>),
    /// `CASE WHEN cond THEN a [WHEN …]* [ELSE b] END`; a missing ELSE
    /// yields 0.0.
    Case {
        /// (condition, result) arms, tested in order.
        arms: Vec<(CellExpr, CellExpr)>,
        /// ELSE result.
        otherwise: Option<Box<CellExpr>>,
    },
    /// Math function call (`ABS`, `SQRT`, `EXP`, `LN`, `LOG10`, `FLOOR`,
    /// `CEIL`, `MIN`, `MAX`, `POW`).
    Func {
        /// Upper-cased name.
        name: String,
        /// Arguments.
        args: Vec<CellExpr>,
    },
}

/// Binary operators on cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=` (1.0 / 0.0)
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND` (non-zero = true)
    And,
    /// `OR`
    Or,
}

/// Aggregate function over cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellAgg {
    /// Sum of values.
    Sum,
    /// Arithmetic mean.
    Avg,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Cell count.
    Count,
    /// Population standard deviation.
    StdDev,
}

impl CellAgg {
    /// Parse an aggregate name.
    pub fn parse(name: &str) -> Option<CellAgg> {
        match name.to_ascii_uppercase().as_str() {
            "SUM" => Some(CellAgg::Sum),
            "AVG" => Some(CellAgg::Avg),
            "MIN" => Some(CellAgg::Min),
            "MAX" => Some(CellAgg::Max),
            "COUNT" => Some(CellAgg::Count),
            "STDDEV" | "STDEV" | "STDDEV_POP" => Some(CellAgg::StdDev),
            _ => None,
        }
    }
}

/// A dimension declaration in CREATE ARRAY.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimDecl {
    /// Dimension name.
    pub name: String,
    /// Extent.
    pub size: usize,
}

/// An optional slice range over one dimension (`lo:hi`, half-open).
pub type SliceRange = Option<(usize, usize)>;

/// A SciQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum SciqlStmt {
    /// `CREATE ARRAY name (dims..., value DOUBLE DEFAULT d)`.
    CreateArray {
        /// Array name.
        name: String,
        /// Dimension declarations in storage order.
        dims: Vec<DimDecl>,
        /// Value attribute name (usually `v`).
        value_name: String,
        /// Fill value.
        default: f64,
    },
    /// `DROP ARRAY name`.
    DropArray {
        /// Array name.
        name: String,
    },
    /// `SELECT expr FROM name[ranges]` — element-wise map.
    Map {
        /// Source array.
        array: String,
        /// Per-dimension slice (missing = full extent).
        slices: Vec<SliceRange>,
        /// Cell expression.
        expr: CellExpr,
    },
    /// `SELECT agg(expr) FROM name[ranges] [WHERE cond]` — scalar
    /// reduction over the cells satisfying `cond`.
    Reduce {
        /// Source array.
        array: String,
        /// Per-dimension slice.
        slices: Vec<SliceRange>,
        /// Aggregate.
        agg: CellAgg,
        /// Argument expression.
        expr: CellExpr,
        /// Optional cell predicate.
        condition: Option<CellExpr>,
    },
    /// `SELECT agg(expr) FROM name GROUP BY TILES [t...]` — structural
    /// group-by producing a downsampled array.
    TileReduce {
        /// Source array.
        array: String,
        /// Aggregate.
        agg: CellAgg,
        /// Argument expression.
        expr: CellExpr,
        /// Tile extent per dimension.
        tile: Vec<usize>,
    },
    /// `UPDATE name[ranges] SET v = expr [WHERE cond]` — in-place
    /// transformation of the cells satisfying `cond`.
    Update {
        /// Target array.
        array: String,
        /// Per-dimension slice.
        slices: Vec<SliceRange>,
        /// New cell expression.
        expr: CellExpr,
        /// Optional cell predicate.
        condition: Option<CellExpr>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_parse() {
        assert_eq!(CellAgg::parse("avg"), Some(CellAgg::Avg));
        assert_eq!(CellAgg::parse("STDDEV"), Some(CellAgg::StdDev));
        assert_eq!(CellAgg::parse("MEDIAN"), None);
    }
}
