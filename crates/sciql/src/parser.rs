//! SciQL parser, built on the `teleios-monet` SQL lexer.

use crate::ast::*;
use teleios_monet::sql::lexer::{tokenize, Symbol, Token, TokenKind};
use teleios_monet::{DbError, Result};

/// Parse one SciQL statement.
///
/// Canonical SciQL writes dimension extents and slices in square
/// brackets (`DIMENSION [512]`, `img[0..10, *]`); the shared SQL lexer
/// has no bracket tokens, so brackets are translated to parentheses
/// before tokenizing. Both spellings are accepted.
pub fn parse(input: &str) -> Result<SciqlStmt> {
    // `lo..hi` ranges are rewritten to `lo TO hi` before tokenizing: the
    // shared lexer would otherwise glue the dots onto the numbers. SciQL
    // statements contain no string literals, so the rewrite is safe.
    let input = input.replace('[', "(").replace(']', ")").replace("..", " TO ");
    let tokens = tokenize(&input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.accept_symbol(Symbol::Semicolon);
    if p.peek() != &TokenKind::Eof {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse { position: self.tokens[self.pos].pos, message: msg.into() }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(s) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn accept_symbol(&mut self, sym: Symbol) -> bool {
        if self.peek() == &TokenKind::Symbol(sym) {
            self.advance();
            return true;
        }
        false
    }

    fn expect_symbol(&mut self, sym: Symbol) -> Result<()> {
        if self.accept_symbol(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected {sym:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn usize_lit(&mut self) -> Result<usize> {
        match self.advance() {
            TokenKind::Int(n) if n >= 0 => Ok(n as usize),
            other => Err(self.err(format!("expected non-negative integer, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<SciqlStmt> {
        if self.accept_kw("CREATE") {
            self.expect_kw("ARRAY")?;
            let name = self.ident()?;
            self.expect_symbol(Symbol::LParen)?;
            let mut dims = Vec::new();
            let mut value_name = String::from("v");
            let mut default = 0.0;
            loop {
                let attr = self.ident()?;
                let ty = self.ident()?; // INT / DOUBLE / FLOAT ...
                if self.accept_kw("DIMENSION") {
                    // `[n]` extent.
                    if !matches!(self.peek(), TokenKind::Symbol(_)) {
                        return Err(self.err("expected [extent] after DIMENSION"));
                    }
                    self.expect_bracket_open()?;
                    let size = self.usize_lit()?;
                    self.expect_bracket_close()?;
                    dims.push(DimDecl { name: attr, size });
                } else {
                    // Value attribute.
                    let _ = ty; // type is always f64 storage
                    value_name = attr;
                    if self.accept_kw("DEFAULT") {
                        default = self.number()?;
                    }
                }
                if !self.accept_symbol(Symbol::Comma) {
                    break;
                }
            }
            self.expect_symbol(Symbol::RParen)?;
            if dims.is_empty() {
                return Err(self.err("array needs at least one DIMENSION attribute"));
            }
            return Ok(SciqlStmt::CreateArray { name, dims, value_name, default });
        }
        if self.accept_kw("DROP") {
            self.expect_kw("ARRAY")?;
            let name = self.ident()?;
            return Ok(SciqlStmt::DropArray { name });
        }
        if self.accept_kw("UPDATE") {
            let array = self.ident()?;
            let slices = self.optional_slices()?;
            self.expect_kw("SET")?;
            let _target = self.ident()?; // value attribute name
            self.expect_symbol(Symbol::Eq)?;
            let expr = self.cell_expr()?;
            let condition = if self.accept_kw("WHERE") {
                Some(self.cell_expr()?)
            } else {
                None
            };
            return Ok(SciqlStmt::Update { array, slices, expr, condition });
        }
        if self.accept_kw("SELECT") {
            // Aggregate or plain expression?
            let save = self.pos;
            if let TokenKind::Ident(name) = self.peek().clone() {
                if let Some(agg) = CellAgg::parse(&name) {
                    if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                        == Some(&TokenKind::Symbol(Symbol::LParen))
                    {
                        self.advance();
                        self.advance();
                        let expr = if self.accept_symbol(Symbol::Star) {
                            CellExpr::Number(1.0)
                        } else {
                            self.cell_expr()?
                        };
                        self.expect_symbol(Symbol::RParen)?;
                        self.expect_kw("FROM")?;
                        let array = self.ident()?;
                        let slices = self.optional_slices()?;
                        let condition = if self.accept_kw("WHERE") {
                            Some(self.cell_expr()?)
                        } else {
                            None
                        };
                        if self.accept_kw("GROUP") {
                            self.expect_kw("BY")?;
                            self.expect_kw("TILES")?;
                            self.expect_bracket_open()?;
                            let mut tile = vec![self.usize_lit()?];
                            while self.accept_symbol(Symbol::Comma) {
                                tile.push(self.usize_lit()?);
                            }
                            self.expect_bracket_close()?;
                            if slices.iter().any(Option::is_some) {
                                return Err(
                                    self.err("slicing cannot be combined with GROUP BY TILES")
                                );
                            }
                            if condition.is_some() {
                                return Err(
                                    self.err("WHERE cannot be combined with GROUP BY TILES")
                                );
                            }
                            return Ok(SciqlStmt::TileReduce { array, agg, expr, tile });
                        }
                        return Ok(SciqlStmt::Reduce { array, slices, agg, expr, condition });
                    }
                }
            }
            self.pos = save;
            let expr = self.cell_expr()?;
            self.expect_kw("FROM")?;
            let array = self.ident()?;
            let slices = self.optional_slices()?;
            return Ok(SciqlStmt::Map { array, slices, expr });
        }
        Err(self.err("expected CREATE, DROP, SELECT or UPDATE"))
    }

    fn expect_bracket_open(&mut self) -> Result<()> {
        self.expect_symbol(Symbol::LParen)
    }

    fn expect_bracket_close(&mut self) -> Result<()> {
        self.expect_symbol(Symbol::RParen)
    }

    /// Optional `[lo..hi, *, ...]` slice list after an array name.
    /// `*` means "full extent" for that dimension.
    fn optional_slices(&mut self) -> Result<Vec<SliceRange>> {
        if !self.accept_symbol(Symbol::LParen) {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        loop {
            if self.accept_symbol(Symbol::Star) {
                out.push(None);
            } else {
                let (lo, hi) = self.slice_bounds()?;
                if hi < lo {
                    return Err(self.err(format!("empty slice {lo}..{hi}")));
                }
                out.push(Some((lo, hi)));
            }
            if !self.accept_symbol(Symbol::Comma) {
                break;
            }
        }
        self.expect_symbol(Symbol::RParen)?;
        Ok(out)
    }

    /// Parse `lo..hi` (pre-translated to `lo TO hi` by [`parse`]).
    fn slice_bounds(&mut self) -> Result<(usize, usize)> {
        let lo = self.usize_lit()?;
        self.expect_kw("TO")?;
        let hi = self.usize_lit()?;
        Ok((lo, hi))
    }

    fn number(&mut self) -> Result<f64> {
        let neg = self.accept_symbol(Symbol::Minus);
        let v = match self.advance() {
            TokenKind::Int(i) => i as f64,
            TokenKind::Float(f) => f,
            other => return Err(self.err(format!("expected number, found {other:?}"))),
        };
        Ok(if neg { -v } else { v })
    }

    // Expression grammar: OR > AND > comparison > additive > term.
    fn cell_expr(&mut self) -> Result<CellExpr> {
        let mut left = self.and_expr()?;
        while self.accept_kw("OR") {
            let right = self.and_expr()?;
            left = CellExpr::Binary { op: CellOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<CellExpr> {
        let mut left = self.cmp_expr()?;
        while self.accept_kw("AND") {
            let right = self.cmp_expr()?;
            left = CellExpr::Binary { op: CellOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<CellExpr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(CellOp::Eq),
            TokenKind::Symbol(Symbol::Ne) => Some(CellOp::Ne),
            TokenKind::Symbol(Symbol::Lt) => Some(CellOp::Lt),
            TokenKind::Symbol(Symbol::Le) => Some(CellOp::Le),
            TokenKind::Symbol(Symbol::Gt) => Some(CellOp::Gt),
            TokenKind::Symbol(Symbol::Ge) => Some(CellOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.add_expr()?;
            return Ok(CellExpr::Binary { op, left: Box::new(left), right: Box::new(right) });
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<CellExpr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Plus) => CellOp::Add,
                TokenKind::Symbol(Symbol::Minus) => CellOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = CellExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<CellExpr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Star) => CellOp::Mul,
                TokenKind::Symbol(Symbol::Slash) => CellOp::Div,
                TokenKind::Symbol(Symbol::Percent) => CellOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary_expr()?;
            left = CellExpr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<CellExpr> {
        if self.accept_symbol(Symbol::Minus) {
            return Ok(CellExpr::Neg(Box::new(self.unary_expr()?)));
        }
        if self.accept_symbol(Symbol::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<CellExpr> {
        if self.peek_kw("CASE") {
            self.advance();
            let mut arms = Vec::new();
            while self.accept_kw("WHEN") {
                let cond = self.cell_expr()?;
                self.expect_kw("THEN")?;
                let result = self.cell_expr()?;
                arms.push((cond, result));
            }
            if arms.is_empty() {
                return Err(self.err("CASE needs at least one WHEN arm"));
            }
            let otherwise = if self.accept_kw("ELSE") {
                Some(Box::new(self.cell_expr()?))
            } else {
                None
            };
            self.expect_kw("END")?;
            return Ok(CellExpr::Case { arms, otherwise });
        }
        match self.advance() {
            TokenKind::Int(i) => Ok(CellExpr::Number(i as f64)),
            TokenKind::Float(f) => Ok(CellExpr::Number(f)),
            TokenKind::Symbol(Symbol::LParen) => {
                let e = self.cell_expr()?;
                self.expect_symbol(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.peek() == &TokenKind::Symbol(Symbol::LParen) {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::Symbol(Symbol::RParen) {
                        args.push(self.cell_expr()?);
                        while self.accept_symbol(Symbol::Comma) {
                            args.push(self.cell_expr()?);
                        }
                    }
                    self.expect_symbol(Symbol::RParen)?;
                    return Ok(CellExpr::Func { name: name.to_ascii_uppercase(), args });
                }
                Ok(CellExpr::Var(name))
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_array() {
        let s = parse(
            "CREATE ARRAY img (y INT DIMENSION (512), x INT DIMENSION (256), v DOUBLE DEFAULT 0.5)",
        )
        .unwrap();
        match s {
            SciqlStmt::CreateArray { name, dims, value_name, default } => {
                assert_eq!(name, "img");
                assert_eq!(dims.len(), 2);
                assert_eq!(dims[0].size, 512);
                assert_eq!(dims[1].name, "x");
                assert_eq!(value_name, "v");
                assert_eq!(default, 0.5);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn create_requires_dimension() {
        assert!(parse("CREATE ARRAY a (v DOUBLE)").is_err());
    }

    #[test]
    fn select_map() {
        let s = parse("SELECT v * 2 + 1 FROM img").unwrap();
        assert!(matches!(s, SciqlStmt::Map { ref array, ref slices, .. } if array == "img" && slices.is_empty()));
    }

    #[test]
    fn select_map_with_slice() {
        let s = parse("SELECT v FROM img(0..10, 5..20)").unwrap();
        match s {
            SciqlStmt::Map { slices, .. } => {
                assert_eq!(slices, vec![Some((0, 10)), Some((5, 20))]);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn select_map_star_slice() {
        let s = parse("SELECT v FROM img(*, 5..20)").unwrap();
        match s {
            SciqlStmt::Map { slices, .. } => {
                assert_eq!(slices, vec![None, Some((5, 20))]);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn select_reduce() {
        let s = parse("SELECT AVG(v) FROM img(0..4, 0..4)").unwrap();
        assert!(matches!(s, SciqlStmt::Reduce { agg: CellAgg::Avg, .. }));
        let s2 = parse("SELECT COUNT(*) FROM img").unwrap();
        assert!(matches!(s2, SciqlStmt::Reduce { agg: CellAgg::Count, .. }));
    }

    #[test]
    fn select_tile_reduce() {
        let s = parse("SELECT MAX(v) FROM img GROUP BY TILES (16, 16)").unwrap();
        match s {
            SciqlStmt::TileReduce { agg, tile, .. } => {
                assert_eq!(agg, CellAgg::Max);
                assert_eq!(tile, vec![16, 16]);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn tiles_with_slice_rejected() {
        assert!(parse("SELECT MAX(v) FROM img(0..2, 0..2) GROUP BY TILES (2, 2)").is_err());
    }

    #[test]
    fn update_with_case() {
        let s = parse("UPDATE img SET v = CASE WHEN v > 310 THEN 1 ELSE 0 END").unwrap();
        match s {
            SciqlStmt::Update { expr: CellExpr::Case { arms, otherwise }, .. } => {
                assert_eq!(arms.len(), 1);
                assert!(otherwise.is_some());
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn update_slice() {
        let s = parse("UPDATE img(0..5, *) SET v = v / 2").unwrap();
        assert!(matches!(s, SciqlStmt::Update { ref slices, .. } if slices.len() == 2));
    }

    #[test]
    fn drop_array() {
        assert!(matches!(parse("DROP ARRAY img").unwrap(), SciqlStmt::DropArray { .. }));
    }

    #[test]
    fn functions_and_vars() {
        let s = parse("SELECT SQRT(ABS(v - 300)) + x * 0.1 FROM img").unwrap();
        assert!(matches!(s, SciqlStmt::Map { .. }));
    }

    #[test]
    fn empty_slice_rejected() {
        assert!(parse("SELECT v FROM img(5..2)").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT v FROM img img2").is_err());
    }

    #[test]
    fn reduce_with_where() {
        let s = parse("SELECT AVG(v) FROM img WHERE v > 318").unwrap();
        match s {
            SciqlStmt::Reduce { condition: Some(_), agg: CellAgg::Avg, .. } => {}
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn update_with_where() {
        let s = parse("UPDATE img SET v = 0 WHERE v > 318 AND x < 4").unwrap();
        match s {
            SciqlStmt::Update { condition: Some(CellExpr::Binary { op: CellOp::And, .. }), .. } => {}
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn where_after_slice() {
        let s = parse("SELECT SUM(v) FROM img[0..4, *] WHERE v > 0").unwrap();
        match s {
            SciqlStmt::Reduce { slices, condition: Some(_), .. } => assert_eq!(slices.len(), 2),
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn case_multiple_arms() {
        let s =
            parse("SELECT CASE WHEN v > 320 THEN 2 WHEN v > 310 THEN 1 ELSE 0 END FROM img").unwrap();
        match s {
            SciqlStmt::Map { expr: CellExpr::Case { arms, .. }, .. } => assert_eq!(arms.len(), 2),
            other => panic!("wrong: {other:?}"),
        }
    }
}
