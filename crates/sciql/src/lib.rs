#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-sciql — a SciQL-style array query language
//!
//! SciQL (Zhang, Kersten, Ivanova, Nes — IDEAS 2011) extends SQL with
//! arrays as first-class citizens so that low-level image processing and
//! image content analysis run *inside* the DBMS as declarative queries.
//! This crate implements that surface over the
//! [`teleios_monet`] array store:
//!
//! * `CREATE ARRAY name (y INT DIMENSION [256], x INT DIMENSION [256], v DOUBLE DEFAULT 0)`
//! * `SELECT <expr> FROM name[ranges]` — element-wise computation over an
//!   optional rectangular slice, yielding a new array,
//! * `SELECT <agg>(<expr>) FROM name[ranges]` — full reduction to a scalar,
//! * `SELECT <agg>(v) FROM name GROUP BY TILES [ty, tx]` — SciQL's
//!   structural group-by: non-overlapping tiles aggregate into a
//!   downsampled array (the primitive behind patch feature extraction),
//! * `UPDATE name[ranges] SET v = <expr>` — in-place transformation,
//! * `DROP ARRAY name`.
//!
//! Cell expressions may reference the cell value (`v` or the declared
//! value attribute), the dimension variables (e.g. `x`, `y`), arithmetic,
//! comparisons, `CASE WHEN … THEN … ELSE … END` and math functions —
//! enough to express the NOA processing-chain stages (cropping,
//! calibration, classification) declaratively, as the paper demonstrates.
//!
//! ## Example
//!
//! ```
//! use teleios_monet::Catalog;
//! use teleios_sciql::{execute, SciqlResult};
//!
//! let cat = Catalog::new();
//! execute(&cat, "CREATE ARRAY img (y INT DIMENSION [4], x INT DIMENSION [4], v DOUBLE DEFAULT 1.5)").unwrap();
//! match execute(&cat, "SELECT SUM(v) FROM img").unwrap() {
//!     SciqlResult::Scalar(s) => assert_eq!(s, 24.0),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

pub mod ast;
pub mod eval;
pub mod ops;
pub mod parser;

pub use eval::{execute, SciqlResult};
