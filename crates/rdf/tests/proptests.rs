//! Property-based tests for the RDF layer: Turtle roundtrips and store
//! index consistency under random workloads.

use proptest::prelude::*;
use teleios_rdf::store::TripleStore;
use teleios_rdf::term::Term;
use teleios_rdf::triple::TriplePattern;
use teleios_rdf::turtle;

fn iri_strategy() -> impl Strategy<Value = Term> {
    "[a-z][a-z0-9]{0,8}".prop_map(|local| Term::iri(format!("http://example.org/{local}")))
}

fn literal_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Plain strings including characters that need escaping.
        "[ -~]{0,20}".prop_map(Term::literal),
        any::<i64>().prop_map(Term::int),
        (-1.0e6f64..1.0e6).prop_map(Term::double),
        any::<bool>().prop_map(Term::boolean),
        ("[a-z]{1,8}", "[a-z]{2}").prop_map(|(s, l)| Term::lang_literal(s, l)),
    ]
}

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![iri_strategy(), literal_strategy()]
}

fn triples_strategy() -> impl Strategy<Value = Vec<(Term, Term, Term)>> {
    proptest::collection::vec((iri_strategy(), iri_strategy(), term_strategy()), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing a store to Turtle and reading it back preserves content.
    #[test]
    fn turtle_roundtrip(triples in triples_strategy()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &triples {
            store.insert_terms(s, p, o);
        }
        let text = turtle::write_store(&store);
        let mut store2 = TripleStore::new();
        turtle::parse_into(&text, &mut store2).unwrap();
        prop_assert_eq!(store.len(), store2.len());
        for t in store.iter() {
            let (s, p, o) = (
                store.term(t.s).clone(),
                store.term(t.p).clone(),
                store.term(t.o).clone(),
            );
            prop_assert_eq!(
                store2.match_terms(Some(&s), Some(&p), Some(&o)).len(),
                1,
                "missing {} {} {}", s, p, o
            );
        }
    }

    /// Pattern matching agrees with a linear scan for every shape.
    #[test]
    fn pattern_matching_matches_scan(triples in triples_strategy()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &triples {
            store.insert_terms(s, p, o);
        }
        let all: Vec<_> = store.iter().collect();
        // Probe with ids taken from the stored triples (plus wildcards).
        for probe in all.iter().take(10) {
            for (s, p, o) in [
                (Some(probe.s), None, None),
                (None, Some(probe.p), None),
                (None, None, Some(probe.o)),
                (Some(probe.s), Some(probe.p), None),
                (None, Some(probe.p), Some(probe.o)),
                (Some(probe.s), Some(probe.p), Some(probe.o)),
            ] {
                let pat = TriplePattern::new(s, p, o);
                let mut from_index = store.match_pattern(&pat);
                from_index.sort();
                let mut from_scan: Vec<_> =
                    all.iter().filter(|t| pat.matches(t)).copied().collect();
                from_scan.sort();
                prop_assert_eq!(&from_index, &from_scan);
                // The estimate never undercounts the true matches for
                // the index-backed shapes.
                prop_assert!(store.estimate_pattern(&pat) >= from_scan.len());
            }
        }
    }

    /// Removing everything returns the store to empty with consistent
    /// indexes.
    #[test]
    fn remove_all_empties_store(triples in triples_strategy()) {
        let mut store = TripleStore::new();
        for (s, p, o) in &triples {
            store.insert_terms(s, p, o);
        }
        let all: Vec<_> = store.iter().collect();
        for t in &all {
            prop_assert!(store.remove(t));
        }
        prop_assert!(store.is_empty());
        prop_assert_eq!(store.match_pattern(&TriplePattern::any()).len(), 0);
    }
}
