//! The triple store: three BTree orderings for index-backed matching.

use crate::dictionary::{Dictionary, TermId};
use crate::term::Term;
use crate::triple::{Triple, TriplePattern};
use std::collections::BTreeSet;

/// A triple store over a term dictionary.
///
/// Three complete orderings — SPO, POS and OSP — are maintained so that
/// every triple-pattern shape resolves through an index range scan:
///
/// | bound positions | index used |
/// |---|---|
/// | S, SP, SPO | SPO |
/// | P, PO | POS |
/// | O, OS | OSP |
/// | (none) | SPO full scan |
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    dict: Dictionary,
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl TripleStore {
    /// Empty store.
    pub fn new() -> TripleStore {
        TripleStore::default()
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// The term dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Intern a term (exposed so callers can pre-encode constants).
    pub fn intern(&mut self, term: &Term) -> TermId {
        self.dict.intern(term)
    }

    /// Id of a term if already interned.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dict.id_of(term)
    }

    /// Resolve an id to its term.
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Insert an encoded triple. Returns false when it already existed.
    pub fn insert(&mut self, t: Triple) -> bool {
        if !self.spo.insert((t.s, t.p, t.o)) {
            return false;
        }
        self.pos.insert((t.p, t.o, t.s));
        self.osp.insert((t.o, t.s, t.p));
        true
    }

    /// Intern terms and insert the triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let t = Triple::new(self.dict.intern(s), self.dict.intern(p), self.dict.intern(o));
        self.insert(t)
    }

    /// Remove a triple. Returns false when it was absent.
    pub fn remove(&mut self, t: &Triple) -> bool {
        if !self.spo.remove(&(t.s, t.p, t.o)) {
            return false;
        }
        self.pos.remove(&(t.p, t.o, t.s));
        self.osp.remove(&(t.o, t.s, t.p));
        true
    }

    /// True when the store contains the triple.
    pub fn contains(&self, t: &Triple) -> bool {
        self.spo.contains(&(t.s, t.p, t.o))
    }

    /// Match a pattern, returning the triples in SPO order.
    pub fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        use std::ops::Bound::Included;
        match (pat.s, pat.p, pat.o) {
            // SPO index.
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s, p, o)) {
                    vec![Triple::new(s, p, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), Some(p), None) => self
                .spo
                .range((Included((s, p, TermId::MIN)), upper_2(s, p)))
                .map(|&(s, p, o)| Triple::new(s, p, o))
                .collect(),
            (Some(s), None, o) => self
                .spo
                .range((Included((s, TermId::MIN, TermId::MIN)), upper_1(s)))
                .filter(|&&(_, _, to)| o.is_none_or(|o| o == to))
                .map(|&(s, p, o)| Triple::new(s, p, o))
                .collect(),
            // POS index.
            (None, Some(p), Some(o)) => self
                .pos
                .range((Included((p, o, TermId::MIN)), upper_2(p, o)))
                .map(|&(p, o, s)| Triple::new(s, p, o))
                .collect(),
            (None, Some(p), None) => self
                .pos
                .range((Included((p, TermId::MIN, TermId::MIN)), upper_1(p)))
                .map(|&(p, o, s)| Triple::new(s, p, o))
                .collect(),
            // OSP index.
            (None, None, Some(o)) => self
                .osp
                .range((Included((o, TermId::MIN, TermId::MIN)), upper_1(o)))
                .map(|&(o, s, p)| Triple::new(s, p, o))
                .collect(),
            // Full scan.
            (None, None, None) => {
                self.spo.iter().map(|&(s, p, o)| Triple::new(s, p, o)).collect()
            }
        }
    }

    /// Count the matches of a pattern without materializing terms.
    pub fn count_pattern(&self, pat: &TriplePattern) -> usize {
        self.match_pattern(pat).len()
    }

    /// Selectivity estimate used by the BGP optimizer.
    ///
    /// For patterns with at least one bound position the exact match
    /// count is computed from the index ranges without materializing
    /// triples (this is the role MonetDB's column statistics play for
    /// Strabon); the S+O shape and the full wildcard fall back to cheap
    /// upper bounds.
    pub fn estimate_pattern(&self, pat: &TriplePattern) -> usize {
        use std::ops::Bound::Included;
        match (pat.s, pat.p, pat.o) {
            (None, None, None) => self.len().max(1),
            (Some(s), Some(p), Some(o)) => self.spo.contains(&(s, p, o)) as usize,
            (Some(s), Some(p), None) => self
                .spo
                .range((Included((s, p, TermId::MIN)), upper_2(s, p)))
                .count(),
            (Some(s), None, None) => self
                .spo
                .range((Included((s, TermId::MIN, TermId::MIN)), upper_1(s)))
                .count(),
            (None, Some(p), Some(o)) => self
                .pos
                .range((Included((p, o, TermId::MIN)), upper_2(p, o)))
                .count(),
            (None, Some(p), None) => self
                .pos
                .range((Included((p, TermId::MIN, TermId::MIN)), upper_1(p)))
                .count(),
            (None, None, Some(o)) => self
                .osp
                .range((Included((o, TermId::MIN, TermId::MIN)), upper_1(o)))
                .count(),
            // S and O bound, P free: bounded by the subject's degree.
            (Some(s), None, Some(_)) => self
                .spo
                .range((Included((s, TermId::MIN, TermId::MIN)), upper_1(s)))
                .count(),
        }
    }

    /// Iterate all triples (SPO order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo.iter().map(|&(s, p, o)| Triple::new(s, p, o))
    }

    /// Convenience: match on *terms*, returning decoded term triples.
    pub fn match_terms(
        &self,
        s: Option<&Term>,
        p: Option<&Term>,
        o: Option<&Term>,
    ) -> Vec<(Term, Term, Term)> {
        // An un-interned constant matches nothing.
        let encode = |t: Option<&Term>| -> Option<Option<TermId>> {
            match t {
                None => Some(None),
                Some(term) => self.dict.id_of(term).map(Some),
            }
        };
        let (Some(s), Some(p), Some(o)) = (encode(s), encode(p), encode(o)) else {
            return Vec::new();
        };
        self.match_pattern(&TriplePattern::new(s, p, o))
            .into_iter()
            .map(|t| {
                (
                    self.dict.term(t.s).clone(),
                    self.dict.term(t.p).clone(),
                    self.dict.term(t.o).clone(),
                )
            })
            .collect()
    }

    /// Objects of `(s, p, ?o)` as terms.
    pub fn objects(&self, s: &Term, p: &Term) -> Vec<Term> {
        self.match_terms(Some(s), Some(p), None)
            .into_iter()
            .map(|(_, _, o)| o)
            .collect()
    }

    /// Subjects of `(?s, p, o)` as terms.
    pub fn subjects(&self, p: &Term, o: &Term) -> Vec<Term> {
        self.match_terms(None, Some(p), Some(o))
            .into_iter()
            .map(|(s, _, _)| s)
            .collect()
    }
}

fn upper_1(a: TermId) -> std::ops::Bound<(TermId, TermId, TermId)> {
    match a.checked_add(1) {
        Some(next) => std::ops::Bound::Excluded((next, TermId::MIN, TermId::MIN)),
        None => std::ops::Bound::Unbounded,
    }
}

fn upper_2(a: TermId, b: TermId) -> std::ops::Bound<(TermId, TermId, TermId)> {
    match b.checked_add(1) {
        Some(next) => std::ops::Bound::Excluded((a, next, TermId::MIN)),
        None => upper_1(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(format!("http://x/{s}"))
    }

    fn setup() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert_terms(&iri("img1"), &iri("type"), &iri("RawImage"));
        st.insert_terms(&iri("img2"), &iri("type"), &iri("RawImage"));
        st.insert_terms(&iri("h1"), &iri("type"), &iri("Hotspot"));
        st.insert_terms(&iri("h1"), &iri("from"), &iri("img1"));
        st.insert_terms(&iri("img1"), &iri("cloud"), &Term::double(0.3));
        st
    }

    #[test]
    fn insert_dedup() {
        let mut st = setup();
        assert_eq!(st.len(), 5);
        assert!(!st.insert_terms(&iri("img1"), &iri("type"), &iri("RawImage")));
        assert_eq!(st.len(), 5);
    }

    #[test]
    fn match_by_predicate_object() {
        let st = setup();
        let subs = st.subjects(&iri("type"), &iri("RawImage"));
        assert_eq!(subs.len(), 2);
        assert!(subs.contains(&iri("img1")));
        assert!(subs.contains(&iri("img2")));
    }

    #[test]
    fn match_by_subject() {
        let st = setup();
        let all = st.match_terms(Some(&iri("img1")), None, None);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn match_by_subject_predicate() {
        let st = setup();
        let objs = st.objects(&iri("h1"), &iri("from"));
        assert_eq!(objs, vec![iri("img1")]);
    }

    #[test]
    fn match_by_object_only() {
        let st = setup();
        let hits = st.match_terms(None, None, Some(&iri("img1")));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, iri("h1"));
    }

    #[test]
    fn match_fully_bound_and_absent() {
        let st = setup();
        assert_eq!(st.match_terms(Some(&iri("img1")), Some(&iri("type")), Some(&iri("RawImage"))).len(), 1);
        assert!(st.match_terms(Some(&iri("img1")), Some(&iri("type")), Some(&iri("Hotspot"))).is_empty());
        // Constant never interned: no panic, no results.
        assert!(st.match_terms(Some(&iri("ghost")), None, None).is_empty());
    }

    #[test]
    fn full_scan() {
        let st = setup();
        assert_eq!(st.match_pattern(&TriplePattern::any()).len(), 5);
        assert_eq!(st.iter().count(), 5);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut st = setup();
        let s = st.id_of(&iri("h1")).unwrap();
        let p = st.id_of(&iri("from")).unwrap();
        let o = st.id_of(&iri("img1")).unwrap();
        let t = Triple::new(s, p, o);
        assert!(st.remove(&t));
        assert!(!st.remove(&t));
        assert_eq!(st.len(), 4);
        assert!(st.match_terms(None, Some(&iri("from")), None).is_empty());
        assert!(st.match_terms(None, None, Some(&iri("img1"))).is_empty());
    }

    #[test]
    fn index_consistency_under_churn() {
        let mut st = TripleStore::new();
        for i in 0..200 {
            st.insert_terms(&iri(&format!("s{}", i % 20)), &iri(&format!("p{}", i % 5)), &Term::int(i));
        }
        // Remove every triple with predicate p0 and verify counts agree.
        let p0 = st.id_of(&iri("p0")).unwrap();
        let to_remove = st.match_pattern(&TriplePattern::new(None, Some(p0), None));
        let n = to_remove.len();
        for t in to_remove {
            assert!(st.remove(&t));
        }
        assert_eq!(st.len(), 200 - n);
        assert!(st.match_pattern(&TriplePattern::new(None, Some(p0), None)).is_empty());
        // The other indexes agree.
        assert_eq!(st.iter().count(), st.len());
    }

    #[test]
    fn estimates_monotone_in_boundness() {
        let st = setup();
        let e3 = st.estimate_pattern(&TriplePattern::new(Some(0), Some(1), Some(2)));
        let e1 = st.estimate_pattern(&TriplePattern::new(Some(0), None, None));
        let e0 = st.estimate_pattern(&TriplePattern::any());
        assert!(e3 <= e1 && e1 <= e0);
    }
}
