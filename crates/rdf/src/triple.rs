//! Dictionary-encoded triples and triple patterns.

use crate::dictionary::TermId;

/// A dictionary-encoded triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// Subject id.
    pub s: TermId,
    /// Predicate id.
    pub p: TermId,
    /// Object id.
    pub o: TermId,
}

impl Triple {
    /// New triple.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Triple {
        Triple { s, p, o }
    }
}

/// A triple pattern: `None` positions are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// Fully wild pattern.
    pub fn any() -> TriplePattern {
        TriplePattern::default()
    }

    /// Pattern with the given constraints.
    pub fn new(s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> TriplePattern {
        TriplePattern { s, p, o }
    }

    /// True when the triple matches this pattern.
    #[inline]
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }

    /// Number of bound positions (used for selectivity ordering).
    pub fn bound_count(&self) -> usize {
        self.s.is_some() as usize + self.p.is_some() as usize + self.o.is_some() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_matching() {
        let t = Triple::new(1, 2, 3);
        assert!(TriplePattern::any().matches(&t));
        assert!(TriplePattern::new(Some(1), None, None).matches(&t));
        assert!(TriplePattern::new(Some(1), Some(2), Some(3)).matches(&t));
        assert!(!TriplePattern::new(Some(9), None, None).matches(&t));
        assert!(!TriplePattern::new(None, None, Some(9)).matches(&t));
    }

    #[test]
    fn bound_count() {
        assert_eq!(TriplePattern::any().bound_count(), 0);
        assert_eq!(TriplePattern::new(Some(1), None, Some(3)).bound_count(), 2);
    }

    #[test]
    fn triple_ordering_is_spo() {
        let a = Triple::new(1, 5, 9);
        let b = Triple::new(1, 6, 0);
        let c = Triple::new(2, 0, 0);
        assert!(a < b && b < c);
    }
}
