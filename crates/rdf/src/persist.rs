//! Persistence of the triple store onto a `teleios-store`
//! [`StorageBackend`].
//!
//! Encoding (keyspace `rdf/dict`, key `terms`): the dictionary's
//! terms in id order — a tag byte (0 = IRI, 1 = blank, 2 = plain
//! literal, 3 = typed literal, 4 = language-tagged literal) followed
//! by the term's length-prefixed strings. Because `Dictionary::intern`
//! assigns dense sequential ids in insertion order, re-interning the
//! decoded terms into a fresh dictionary reproduces the identical
//! id assignment, so the delta-coded triples below remain valid.
//!
//! Encoding (keyspace `rdf/spo`, key `triples`): a varint triple
//! count, then per triple (in SPO index order) the zigzag-varint
//! deltas `(Δs, Δp, Δo)` against the previous triple, starting from
//! `(0, 0, 0)`. Sorted SPO ids make consecutive deltas tiny, so the
//! log and snapshot stay compact without a general-purpose
//! compressor.

use teleios_store::codec::{put_str, put_varint, put_zigzag, Reader};
use teleios_store::{StorageBackend, StoreError};

use crate::store::TripleStore;
use crate::term::Term;
use crate::triple::Triple;

/// Keyspace holding the dictionary page.
pub const DICT_KEYSPACE: &str = "rdf/dict";
/// Keyspace holding the delta-coded triple page.
pub const SPO_KEYSPACE: &str = "rdf/spo";
/// Key for the term dictionary within [`DICT_KEYSPACE`].
pub const TERMS_KEY: &[u8] = b"terms";
/// Key for the triple page within [`SPO_KEYSPACE`].
pub const TRIPLES_KEY: &[u8] = b"triples";

const TAG_IRI: u8 = 0;
const TAG_BLANK: u8 = 1;
const TAG_PLAIN: u8 = 2;
const TAG_TYPED: u8 = 3;
const TAG_LANG: u8 = 4;

fn encode_terms(store: &TripleStore) -> Vec<u8> {
    let dict = store.dictionary();
    let mut out = Vec::new();
    put_varint(&mut out, dict.len() as u64);
    for id in 0..dict.len() as u32 {
        match dict.term(id) {
            Term::Iri(value) => {
                out.push(TAG_IRI);
                put_str(&mut out, value);
            }
            Term::Blank(label) => {
                out.push(TAG_BLANK);
                put_str(&mut out, label);
            }
            Term::Literal { lexical, datatype: Some(dt), .. } => {
                out.push(TAG_TYPED);
                put_str(&mut out, lexical);
                put_str(&mut out, dt);
            }
            Term::Literal { lexical, lang: Some(lang), .. } => {
                out.push(TAG_LANG);
                put_str(&mut out, lexical);
                put_str(&mut out, lang);
            }
            Term::Literal { lexical, .. } => {
                out.push(TAG_PLAIN);
                put_str(&mut out, lexical);
            }
        }
    }
    out
}

fn decode_terms(bytes: &[u8]) -> Result<Vec<Term>, StoreError> {
    let mut r = Reader::new(bytes);
    let n = r.varint()?;
    let mut terms = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let term = match r.u8()? {
            TAG_IRI => Term::Iri(r.string()?),
            TAG_BLANK => Term::Blank(r.string()?),
            TAG_PLAIN => Term::literal(r.string()?),
            TAG_TYPED => {
                let lexical = r.string()?;
                let dt = r.string()?;
                Term::typed_literal(lexical, dt)
            }
            TAG_LANG => {
                let lexical = r.string()?;
                let lang = r.string()?;
                Term::lang_literal(lexical, lang)
            }
            other => {
                return Err(StoreError::Codec(format!("unknown term tag {other}")));
            }
        };
        terms.push(term);
    }
    if !r.is_empty() {
        return Err(StoreError::Codec("trailing bytes after term dictionary".into()));
    }
    Ok(terms)
}

fn encode_triples(store: &TripleStore) -> Vec<u8> {
    let mut out = Vec::new();
    put_varint(&mut out, store.len() as u64);
    let (mut ps, mut pp, mut po) = (0i64, 0i64, 0i64);
    for t in store.iter() {
        put_zigzag(&mut out, t.s as i64 - ps);
        put_zigzag(&mut out, t.p as i64 - pp);
        put_zigzag(&mut out, t.o as i64 - po);
        ps = t.s as i64;
        pp = t.p as i64;
        po = t.o as i64;
    }
    out
}

fn id_from(v: i64) -> Result<u32, StoreError> {
    u32::try_from(v).map_err(|_| StoreError::Codec(format!("term id {v} out of range")))
}

fn decode_triples(bytes: &[u8]) -> Result<Vec<Triple>, StoreError> {
    let mut r = Reader::new(bytes);
    let n = r.varint()?;
    let mut triples = Vec::with_capacity(n as usize);
    let (mut s, mut p, mut o) = (0i64, 0i64, 0i64);
    for _ in 0..n {
        s += r.zigzag()?;
        p += r.zigzag()?;
        o += r.zigzag()?;
        triples.push(Triple::new(id_from(s)?, id_from(p)?, id_from(o)?));
    }
    if !r.is_empty() {
        return Err(StoreError::Codec("trailing bytes after triple page".into()));
    }
    Ok(triples)
}

/// Stage the triple store's pages as puts inside the backend's open
/// transaction (the caller owns `begin`/`commit`, so a catalog, a
/// triple store, and table pages can share one atomic commit).
pub fn persist_triple_store(
    store: &TripleStore,
    backend: &mut dyn StorageBackend,
) -> Result<(), StoreError> {
    backend.put(DICT_KEYSPACE, TERMS_KEY, &encode_terms(store))?;
    backend.put(SPO_KEYSPACE, TRIPLES_KEY, &encode_triples(store))?;
    Ok(())
}

/// Persist the triple store as a single transaction of its own;
/// returns the commit sequence number.
pub fn save_triple_store(
    store: &TripleStore,
    backend: &mut dyn StorageBackend,
) -> Result<u64, StoreError> {
    backend.begin()?;
    // A failed put must not leave the transaction open on the shared
    // backend (txn-leak): roll back before propagating.
    if let Err(e) = persist_triple_store(store, backend) {
        backend.rollback();
        return Err(e);
    }
    backend.commit()
}

/// Load the triple store persisted by [`persist_triple_store`];
/// `Ok(None)` if nothing was ever persisted.
pub fn load_triple_store(
    backend: &dyn StorageBackend,
) -> Result<Option<TripleStore>, StoreError> {
    let Some(term_bytes) = backend.get(DICT_KEYSPACE, TERMS_KEY)? else {
        return Ok(None);
    };
    let triple_bytes = backend.get(SPO_KEYSPACE, TRIPLES_KEY)?.unwrap_or_default();
    let terms = decode_terms(&term_bytes)?;
    let mut store = TripleStore::new();
    for (expect_id, term) in terms.iter().enumerate() {
        let id = store.intern(term);
        if id as usize != expect_id {
            return Err(StoreError::Codec(format!(
                "dictionary replay assigned id {id}, expected {expect_id}"
            )));
        }
    }
    if !triple_bytes.is_empty() {
        let dict_len = store.dictionary().len() as i64;
        for t in decode_triples(&triple_bytes)? {
            if t.s as i64 >= dict_len || t.p as i64 >= dict_len || t.o as i64 >= dict_len {
                return Err(StoreError::Codec(
                    "triple references a term id beyond the dictionary".into(),
                ));
            }
            store.insert(t);
        }
    }
    Ok(Some(store))
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_store::{DurableBackend, DurableConfig, MemMedium, MemoryBackend};

    fn sample_store() -> TripleStore {
        let mut store = TripleStore::new();
        let img = Term::iri("http://teleios.example/img/0042");
        let hotspot = Term::iri("http://teleios.example/hotspot/7");
        store.insert_terms(
            &img,
            &Term::iri("http://teleios.example/hasCloudCover"),
            &Term::typed_literal("0.25", "http://www.w3.org/2001/XMLSchema#double"),
        );
        store.insert_terms(
            &hotspot,
            &Term::iri("http://teleios.example/observedIn"),
            &img,
        );
        store.insert_terms(
            &hotspot,
            &Term::iri("http://www.w3.org/2000/01/rdf-schema#label"),
            &Term::lang_literal("Brandherd", "de"),
        );
        store.insert_terms(
            &Term::blank("b0"),
            &Term::iri("http://teleios.example/comment"),
            &Term::literal("plain note"),
        );
        store
    }

    fn assert_stores_equal(a: &TripleStore, b: &TripleStore) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.dictionary().len(), b.dictionary().len());
        for id in 0..a.dictionary().len() as u32 {
            assert_eq!(a.dictionary().term(id), b.dictionary().term(id), "term id {id}");
        }
        let ta: Vec<_> = a.iter().collect();
        let tb: Vec<_> = b.iter().collect();
        assert_eq!(ta, tb);
    }

    #[test]
    fn round_trip_through_memory_backend() {
        let store = sample_store();
        let mut backend = MemoryBackend::new();
        save_triple_store(&store, &mut backend).unwrap();
        let loaded = load_triple_store(&backend).unwrap().unwrap();
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn round_trip_survives_crash_recovery() {
        let store = sample_store();
        let mut backend =
            DurableBackend::open(MemMedium::new(), DurableConfig::default()).unwrap();
        save_triple_store(&store, &mut backend).unwrap();
        let mut medium = backend.into_medium();
        medium.crash();
        let recovered = DurableBackend::open(medium, DurableConfig::default()).unwrap();
        let loaded = load_triple_store(&recovered).unwrap().unwrap();
        assert_stores_equal(&store, &loaded);
    }

    #[test]
    fn empty_store_round_trips() {
        let store = TripleStore::new();
        let mut backend = MemoryBackend::new();
        save_triple_store(&store, &mut backend).unwrap();
        let loaded = load_triple_store(&backend).unwrap().unwrap();
        assert_eq!(loaded.len(), 0);
        assert_eq!(loaded.dictionary().len(), 0);
    }

    #[test]
    fn missing_state_loads_as_none() {
        let backend = MemoryBackend::new();
        assert!(load_triple_store(&backend).unwrap().is_none());
    }

    #[test]
    fn saving_twice_overwrites_cleanly() {
        let mut backend = MemoryBackend::new();
        save_triple_store(&sample_store(), &mut backend).unwrap();
        let mut smaller = TripleStore::new();
        smaller.insert_terms(
            &Term::iri("http://teleios.example/only"),
            &Term::iri("http://teleios.example/p"),
            &Term::literal("v"),
        );
        save_triple_store(&smaller, &mut backend).unwrap();
        let loaded = load_triple_store(&backend).unwrap().unwrap();
        assert_stores_equal(&smaller, &loaded);
    }

    #[test]
    fn corrupt_term_page_is_a_codec_error_not_a_panic() {
        let mut backend = MemoryBackend::new();
        save_triple_store(&sample_store(), &mut backend).unwrap();
        let mut bytes = backend.get(DICT_KEYSPACE, TERMS_KEY).unwrap().unwrap();
        bytes.truncate(bytes.len() / 2);
        backend.begin().unwrap();
        backend.put(DICT_KEYSPACE, TERMS_KEY, &bytes).unwrap();
        backend.commit().unwrap();
        assert!(matches!(load_triple_store(&backend), Err(StoreError::Codec(_))));
    }
}
