//! Term dictionary: interning RDF terms to dense integer ids.
//!
//! Strabon stores dictionary-encoded triples in its relational backend;
//! this mirrors that design. Ids are dense `u32`s so the triple indexes
//! stay compact and comparisons are integer comparisons.

use crate::term::Term;
use std::collections::HashMap;

/// Dense id of an interned term.
pub type TermId = u32;

/// Bidirectional Term ↔ id mapping.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_term: HashMap<Term, TermId>,
    by_id: Vec<Term>,
}

impl Dictionary {
    /// Empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Intern a term, returning its id (idempotent).
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.by_id.len() as TermId;
        self.by_id.push(term.clone());
        self.by_term.insert(term.clone(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Resolve an id back to its term. Panics on an unknown id, which
    /// indicates a store invariant violation.
    pub fn term(&self, id: TermId) -> &Term {
        &self.by_id[id as usize]
    }

    /// Resolve an id, returning `None` when out of range.
    pub fn get(&self, id: TermId) -> Option<&Term> {
        self.by_id.get(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("http://x/a"));
        let b = d.intern(&Term::iri("http://x/b"));
        let a2 = d.intern(&Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let t = Term::typed_literal("3.5", crate::vocab::xsd::DOUBLE);
        let id = d.intern(&t);
        assert_eq!(d.term(id), &t);
        assert_eq!(d.id_of(&t), Some(id));
    }

    #[test]
    fn distinct_literal_forms_distinct_ids() {
        let mut d = Dictionary::new();
        let plain = d.intern(&Term::literal("x"));
        let typed = d.intern(&Term::typed_literal("x", crate::vocab::xsd::STRING));
        let tagged = d.intern(&Term::lang_literal("x", "en"));
        assert_ne!(plain, typed);
        assert_ne!(plain, tagged);
        assert_ne!(typed, tagged);
    }

    #[test]
    fn get_out_of_range() {
        let d = Dictionary::new();
        assert!(d.get(0).is_none());
    }
}
