//! Turtle subset reader and writer.
//!
//! Supported syntax: `@prefix` declarations, IRIs, prefixed names, the
//! `a` keyword, blank nodes (`_:label`), string literals with `\`
//! escapes, `^^` datatypes, `@lang` tags, bare integers / decimals /
//! booleans, predicate lists (`;`), object lists (`,`) and `#` comments.
//! Collections `(...)` and anonymous nodes `[...]` are not supported —
//! the TELEIOS datasets do not use them.

use crate::store::TripleStore;
use crate::term::Term;
use crate::vocab::{rdf, xsd};
use crate::{RdfError, Result};
use std::collections::HashMap;

/// Parse Turtle text into triples, appending them to `store`.
/// Returns the number of (new) triples inserted.
pub fn parse_into(input: &str, store: &mut TripleStore) -> Result<usize> {
    let mut n = 0;
    parse_triples(input, |s, p, o| {
        if store.insert_terms(&s, &p, &o) {
            n += 1;
        }
    })?;
    Ok(n)
}

/// Parse Turtle text, invoking `sink` for every triple.
pub fn parse_triples<F: FnMut(Term, Term, Term)>(input: &str, mut sink: F) -> Result<()> {
    let mut p = TurtleParser::new(input);
    while p.skip_ws_and_comments() {
        if p.peek_str("@prefix") {
            p.parse_prefix()?;
            continue;
        }
        let subject = p.parse_term()?;
        loop {
            p.require_ws()?;
            let predicate = p.parse_predicate()?;
            p.require_ws()?;
            loop {
                let object = p.parse_term()?;
                sink(subject.clone(), predicate.clone(), object);
                p.skip_inline_ws();
                match p.peek_char() {
                    Some(',') => {
                        p.bump();
                        p.skip_ws_and_comments();
                    }
                    _ => break,
                }
            }
            p.skip_inline_ws();
            match p.peek_char() {
                Some(';') => {
                    p.bump();
                    p.skip_ws_and_comments();
                    // A dangling `;` before `.` is legal Turtle.
                    if p.peek_char() == Some('.') {
                        break;
                    }
                }
                Some('.') => break,
                other => {
                    return Err(p.err(format!(
                        "expected ';', ',' or '.', found {:?}",
                        other.map(String::from).unwrap_or_else(|| "end of input".into())
                    )))
                }
            }
        }
        // Consume the terminating dot.
        if p.peek_char() == Some('.') {
            p.bump();
        } else {
            return Err(p.err("expected '.'"));
        }
    }
    Ok(())
}

struct TurtleParser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    prefixes: HashMap<String, String>,
    _input: &'a str,
}

impl<'a> TurtleParser<'a> {
    fn new(input: &'a str) -> Self {
        TurtleParser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            prefixes: HashMap::new(),
            _input: input,
        }
    }

    fn err(&self, msg: impl Into<String>) -> RdfError {
        RdfError::Parse { line: self.line, message: msg.into() }
    }

    fn peek_char(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char();
        if c == Some('\n') {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn peek_str(&self, s: &str) -> bool {
        self.chars[self.pos..].starts_with(&s.chars().collect::<Vec<_>>()[..])
    }

    /// Skip whitespace and comments; false at end of input.
    fn skip_ws_and_comments(&mut self) -> bool {
        loop {
            match self.peek_char() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some(_) => return true,
                None => return false,
            }
        }
    }

    fn skip_inline_ws(&mut self) {
        self.skip_ws_and_comments();
    }

    fn require_ws(&mut self) -> Result<()> {
        if self.skip_ws_and_comments() {
            Ok(())
        } else {
            Err(self.err("unexpected end of input"))
        }
    }

    fn parse_prefix(&mut self) -> Result<()> {
        for _ in 0.."@prefix".len() {
            self.bump();
        }
        self.require_ws()?;
        // prefix name up to ':'.
        let mut name = String::new();
        while let Some(c) = self.peek_char() {
            if c == ':' {
                break;
            }
            if c.is_whitespace() {
                return Err(self.err("expected ':' in @prefix"));
            }
            name.push(c);
            self.bump();
        }
        if self.bump() != Some(':') {
            return Err(self.err("expected ':' in @prefix"));
        }
        self.require_ws()?;
        let iri = self.parse_iri_ref()?;
        self.prefixes.insert(name, iri);
        self.skip_ws_and_comments();
        if self.bump() != Some('.') {
            return Err(self.err("expected '.' after @prefix"));
        }
        Ok(())
    }

    fn parse_iri_ref(&mut self) -> Result<String> {
        if self.bump() != Some('<') {
            return Err(self.err("expected '<'"));
        }
        let mut iri = String::new();
        loop {
            match self.bump() {
                Some('>') => return Ok(iri),
                Some(c) => iri.push(c),
                None => return Err(self.err("unterminated IRI")),
            }
        }
    }

    fn parse_predicate(&mut self) -> Result<Term> {
        if self.peek_char() == Some('a') {
            // `a` keyword only when followed by whitespace.
            if self.chars.get(self.pos + 1).is_none_or(|c| c.is_whitespace()) {
                self.bump();
                return Ok(Term::iri(rdf::TYPE));
            }
        }
        self.parse_term()
    }

    fn parse_term(&mut self) -> Result<Term> {
        match self.peek_char() {
            Some('<') => Ok(Term::Iri(self.parse_iri_ref()?)),
            Some('"') => self.parse_literal(),
            Some('_') => {
                self.bump();
                if self.bump() != Some(':') {
                    return Err(self.err("expected ':' after '_'"));
                }
                let mut label = String::new();
                while let Some(c) = self.peek_char() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        label.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if label.is_empty() {
                    return Err(self.err("empty blank node label"));
                }
                Ok(Term::Blank(label))
            }
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.parse_number(),
            Some(_) => self.parse_prefixed_or_keyword(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self) -> Result<Term> {
        self.bump(); // opening quote
        let mut lex = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => lex.push('\n'),
                    Some('r') => lex.push('\r'),
                    Some('t') => lex.push('\t'),
                    Some('"') => lex.push('"'),
                    Some('\\') => lex.push('\\'),
                    Some(other) => {
                        return Err(self.err(format!("unknown escape '\\{other}'")))
                    }
                    None => return Err(self.err("unterminated literal")),
                },
                Some(c) => lex.push(c),
                None => return Err(self.err("unterminated literal")),
            }
        }
        // Datatype or language tag?
        if self.peek_str("^^") {
            self.bump();
            self.bump();
            let dt = match self.peek_char() {
                Some('<') => self.parse_iri_ref()?,
                _ => match self.parse_prefixed_or_keyword()? {
                    Term::Iri(iri) => iri,
                    other => return Err(self.err(format!("datatype must be an IRI, got {other}"))),
                },
            };
            return Ok(Term::typed_literal(lex, dt));
        }
        if self.peek_char() == Some('@') {
            self.bump();
            let mut lang = String::new();
            while let Some(c) = self.peek_char() {
                if c.is_ascii_alphanumeric() || c == '-' {
                    lang.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            if lang.is_empty() {
                return Err(self.err("empty language tag"));
            }
            return Ok(Term::lang_literal(lex, lang));
        }
        Ok(Term::literal(lex))
    }

    fn parse_number(&mut self) -> Result<Term> {
        let mut text = String::new();
        let mut is_decimal = false;
        if matches!(self.peek_char(), Some('-') | Some('+')) {
            if let Some(sign) = self.bump() {
                text.push(sign);
            }
        }
        while let Some(c) = self.peek_char() {
            match c {
                '0'..='9' => {
                    text.push(c);
                    self.bump();
                }
                '.' => {
                    // A dot followed by a digit is a decimal point; a bare
                    // dot terminates the statement.
                    if self.chars.get(self.pos + 1).is_some_and(char::is_ascii_digit) {
                        is_decimal = true;
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                'e' | 'E' => {
                    is_decimal = true;
                    text.push(c);
                    self.bump();
                    if matches!(self.peek_char(), Some('-') | Some('+')) {
                        if let Some(sign) = self.bump() {
                            text.push(sign);
                        }
                    }
                }
                _ => break,
            }
        }
        if text.is_empty() || text == "-" || text == "+" {
            return Err(self.err("malformed number"));
        }
        Ok(if is_decimal {
            Term::typed_literal(text, xsd::DOUBLE)
        } else {
            Term::typed_literal(text, xsd::INTEGER)
        })
    }

    fn parse_prefixed_or_keyword(&mut self) -> Result<Term> {
        let mut word = String::new();
        while let Some(c) = self.peek_char() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | '%' | ':') {
                // A trailing dot ends the statement, not the name.
                if c == '.' && self.chars.get(self.pos + 1).is_none_or(|n| n.is_whitespace()) {
                    break;
                }
                word.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match word.as_str() {
            "true" => return Ok(Term::boolean(true)),
            "false" => return Ok(Term::boolean(false)),
            "" => return Err(self.err("expected term")),
            _ => {}
        }
        let Some((prefix, local)) = word.split_once(':') else {
            return Err(self.err(format!("expected prefixed name, found '{word}'")));
        };
        let ns = self
            .prefixes
            .get(prefix)
            .ok_or_else(|| RdfError::UnknownPrefix(prefix.to_string()))?;
        Ok(Term::iri(format!("{ns}{local}")))
    }
}

/// Serialize triples as Turtle (grouped by subject with `;`).
pub fn write(triples: &[(Term, Term, Term)]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < triples.len() {
        let (s, _, _) = &triples[i];
        out.push_str(&s.to_string());
        let mut first = true;
        while i < triples.len() && &triples[i].0 == s {
            let (_, p, o) = &triples[i];
            if first {
                first = false;
                out.push(' ');
            } else {
                out.push_str(" ;\n    ");
            }
            if p.as_iri() == Some(rdf::TYPE) {
                out.push_str("a ");
            } else {
                out.push_str(&p.to_string());
                out.push(' ');
            }
            out.push_str(&o.to_string());
            i += 1;
        }
        out.push_str(" .\n");
    }
    out
}

/// Serialize an entire store as Turtle.
pub fn write_store(store: &TripleStore) -> String {
    let triples: Vec<(Term, Term, Term)> = store
        .iter()
        .map(|t| {
            (
                store.term(t.s).clone(),
                store.term(t.p).clone(),
                store.term(t.o).clone(),
            )
        })
        .collect();
    write(&triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(input: &str) -> Vec<(Term, Term, Term)> {
        let mut out = Vec::new();
        parse_triples(input, |s, p, o| out.push((s, p, o))).unwrap();
        out
    }

    #[test]
    fn simple_triple() {
        let ts = collect("<http://x/s> <http://x/p> <http://x/o> .");
        assert_eq!(ts, vec![(Term::iri("http://x/s"), Term::iri("http://x/p"), Term::iri("http://x/o"))]);
    }

    #[test]
    fn prefixes_and_a() {
        let ts = collect(
            "@prefix ex: <http://x/> .\n@prefix noa: <http://noa.gr/> .\nex:img1 a noa:RawImage .",
        );
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].0, Term::iri("http://x/img1"));
        assert_eq!(ts[0].1, Term::iri(rdf::TYPE));
        assert_eq!(ts[0].2, Term::iri("http://noa.gr/RawImage"));
    }

    #[test]
    fn predicate_and_object_lists() {
        let ts = collect(
            "@prefix ex: <http://x/> .\n\
             ex:s ex:p1 ex:o1, ex:o2 ;\n   ex:p2 ex:o3 .",
        );
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].2, Term::iri("http://x/o1"));
        assert_eq!(ts[1].2, Term::iri("http://x/o2"));
        assert_eq!(ts[2].1, Term::iri("http://x/p2"));
    }

    #[test]
    fn literals_typed_tagged_plain() {
        let ts = collect(
            "@prefix ex: <http://x/> .\n@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n\
             ex:s ex:plain \"hello\" ;\n\
                  ex:typed \"3.5\"^^xsd:double ;\n\
                  ex:typed2 \"2007-08-25T00:00:00Z\"^^<http://www.w3.org/2001/XMLSchema#dateTime> ;\n\
                  ex:tagged \"fire\"@en .",
        );
        assert_eq!(ts.len(), 4);
        assert_eq!(ts[0].2, Term::literal("hello"));
        assert_eq!(ts[1].2, Term::typed_literal("3.5", xsd::DOUBLE));
        assert_eq!(ts[2].2, Term::date_time("2007-08-25T00:00:00Z"));
        assert_eq!(ts[3].2, Term::lang_literal("fire", "en"));
    }

    #[test]
    fn bare_numbers_and_booleans() {
        let ts = collect("@prefix ex: <http://x/> .\nex:s ex:i 42 ; ex:d 2.5 ; ex:n -3 ; ex:b true .");
        assert_eq!(ts[0].2, Term::int(42));
        assert_eq!(ts[1].2, Term::typed_literal("2.5", xsd::DOUBLE));
        assert_eq!(ts[2].2, Term::typed_literal("-3", xsd::INTEGER));
        assert_eq!(ts[3].2, Term::boolean(true));
    }

    #[test]
    fn integer_followed_by_statement_dot() {
        let ts = collect("@prefix ex: <http://x/> .\nex:s ex:i 42 .");
        assert_eq!(ts[0].2, Term::int(42));
    }

    #[test]
    fn blank_nodes() {
        let ts = collect("_:b1 <http://x/p> _:b2 .");
        assert_eq!(ts[0].0, Term::blank("b1"));
        assert_eq!(ts[0].2, Term::blank("b2"));
    }

    #[test]
    fn comments_and_blank_lines() {
        let ts = collect("# header\n\n<http://x/s> <http://x/p> 1 . # trailing\n# done\n");
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn escapes_in_literals() {
        let ts = collect(r#"<http://x/s> <http://x/p> "a\"b\\c\nd" ."#);
        assert_eq!(ts[0].2, Term::literal("a\"b\\c\nd"));
    }

    #[test]
    fn wkt_literal_with_crs() {
        let ts = collect(
            "@prefix strdf: <http://strdf.di.uoa.gr/ontology#> .\n\
             <http://x/geo> <http://x/asWKT> \"<http://www.opengis.net/def/crs/EPSG/0/4326> POINT (23.7 38)\"^^strdf:WKT .",
        );
        let (g, srid) = crate::strdf::parse_geometry(&ts[0].2).unwrap();
        assert_eq!(srid, 4326);
        assert_eq!(g.num_coords(), 1);
    }

    #[test]
    fn unknown_prefix_errors() {
        let e = parse_triples("ex:s ex:p ex:o .", |_, _, _| {}).unwrap_err();
        assert!(matches!(e, RdfError::UnknownPrefix(_)));
    }

    #[test]
    fn parse_errors_carry_line() {
        let e = parse_triples("<http://x/s> <http://x/p>\n<http://x/o>", |_, _, _| {}).unwrap_err();
        match e {
            RdfError::Parse { line, .. } => assert!(line >= 2),
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn roundtrip_through_writer() {
        let input = "@prefix ex: <http://x/> .\n\
                     ex:s a ex:Class ; ex:p \"v\" ; ex:q 3 .\n\
                     ex:t ex:p ex:s .";
        let triples = collect(input);
        let written = write(&triples);
        let reparsed = collect(&written);
        assert_eq!(triples.len(), reparsed.len());
        for t in &triples {
            assert!(reparsed.contains(t), "missing {t:?} in {written}");
        }
    }

    #[test]
    fn parse_into_store_counts_new() {
        let mut store = TripleStore::new();
        let n = parse_into("<http://x/s> <http://x/p> 1 . <http://x/s> <http://x/p> 1 .", &mut store)
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn dangling_semicolon_tolerated() {
        let ts = collect("@prefix ex: <http://x/> .\nex:s ex:p ex:o ; .");
        assert_eq!(ts.len(), 1);
    }
}
