//! RDF terms.

use std::fmt;

/// An RDF term: IRI, blank node, or literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference.
    Iri(String),
    /// A blank node with a local label.
    Blank(String),
    /// A literal: lexical form plus optional datatype IRI or language tag
    /// (mutually exclusive per RDF 1.1; plain literals have neither).
    Literal {
        /// The lexical form.
        lexical: String,
        /// Datatype IRI, if typed.
        datatype: Option<String>,
        /// Language tag, if tagged.
        lang: Option<String>,
    },
}

impl Term {
    /// IRI term.
    pub fn iri(value: impl Into<String>) -> Term {
        Term::Iri(value.into())
    }

    /// Blank node.
    pub fn blank(label: impl Into<String>) -> Term {
        Term::Blank(label.into())
    }

    /// Plain (untyped) string literal.
    pub fn literal(lexical: impl Into<String>) -> Term {
        Term::Literal { lexical: lexical.into(), datatype: None, lang: None }
    }

    /// Typed literal.
    pub fn typed_literal(lexical: impl Into<String>, datatype: impl Into<String>) -> Term {
        Term::Literal { lexical: lexical.into(), datatype: Some(datatype.into()), lang: None }
    }

    /// Language-tagged literal.
    pub fn lang_literal(lexical: impl Into<String>, lang: impl Into<String>) -> Term {
        Term::Literal { lexical: lexical.into(), datatype: None, lang: Some(lang.into()) }
    }

    /// Integer literal (`xsd:integer`).
    pub fn int(value: i64) -> Term {
        Term::typed_literal(value.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// Double literal (`xsd:double`).
    pub fn double(value: f64) -> Term {
        Term::typed_literal(value.to_string(), crate::vocab::xsd::DOUBLE)
    }

    /// Boolean literal (`xsd:boolean`).
    pub fn boolean(value: bool) -> Term {
        Term::typed_literal(value.to_string(), crate::vocab::xsd::BOOLEAN)
    }

    /// `xsd:dateTime` literal from an ISO-8601 string.
    pub fn date_time(value: impl Into<String>) -> Term {
        Term::typed_literal(value, crate::vocab::xsd::DATE_TIME)
    }

    /// True for IRIs.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for literals.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    /// True for blank nodes.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }

    /// The IRI value, if this is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The lexical form, if this is a literal.
    pub fn lexical(&self) -> Option<&str> {
        match self {
            Term::Literal { lexical, .. } => Some(lexical),
            _ => None,
        }
    }

    /// The datatype IRI, if this is a typed literal.
    pub fn datatype(&self) -> Option<&str> {
        match self {
            Term::Literal { datatype, .. } => datatype.as_deref(),
            _ => None,
        }
    }

    /// Numeric view of a literal (integers, doubles, plain numerics).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Literal { lexical, .. } => lexical.parse().ok(),
            _ => None,
        }
    }

    /// Integer view of a literal.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Term::Literal { lexical, .. } => lexical.parse().ok(),
            _ => None,
        }
    }

    /// Boolean view of a literal.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Term::Literal { lexical, .. } => match lexical.as_str() {
                "true" | "1" => Some(true),
                "false" | "0" => Some(false),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Escape a literal's lexical form for Turtle/N-Triples output.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
}

impl fmt::Display for Term {
    /// N-Triples syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Blank(label) => write!(f, "_:{label}"),
            Term::Literal { lexical, datatype, lang } => {
                let mut buf = String::with_capacity(lexical.len() + 2);
                escape(lexical, &mut buf);
                write!(f, "\"{buf}\"")?;
                if let Some(dt) = datatype {
                    write!(f, "^^<{dt}>")?;
                } else if let Some(lang) = lang {
                    write!(f, "@{lang}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_views() {
        let t = Term::int(42);
        assert_eq!(t.as_i64(), Some(42));
        assert_eq!(t.as_f64(), Some(42.0));
        assert!(t.is_literal());
        assert_eq!(t.datatype(), Some(crate::vocab::xsd::INTEGER));
        assert_eq!(Term::boolean(true).as_bool(), Some(true));
        assert_eq!(Term::iri("http://x/").as_iri(), Some("http://x/"));
        assert!(Term::blank("b0").is_blank());
    }

    #[test]
    fn display_ntriples() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::blank("b1").to_string(), "_:b1");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::typed_literal("1", "http://www.w3.org/2001/XMLSchema#integer").to_string(),
            "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::lang_literal("fire", "en").to_string(), "\"fire\"@en");
    }

    #[test]
    fn display_escapes() {
        let t = Term::literal("line1\nline2 \"quoted\" back\\slash");
        assert_eq!(t.to_string(), "\"line1\\nline2 \\\"quoted\\\" back\\\\slash\"");
    }

    #[test]
    fn ordering_is_stable() {
        let mut terms = [Term::literal("b"), Term::iri("a"), Term::blank("c")];
        terms.sort();
        // Enum order: Iri < Blank < Literal.
        assert!(terms[0].is_iri());
        assert!(terms[1].is_blank());
        assert!(terms[2].is_literal());
    }
}
