#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! # teleios-rdf — RDF model and store with stRDF extensions
//!
//! The semantic substrate of the TELEIOS Virtual Earth Observatory:
//! satellite-image metadata, knowledge extracted by the image-mining
//! pipeline, and auxiliary open geospatial datasets are all represented
//! in RDF and queried through stSPARQL (`teleios-strabon`).
//!
//! Components:
//!
//! * [`term::Term`] — IRIs, blank nodes, plain/typed/tagged literals,
//! * [`dictionary::Dictionary`] — interning of terms to dense `u32` ids
//!   (the dictionary encoding Strabon gets from its column-store backend),
//! * [`store::TripleStore`] — a triple store with SPO/POS/OSP orderings
//!   for index-backed pattern matching,
//! * [`strdf`] — the stRDF extension: geometries as `strdf:WKT` typed
//!   literals (with CRS), valid-time periods as `strdf:period` literals,
//! * [`turtle`] — a Turtle subset reader/writer for dataset exchange,
//! * [`vocab`] — namespace constants (rdf, rdfs, xsd, strdf, noa, …).
//!
//! ## Example
//!
//! ```
//! use teleios_rdf::store::TripleStore;
//! use teleios_rdf::term::Term;
//!
//! let mut store = TripleStore::new();
//! store.insert_terms(
//!     &Term::iri("http://example.org/img1"),
//!     &Term::iri("http://example.org/hasCloudCover"),
//!     &Term::typed_literal("0.25", "http://www.w3.org/2001/XMLSchema#double"),
//! );
//! assert_eq!(store.len(), 1);
//! ```

pub mod dictionary;
pub mod store;
pub mod strdf;
pub mod persist;
pub mod term;
pub mod triple;
pub mod turtle;
pub mod vocab;

pub use dictionary::{Dictionary, TermId};
pub use store::TripleStore;
pub use term::Term;
pub use triple::{Triple, TriplePattern};

/// Errors for RDF parsing and store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// Turtle text failed to parse.
    Parse {
        /// Line number (1-based).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// A literal could not be interpreted under its datatype.
    BadLiteral(String),
}

impl std::fmt::Display for RdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RdfError::Parse { line, message } => {
                write!(f, "turtle parse error on line {line}: {message}")
            }
            RdfError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            RdfError::BadLiteral(m) => write!(f, "bad literal: {m}"),
        }
    }
}

impl std::error::Error for RdfError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RdfError>;
