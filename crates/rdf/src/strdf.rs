//! The stRDF extension: spatial and temporal literals.
//!
//! stRDF (Koubarakis & Kyzirakos, ESWC 2010) extends RDF with:
//!
//! * **spatial literals** — geometries serialized as OGC WKT with an
//!   optional CRS URI prefix, typed `strdf:WKT`;
//! * **valid-time literals** — periods `[start, end)` of `xsd:dateTime`
//!   instants, typed `strdf:period`.
//!
//! This module converts between those literals and the native
//! [`teleios_geo::Geometry`] / [`Period`] types.

use crate::term::Term;
use crate::vocab::strdf;
use crate::RdfError;
use teleios_geo::{wkt, Geometry};

/// A valid-time period `[start, end)` in simulation time.
///
/// Instants are ISO-8601 `xsd:dateTime` strings; ordering is
/// lexicographic, which ISO-8601 makes chronologically correct as long
/// as all instants share a timezone suffix (the generators emit UTC).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Period {
    /// Inclusive start instant.
    pub start: String,
    /// Exclusive end instant.
    pub end: String,
}

impl Period {
    /// New period (caller must ensure `start <= end`).
    pub fn new(start: impl Into<String>, end: impl Into<String>) -> Period {
        Period { start: start.into(), end: end.into() }
    }

    /// True when the instant falls inside `[start, end)`.
    pub fn contains(&self, instant: &str) -> bool {
        self.start.as_str() <= instant && instant < self.end.as_str()
    }

    /// True when two periods share an instant.
    pub fn overlaps(&self, other: &Period) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Build an stRDF spatial literal from a geometry and CRS.
pub fn geometry_literal(g: &Geometry, srid: u32) -> Term {
    Term::typed_literal(wkt::write_with_crs(g, srid), strdf::WKT)
}

/// Build an stRDF spatial literal in the default CRS (EPSG:4326).
pub fn geometry_literal_wgs84(g: &Geometry) -> Term {
    Term::typed_literal(wkt::write(g), strdf::WKT)
}

/// True when the term is a spatial (`strdf:WKT`) literal.
pub fn is_geometry_literal(t: &Term) -> bool {
    t.datatype() == Some(strdf::WKT)
}

/// Parse a spatial literal back to a geometry and its EPSG code.
///
/// Plain WKT without a CRS prefix defaults to EPSG:4326 per the stRDF
/// specification. Non-spatial terms yield an error.
pub fn parse_geometry(t: &Term) -> crate::Result<(Geometry, u32)> {
    let Some(lex) = t.lexical() else {
        return Err(RdfError::BadLiteral(format!("not a literal: {t}")));
    };
    if !is_geometry_literal(t) {
        return Err(RdfError::BadLiteral(format!("not an strdf:WKT literal: {t}")));
    }
    wkt::parse_with_crs(lex).map_err(|e| RdfError::BadLiteral(e.to_string()))
}

/// Build a valid-time period literal.
pub fn period_literal(p: &Period) -> Term {
    Term::typed_literal(format!("[{}, {})", p.start, p.end), strdf::PERIOD)
}

/// True when the term is a period (`strdf:period`) literal.
pub fn is_period_literal(t: &Term) -> bool {
    t.datatype() == Some(strdf::PERIOD)
}

/// Parse a period literal (`[start, end)` form).
pub fn parse_period(t: &Term) -> crate::Result<Period> {
    let Some(lex) = t.lexical() else {
        return Err(RdfError::BadLiteral(format!("not a literal: {t}")));
    };
    if !is_period_literal(t) {
        return Err(RdfError::BadLiteral(format!("not an strdf:period literal: {t}")));
    }
    let inner = lex
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| RdfError::BadLiteral(format!("malformed period: {lex}")))?;
    let (start, end) = inner
        .split_once(',')
        .ok_or_else(|| RdfError::BadLiteral(format!("malformed period: {lex}")))?;
    let p = Period::new(start.trim(), end.trim());
    if p.start > p.end {
        return Err(RdfError::BadLiteral(format!("period ends before it starts: {lex}")));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teleios_geo::geometry::Point;

    #[test]
    fn geometry_literal_roundtrip() {
        let g = Geometry::Point(Point::new(23.7, 38.0));
        let lit = geometry_literal(&g, 4326);
        assert!(is_geometry_literal(&lit));
        let (g2, srid) = parse_geometry(&lit).unwrap();
        assert_eq!(g2, g);
        assert_eq!(srid, 4326);
    }

    #[test]
    fn geometry_literal_default_crs() {
        let g = Geometry::Point(Point::new(1.0, 2.0));
        let lit = geometry_literal_wgs84(&g);
        let (_, srid) = parse_geometry(&lit).unwrap();
        assert_eq!(srid, 4326);
    }

    #[test]
    fn geometry_literal_other_crs() {
        let g = Geometry::Point(Point::new(100.0, 200.0));
        let lit = geometry_literal(&g, 3857);
        let (_, srid) = parse_geometry(&lit).unwrap();
        assert_eq!(srid, 3857);
    }

    #[test]
    fn parse_geometry_rejects_non_spatial() {
        assert!(parse_geometry(&Term::literal("POINT (1 2)")).is_err());
        assert!(parse_geometry(&Term::iri("http://x/")).is_err());
        let bad = Term::typed_literal("PINT (1 2)", strdf::WKT);
        assert!(parse_geometry(&bad).is_err());
    }

    #[test]
    fn period_roundtrip() {
        let p = Period::new("2007-08-25T12:00:00Z", "2007-08-25T12:15:00Z");
        let lit = period_literal(&p);
        assert!(is_period_literal(&lit));
        assert_eq!(parse_period(&lit).unwrap(), p);
    }

    #[test]
    fn period_contains_and_overlaps() {
        let p = Period::new("2007-08-25T12:00:00Z", "2007-08-25T13:00:00Z");
        assert!(p.contains("2007-08-25T12:00:00Z"));
        assert!(p.contains("2007-08-25T12:59:59Z"));
        assert!(!p.contains("2007-08-25T13:00:00Z"));
        let q = Period::new("2007-08-25T12:30:00Z", "2007-08-25T14:00:00Z");
        let r = Period::new("2007-08-25T13:00:00Z", "2007-08-25T14:00:00Z");
        assert!(p.overlaps(&q));
        assert!(!p.overlaps(&r)); // end is exclusive
    }

    #[test]
    fn parse_period_rejects_malformed() {
        assert!(parse_period(&Term::typed_literal("2007", strdf::PERIOD)).is_err());
        assert!(parse_period(&Term::typed_literal("[b, a)", strdf::PERIOD)).is_err());
        assert!(parse_period(&Term::literal("[a, b)")).is_err());
    }
}
